"""Network transport: length-prefixed, checksummed JSON frames over TCP.

This is the wire layer that lets :class:`~repro.service.scheduler.
CampaignService` and its workers live in different processes on
different hosts.  One frame is::

    +-------+----------------+----------------+----------------+
    | magic | payload length | CRC32(payload) |  JSON payload  |
    | 4 B   | 4 B big-endian | 4 B big-endian |  length bytes  |
    +-------+----------------+----------------+----------------+

and one payload is a type-tagged JSON object encoding exactly one
protocol message (:mod:`repro.service.protocol`).  JSON (not pickle) is
deliberate: a corrupted or hostile frame can at worst fail to decode --
it can never execute code in the scheduler -- and the format is
language-inspectable on the wire.

The failure envelope is typed (:mod:`repro.errors`):

* :class:`~repro.errors.FrameError` -- the frame arrived whole but its
  checksum or JSON payload is bad.  Framing survived, so the receiver
  discards exactly this frame, notifies the peer (``NackMsg``), bumps
  ``service.transport.frame_errors``, and keeps reading;
* :class:`~repro.errors.ConnectionLostError` -- EOF or a socket error
  mid-frame (torn write), a read stalled past ``frame_timeout_s`` (a
  half-open peer), a bad magic number, or an impossible length
  (desynchronization).  Nothing later on this connection can be framed
  safely: the receiver drops it and lease expiry / reconnection take
  over.

Floats survive the JSON round trip exactly (CPython serializes
``repr(float)``, which round-trips bit-for-bit), so records shipped
over TCP remain byte-identical to records computed locally -- the
property every identity test in this repo leans on.

:func:`corrupt_frame` and :func:`truncate_frame` are the deterministic
wire-fault injectors the chaos harness uses: pure functions of
``(frame, seed)`` that produce, respectively, a checksum-failing frame
of the correct length and a torn frame prefix.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
import threading
import zlib
from typing import Any, Optional, Tuple

from repro.dram.config import DRAMConfig, DRAMTiming
from repro.errors import ConnectionLostError, FrameError
from repro.parallel.executor import CellTask
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    HelloMsg,
    NackMsg,
    RegisteredMsg,
    ShutdownMsg,
)
from repro.utils.prng import derive_key

#: First bytes of every frame; a receiver seeing anything else is
#: desynchronized and must drop the connection.
MAGIC = b"RBX1"

#: magic | payload length | CRC32 -- both integers big-endian.
HEADER = struct.Struct("!4sII")

#: Hard ceiling on one frame's payload.  Completions are small dicts
#: (records plus a metric-delta snapshot); anything past this is a
#: desynchronized or hostile stream, not a real message.
MAX_FRAME_BYTES = 8 * 1024 * 1024


# ---------------------------------------------------------------------------
# JSON codec for protocol messages
# ---------------------------------------------------------------------------
#: Dataclasses that may appear *inside* message fields (assignment
#: payloads carry mapping specs and the DRAM config).
_VALUE_TYPES = {
    cls.__name__: cls for cls in (CellTask, DRAMConfig, DRAMTiming)
}
# MappingSpec lives in experiments.campaign; imported lazily below to
# keep transport importable without dragging the simulator stack in
# (the scheduler needs it anyway, but unit tests of the frame layer
# should not).

#: Top-level message types, by wire tag.
_MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        CellAssignment,
        CompletionMsg,
        GoodbyeMsg,
        HeartbeatMsg,
        HelloMsg,
        NackMsg,
        RegisteredMsg,
        ShutdownMsg,
    )
}

_DC_TAG = "__dc__"


def _value_types() -> dict:
    types = dict(_VALUE_TYPES)
    if "MappingSpec" not in types:
        from repro.experiments.campaign import MappingSpec

        types["MappingSpec"] = MappingSpec
        _VALUE_TYPES["MappingSpec"] = MappingSpec
    return types


def to_wire(value: Any) -> Any:
    """Encode one value as JSON-compatible data (type-tagged dataclasses)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _value_types() and name not in _MESSAGE_TYPES:
            raise FrameError(
                f"dataclass {name} is not registered for the wire", kind="encode"
            )
        fields = {
            field.name: to_wire(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.init and not field.name.startswith("_")
        }
        return {_DC_TAG: name, "fields": fields}
    if isinstance(value, dict):
        return {str(key): to_wire(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_wire(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise FrameError(
        f"value of type {type(value).__name__} is not wire-encodable",
        kind="encode",
    )


def from_wire(value: Any) -> Any:
    """Decode :func:`to_wire` data back into protocol/value objects."""
    if isinstance(value, dict):
        tag = value.get(_DC_TAG)
        if tag is None:
            return {key: from_wire(item) for key, item in value.items()}
        cls = _MESSAGE_TYPES.get(tag) or _value_types().get(tag)
        if cls is None:
            raise FrameError(f"unknown wire dataclass tag '{tag}'", kind="decode")
        fields = value.get("fields")
        if not isinstance(fields, dict):
            raise FrameError(f"wire dataclass '{tag}' has no fields", kind="decode")
        try:
            return cls(**{key: from_wire(item) for key, item in fields.items()})
        except (TypeError, ValueError) as error:
            raise FrameError(
                f"cannot rebuild {tag}: {error}", kind="decode"
            ) from error
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    return value


def encode_payload(message: Any) -> bytes:
    """One protocol message -> JSON payload bytes (no frame header)."""
    if type(message).__name__ not in _MESSAGE_TYPES:
        raise FrameError(
            f"{type(message).__name__} is not a protocol message", kind="encode"
        )
    return json.dumps(to_wire(message), separators=(",", ":")).encode()


def decode_payload(payload: bytes) -> Any:
    """JSON payload bytes -> protocol message (raises FrameError)."""
    try:
        data = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"payload is not valid JSON: {error}", kind="decode") from error
    message = from_wire(data)
    if type(message).__name__ not in _MESSAGE_TYPES:
        raise FrameError(
            "payload decoded to a non-message value"
            f" ({type(message).__name__})",
            kind="decode",
        )
    return message


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
def encode_frame(payload: bytes) -> bytes:
    """Wrap payload bytes in a header (magic, length, CRC32)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte frame ceiling",
            kind="encode",
            size=len(payload),
        )
    return HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def encode_message(message: Any) -> bytes:
    """One protocol message -> one complete frame."""
    return encode_frame(encode_payload(message))


def corrupt_frame(frame: bytes, seed: int = 0) -> bytes:
    """Flip one deterministic payload byte; the CRC will catch it.

    The header (and therefore the framing) is left intact, so a
    receiver detects a checksum failure on exactly this frame and keeps
    the stream alive -- the recoverable half of the wire-fault envelope.
    """
    if len(frame) <= HEADER.size:
        raise ValueError("frame has no payload bytes to corrupt")
    body = bytearray(frame)
    offset = HEADER.size + derive_key(seed, "corrupt", 32) % (len(frame) - HEADER.size)
    flip = 1 + derive_key(seed, "corrupt-bit", 32) % 255
    body[offset] ^= flip
    return bytes(body)


def truncate_frame(frame: bytes, seed: int = 0) -> bytes:
    """A strict prefix of the frame (a torn write / half-open socket).

    At least one byte is kept and at least one is cut, so the receiver
    always sees a stalled or torn frame -- the unrecoverable half of the
    envelope -- never an accidentally-valid empty send.
    """
    if len(frame) < 2:
        raise ValueError("frame too short to truncate")
    keep = 1 + derive_key(seed, "truncate", 32) % (len(frame) - 1)
    return frame[:keep]


# ---------------------------------------------------------------------------
# Framed socket
# ---------------------------------------------------------------------------
class FramedSocket:
    """One TCP connection speaking framed protocol messages.

    Sends are serialized under a lock (heartbeat pumps and the main
    thread share the connection -- same discipline the Pipe workers
    follow); receives are single-reader by construction (each side
    dedicates one thread to reading).

    Args:
        sock: A connected TCP socket (ownership transfers here).
        frame_timeout_s: Per-frame progress deadline.  A read that makes
            *no* progress for this long while idle returns ``None`` from
            :meth:`recv` (benign -- the caller loops); a read stalled
            **mid-frame** this long raises
            :class:`~repro.errors.ConnectionLostError` -- a half-open
            peer cannot hold the connection hostage.
    """

    def __init__(self, sock: socket.socket, *, frame_timeout_s: float = 30.0) -> None:
        self._sock = sock
        self.frame_timeout_s = frame_timeout_s
        sock.settimeout(frame_timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. AF_UNIX in tests
            pass
        self._send_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def fileno(self) -> int:
        return self._sock.fileno()

    def peername(self) -> str:
        try:
            peer = self._sock.getpeername()
        except OSError:
            return "?"
        return f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)

    # -- sending --------------------------------------------------------
    def send(self, message: Any) -> None:
        """Frame and send one message (thread-safe; raises OSError)."""
        self.send_bytes(encode_message(message))

    def send_bytes(self, frame: bytes) -> None:
        """Send pre-encoded frame bytes verbatim (the chaos hook).

        The wire-fault layer uses this to put deliberately corrupt or
        truncated frames on a *real* socket, so the receiver-side
        detection being tested is the production code path.
        """
        if self._closed:
            raise OSError("connection already closed")
        with self._send_lock:
            self._sock.sendall(frame)

    # -- receiving ------------------------------------------------------
    def recv(self) -> Optional[Any]:
        """Receive one message; ``None`` on an idle timeout.

        Raises:
            FrameError: checksum or payload decode failed (frame
                discarded; the stream is still usable).
            ConnectionLostError: EOF, torn/stalled frame, or
                desynchronization (the stream is unusable).
        """
        header = self._read_exact(HEADER.size, idle_ok=True)
        if header is None:
            return None
        magic, length, crc = HEADER.unpack(header)
        if magic != MAGIC:
            raise ConnectionLostError(
                "bad frame magic (stream desynchronized)",
                kind="bad-magic",
                magic=magic.hex(),
            )
        if length > MAX_FRAME_BYTES:
            raise ConnectionLostError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte"
                " ceiling (stream desynchronized)",
                kind="oversized",
                length=length,
            )
        payload = self._read_exact(length, idle_ok=False)
        if zlib.crc32(payload) != crc:
            raise FrameError(
                "frame checksum mismatch",
                kind="checksum",
                expected=crc,
                actual=zlib.crc32(payload),
            )
        return decode_payload(payload)

    def _read_exact(self, n: int, *, idle_ok: bool) -> Optional[bytes]:
        """Read exactly n bytes; None on an idle timeout when allowed."""
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                if idle_ok and remaining == n:
                    return None  # no frame started; benign
                raise ConnectionLostError(
                    f"read stalled mid-frame for {self.frame_timeout_s}s"
                    " (half-open peer?)",
                    kind="stalled",
                    wanted=n,
                    got=n - remaining,
                ) from None
            except OSError as error:
                raise ConnectionLostError(
                    f"socket error while reading: {error}", kind="socket"
                ) from error
            if not chunk:
                raise ConnectionLostError(
                    "peer closed the connection"
                    + ("" if remaining == n else " mid-frame (torn write)"),
                    kind="eof" if remaining == n else "torn",
                    wanted=n,
                    got=n - remaining,
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


# ---------------------------------------------------------------------------
# Connection helpers
# ---------------------------------------------------------------------------
def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with validation."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"address port must be an integer, got {address!r}") from None


def listen_socket(address: str, *, backlog: int = 16) -> socket.socket:
    """A bound, listening TCP socket for the scheduler side."""
    host, port = parse_address(address)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def connect(
    address: str, *, frame_timeout_s: float = 30.0, connect_timeout_s: float = 5.0
) -> FramedSocket:
    """Dial the scheduler; returns a ready :class:`FramedSocket`."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=connect_timeout_s)
    return FramedSocket(sock, frame_timeout_s=frame_timeout_s)


__all__ = [
    "HEADER",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "FramedSocket",
    "connect",
    "corrupt_frame",
    "decode_payload",
    "encode_frame",
    "encode_message",
    "encode_payload",
    "from_wire",
    "listen_socket",
    "parse_address",
    "to_wire",
    "truncate_frame",
]
