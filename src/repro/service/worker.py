"""Service worker process: leased cell execution with heartbeats.

One worker = one OS process running :func:`service_worker_main`.  It
receives :class:`~repro.service.protocol.CellAssignment` messages on its
task pipe, runs each cell through the *same* code path as local pool
workers (:func:`repro.parallel.executor.run_cell_task`, hence
:meth:`Campaign.execute_cell` and the :class:`ResilientExecutor` fault
boundary), and reports :class:`~repro.service.protocol.CompletionMsg`
results on its result pipe.  While a cell runs, a daemon heartbeat
thread renews the worker's lease every ``heartbeat_interval_s``.

Telemetry and cache configuration arrive exactly the way pool workers
get them: an :func:`repro.obs.runtime.export_config` payload applied via
:func:`apply_config`, plus a ``stats_cache_dir`` pointing the worker's
simulators at the shared content-keyed stats cache (both mirror the
``REPRO_TELEMETRY_DIR`` / ``REPRO_STATS_CACHE`` environment variables of
the parent).

Failure discipline: all sends to the result pipe happen under one lock,
and injected chaos kills acquire that lock first -- a killed worker can
therefore tear at most an *unsent* message, never interleave a torn
write into the stream.  A worker whose cell raises unexpectedly (a bug,
not a simulation error -- those become tidy error records inside
``execute_cell``) still reports a completion carrying an error record,
so its lease resolves without waiting for expiry.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import error_record
from repro.obs.runtime import METRICS, apply_config
from repro.parallel.executor import build_worker_state, run_cell_task
from repro.service.chaos import ChaosEngine, ChaosSpec
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    ShutdownMsg,
)


class _HeartbeatPump:
    """Daemon thread renewing the currently-held lease.

    ``stall_until`` (monotonic) silences the pump -- the chaos harness
    uses it to simulate a hung worker whose lease must expire.

    Each beat carries both clocks: ``sent_at`` (wall, for humans in
    logs) and ``sent_monotonic`` (the sender's monotonic clock, which
    the scheduler -- running on *its own* monotonic clock -- uses to
    compute heartbeat-interval drift without cross-clock skew; see
    :class:`~repro.service.protocol.HeartbeatMsg`).

    With ``idle_ping=True`` (socket workers) the pump also beats while
    *no* lease is held, with an empty ``lease_id``: over TCP, silence
    from an idle worker is indistinguishable from a half-open
    connection, so idle workers prove liveness explicitly.  Pipe workers
    keep the historical behaviour (no traffic while idle).
    """

    def __init__(
        self,
        worker_id: str,
        conn,
        send_lock,
        interval_s: float,
        *,
        idle_ping: bool = False,
    ) -> None:
        self.worker_id = worker_id
        self._conn = conn
        self._lock = send_lock
        self.interval_s = max(interval_s, 0.01)
        self.idle_ping = idle_ping
        self.lease_id: Optional[str] = None
        self.stall_until = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            lease_id = self.lease_id
            if time.monotonic() < self.stall_until:
                continue
            if lease_id is None and not self.idle_ping:
                continue
            beat = HeartbeatMsg(
                worker_id=self.worker_id,
                lease_id=lease_id or "",
                sent_at=time.time(),
                sent_monotonic=time.monotonic(),
            )
            try:
                with self._lock:
                    # Re-check under the lock: the main thread clears the
                    # lease before releasing it, so a completed cell never
                    # gets a post-completion (stale) heartbeat.
                    if self.lease_id == lease_id:
                        self._conn.send(beat)
            except (OSError, ValueError):  # scheduler gone; exit quietly
                return


def _error_completion(assignment: CellAssignment, error: BaseException) -> CompletionMsg:
    """A completion carrying an error record (worker-side last resort)."""
    task = assignment.task
    record = {
        "workload": task.workload,
        "mapping": task.spec.label,
        "scheme": task.scheme,
        "t_rh": task.t_rh,
        "status": "error",
        "attempts": 1,
    }
    record.update(error_record(error))
    return CompletionMsg(
        worker_id="",
        lease_id=assignment.lease_id,
        digest=assignment.digest,
        key=task.key,
        attempt=assignment.attempt,
        epoch=assignment.epoch,
        record=record,
    )


def service_worker_main(
    worker_id: str,
    task_conn,
    result_conn,
    stats_cache_dir: Optional[str],
    obs_config: Optional[dict],
    chaos_spec: Optional[ChaosSpec],
    heartbeat_interval_s: float,
) -> None:
    """Entry point of one service worker process (runs until shutdown)."""
    if obs_config is not None:
        apply_config(obs_config)
    chaos = ChaosEngine(chaos_spec) if chaos_spec is not None else None
    send_lock = threading.Lock()
    pump = _HeartbeatPump(worker_id, result_conn, send_lock, heartbeat_interval_s)
    pump.start()
    states: Dict[str, dict] = {}  # payload digest -> worker state
    cells_run = 0
    try:
        while True:
            try:
                msg = task_conn.recv()
            except (EOFError, OSError):
                return  # scheduler died; nothing useful left to do
            if isinstance(msg, ShutdownMsg):
                pump.stop()
                with send_lock:
                    result_conn.send(GoodbyeMsg(worker_id=worker_id, cells_run=cells_run))
                return
            assignment: CellAssignment = msg
            pump.lease_id = assignment.lease_id
            decision = (
                chaos.decide(assignment.task.key, assignment.attempt)
                if chaos is not None
                else None
            )
            if decision is not None and decision.action == "kill-before":
                with send_lock:
                    chaos.kill_now("kill-before")
            if decision is not None and decision.action == "hang":
                # Stop heartbeating *now*; the lease will expire while
                # (or shortly after) the cell computes.
                pump.stall_until = time.monotonic() + decision.hang_s + pump.interval_s
                METRICS.inc("chaos.injections", action="hang")
            hang_started = time.monotonic()
            try:
                state = states.get(assignment.payload_key)
                if state is None:
                    state = build_worker_state(assignment.payload, stats_cache_dir)
                    state["worker_id"] = worker_id
                    states[assignment.payload_key] = state
                completion_raw = run_cell_task(state, assignment.task)
                completion = CompletionMsg(
                    worker_id=worker_id,
                    lease_id=assignment.lease_id,
                    digest=assignment.digest,
                    key=assignment.task.key,
                    attempt=assignment.attempt,
                    epoch=assignment.epoch,
                    record=completion_raw.record,
                    duration_s=completion_raw.duration_s,
                    telemetry=completion_raw.telemetry,
                )
            except Exception as error:  # defense in depth: report, don't hang
                completion = _error_completion(assignment, error)
            if decision is not None and decision.action == "hang":
                # Sit on the finished result until the lease is long dead.
                remaining = decision.hang_s - (time.monotonic() - hang_started)
                if remaining > 0:
                    time.sleep(remaining)
            messages = [completion]
            if decision is not None and decision.duplicate:
                messages.append(completion)
                METRICS.inc("chaos.injections", action="duplicate")
            with send_lock:
                pump.lease_id = None
                for message in messages:
                    try:
                        result_conn.send(message)
                    except (OSError, ValueError):
                        return  # scheduler gone
                if decision is not None and decision.action == "kill-after":
                    chaos.kill_now("kill-after")
            cells_run += 1
    finally:
        pump.stop()


__all__ = ["service_worker_main"]
