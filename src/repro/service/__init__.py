"""Fault-tolerant campaign service: leased scheduling over workers.

The service layer turns campaign execution into a long-lived scheduler
(:class:`CampaignService`) that accepts concurrent submissions,
decomposes them into content-keyed cells (overlapping tenant grids
dedupe), dispatches cells to worker processes under heartbeat leases,
recovers from lost workers by re-dispatching expired leases, and
commits each cell's record exactly once to a durable
:class:`~repro.resilience.journal.CheckpointJournal`.

The chaos harness (:mod:`repro.service.chaos`) injects worker kills,
heartbeat stalls, duplicated/reordered completions, and journal
truncation on a seeded, reproducible schedule -- the integration tests
use it to prove the service's results stay identical to a serial
:meth:`Campaign.run` under failure.
"""

from repro.service.chaos import (
    KILLED_EXIT_CODE,
    ChaosDecision,
    ChaosEngine,
    ChaosSpec,
    CompletionGate,
    planned_faults,
    truncate_journal_tail,
)
from repro.service.lease import Lease, LeaseTable, lease_id_for
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    ShutdownMsg,
    cell_digest,
    payload_digest,
)
from repro.service.scheduler import (
    CampaignService,
    ServiceConfig,
    SubmissionHandle,
    run_service,
)

__all__ = [
    "KILLED_EXIT_CODE",
    "CampaignService",
    "CellAssignment",
    "ChaosDecision",
    "ChaosEngine",
    "ChaosSpec",
    "CompletionGate",
    "CompletionMsg",
    "GoodbyeMsg",
    "HeartbeatMsg",
    "Lease",
    "LeaseTable",
    "ServiceConfig",
    "ShutdownMsg",
    "SubmissionHandle",
    "cell_digest",
    "lease_id_for",
    "payload_digest",
    "planned_faults",
    "run_service",
    "truncate_journal_tail",
]
