"""Fault-tolerant campaign service: leased scheduling over workers.

The service layer turns campaign execution into a long-lived scheduler
(:class:`CampaignService`) that accepts concurrent submissions,
decomposes them into content-keyed cells (overlapping tenant grids
dedupe), dispatches cells to worker processes under heartbeat leases,
recovers from lost workers by re-dispatching expired leases, and
commits each cell's record exactly once to a durable
:class:`~repro.resilience.journal.CheckpointJournal`.

Workers come in two substrates speaking the same protocol
(:mod:`repro.service.protocol`): in-process Pipe workers (the default,
byte-identical to the original pool) and TCP socket workers
(:mod:`repro.service.net_worker`) framed by
:mod:`repro.service.transport` -- point the scheduler at a listen
address (``ServiceConfig.listen``) and run ``repro-run work --connect``
on any host.

The chaos harness (:mod:`repro.service.chaos`) injects worker kills,
heartbeat stalls, duplicated/reordered completions, journal truncation,
and -- for the socket substrate -- wire faults (dropped, corrupted,
truncated, delayed, duplicated frames; dropped connections) on a
seeded, reproducible schedule; the integration tests use it to prove
the service's results stay identical to a serial :meth:`Campaign.run`
under failure.
"""

from repro.service.chaos import (
    KILLED_EXIT_CODE,
    ChaosDecision,
    ChaosEngine,
    ChaosSpec,
    CompletionGate,
    WireDecision,
    planned_faults,
    planned_wire_faults,
    truncate_journal_tail,
)
from repro.service.lease import Lease, LeaseTable, lease_id_for
from repro.service.net_worker import run_net_worker, spawn_net_workers
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    HelloMsg,
    NackMsg,
    RegisteredMsg,
    ShutdownMsg,
    cell_digest,
    payload_digest,
)
from repro.service.scheduler import (
    CampaignService,
    ServiceConfig,
    SubmissionHandle,
    run_service,
)
from repro.service.transport import FramedSocket, connect, listen_socket

__all__ = [
    "KILLED_EXIT_CODE",
    "CampaignService",
    "CellAssignment",
    "ChaosDecision",
    "ChaosEngine",
    "ChaosSpec",
    "CompletionGate",
    "CompletionMsg",
    "FramedSocket",
    "GoodbyeMsg",
    "HeartbeatMsg",
    "HelloMsg",
    "Lease",
    "LeaseTable",
    "NackMsg",
    "RegisteredMsg",
    "ServiceConfig",
    "ShutdownMsg",
    "SubmissionHandle",
    "WireDecision",
    "cell_digest",
    "connect",
    "lease_id_for",
    "listen_socket",
    "payload_digest",
    "planned_faults",
    "planned_wire_faults",
    "run_net_worker",
    "run_service",
    "spawn_net_workers",
    "truncate_journal_tail",
]
