"""Socket worker: remote counterpart of :func:`service_worker_main`.

One net worker = one process (anywhere on the network) that dials the
scheduler's listen address, registers with a :class:`HelloMsg`, and then
runs leased cells exactly the way Pipe workers do -- the same
:func:`repro.parallel.executor.run_cell_task` code path, the same
heartbeat pump (:class:`repro.service.worker._HeartbeatPump`, here in
``idle_ping`` mode so the scheduler can tell an idle worker from a
half-open connection), the same lazy per-payload worker-state cache.
The cache survives reconnects: a worker that loses its TCP session keeps
its rebuilt campaigns and rejoins warm.

Failure discipline mirrors the transport's typed envelope:

* a :class:`~repro.errors.FrameError` on receive discards exactly that
  frame, nacks the scheduler, and keeps the session alive;
* a :class:`~repro.errors.ConnectionLostError` (or any socket error)
  ends the session; the worker reconnects with the *existing*
  deterministic :class:`~repro.resilience.executor.RetryPolicy` backoff
  (exponential + seeded jitter) under a bounded reconnect budget, and
  presents itself as a fresh connection (the scheduler assigns a new
  ``worker_id``; the stable ``name`` ties the sessions together in
  logs);
* a :class:`NackMsg` from the scheduler (it discarded one of our frames)
  triggers a *clean* resend of the last unacknowledged completion --
  fast-path recovery that spares the cell a lease-expiry round trip.

Wire chaos (:meth:`ChaosEngine.decide_wire`) is applied here, on the
completion send path, against a *real* socket: a doomed frame is really
dropped, a corrupt frame really crosses the wire and really fails the
scheduler's CRC.  All decisions are pure functions of
``(seed, cell key, attempt)`` and fire only on first attempts, so every
chaos schedule converges.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Dict, Optional

from repro.errors import ConnectionLostError, FrameError, TransportError
from repro.obs.runtime import METRICS, TRACER, apply_config, get_logger
from repro.parallel.executor import build_worker_state, run_cell_task
from repro.resilience.executor import RetryPolicy
from repro.service.chaos import ChaosEngine, ChaosSpec, WireDecision
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HelloMsg,
    NackMsg,
    RegisteredMsg,
    ShutdownMsg,
)
from repro.service.transport import (
    FramedSocket,
    connect,
    corrupt_frame,
    encode_message,
    truncate_frame,
)
from repro.service.worker import _HeartbeatPump, _error_completion
from repro.utils.prng import derive_key

log = get_logger("service.net_worker")

_NO_WIRE = WireDecision()


class _NetWorker:
    """State of one socket worker across its (re)connection sessions."""

    def __init__(
        self,
        address: str,
        *,
        name: str,
        stats_cache_dir: Optional[str] = None,
        chaos_spec: Optional[ChaosSpec] = None,
        frame_timeout_s: float = 10.0,
        reconnect: Optional[RetryPolicy] = None,
        max_reconnects: int = 8,
    ) -> None:
        self.address = address
        self.name = name
        self.stats_cache_dir = stats_cache_dir
        self.chaos = ChaosEngine(chaos_spec) if chaos_spec is not None else None
        self.frame_timeout_s = frame_timeout_s
        self.reconnect = reconnect or RetryPolicy(backoff_base_s=0.05)
        self.max_reconnects = max_reconnects
        self.reconnects = 0
        self.cells_run = 0
        self._states: Dict[str, dict] = {}  # payload digest -> worker state
        self._last_completion: Optional[CompletionMsg] = None
        self._send_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until the scheduler says shutdown (or budgets exhaust).

        Returns the number of cells this worker ran across all sessions.
        """
        while True:
            try:
                sock = connect(self.address, frame_timeout_s=self.frame_timeout_s)
            except OSError as error:
                if not self._backoff(f"connect failed: {error}"):
                    return self.cells_run
                continue
            METRICS.inc("service.transport.connects", role="worker")
            if self.reconnects:
                METRICS.inc("service.transport.reconnects")
            try:
                with TRACER.span(
                    "service.worker_session",
                    worker=self.name,
                    reconnects=self.reconnects,
                ):
                    if self._session(sock):
                        return self.cells_run  # clean shutdown
            except (TransportError, OSError) as error:
                log.warning(
                    "net_worker.session_lost",
                    message=f"[{self.name}: session lost ({error});"
                    " reconnecting]",
                    name=self.name,
                    error=str(error),
                )
            finally:
                sock.close()
            if not self._backoff("session lost"):
                return self.cells_run

    def _backoff(self, why: str) -> bool:
        """Sleep the deterministic reconnect backoff; False = give up."""
        self.reconnects += 1
        if self.reconnects > self.max_reconnects:
            log.error(
                "net_worker.gave_up",
                message=f"[{self.name}: reconnect budget exhausted"
                f" after {self.max_reconnects} tries ({why})]",
                name=self.name,
                reconnects=self.reconnects - 1,
            )
            return False
        time.sleep(
            self.reconnect.delay_s(f"{self.name}#reconnect", self.reconnects)
        )
        return True

    # ------------------------------------------------------------------
    def _session(self, sock: FramedSocket) -> bool:
        """One registered session; True when shut down cleanly."""
        sock.send(
            HelloMsg(name=self.name, pid=os.getpid(), reconnects=self.reconnects)
        )
        registered = sock.recv()
        if not isinstance(registered, RegisteredMsg):
            raise ConnectionLostError(
                "scheduler did not acknowledge registration",
                kind="handshake",
                got=type(registered).__name__,
            )
        worker_id = registered.worker_id
        pump = _HeartbeatPump(
            worker_id,
            sock,
            self._send_lock,
            registered.heartbeat_interval_s,
            idle_ping=True,
        )
        pump.start()
        try:
            while True:
                try:
                    msg = sock.recv()
                except FrameError as error:
                    # Framing survived: drop exactly this frame, tell the
                    # scheduler, keep the session.
                    kind = error.context.get("kind", "unknown")
                    METRICS.inc("service.transport.frame_errors", kind=kind)
                    sock.send(NackMsg(reason=str(error)))
                    continue
                if msg is None:
                    continue  # idle timeout; heartbeats keep us registered
                if isinstance(msg, ShutdownMsg):
                    pump.stop()
                    with self._send_lock:
                        sock.send(
                            GoodbyeMsg(worker_id=worker_id, cells_run=self.cells_run)
                        )
                    return True
                if isinstance(msg, NackMsg):
                    self._resend(sock, worker_id)
                    continue
                if isinstance(msg, CellAssignment):
                    self._run_cell(sock, pump, worker_id, msg)
        finally:
            pump.stop()

    def _resend(self, sock: FramedSocket, worker_id: str) -> None:
        """The scheduler discarded a frame of ours: resend it clean."""
        completion = self._last_completion
        if completion is None:
            return
        log.info(
            "net_worker.resend",
            message=f"[{self.name}: resending nacked completion"
            f" for {completion.key}]",
            name=self.name,
            key=completion.key,
        )
        with self._send_lock:
            sock.send(completion)

    # ------------------------------------------------------------------
    def _run_cell(
        self,
        sock: FramedSocket,
        pump: _HeartbeatPump,
        worker_id: str,
        assignment: CellAssignment,
    ) -> None:
        pump.lease_id = assignment.lease_id
        try:
            state = self._states.get(assignment.payload_key)
            if state is None:
                state = build_worker_state(assignment.payload, self.stats_cache_dir)
                self._states[assignment.payload_key] = state
            state["worker_id"] = worker_id
            raw = run_cell_task(state, assignment.task)
            completion = CompletionMsg(
                worker_id=worker_id,
                lease_id=assignment.lease_id,
                digest=assignment.digest,
                key=assignment.task.key,
                attempt=assignment.attempt,
                epoch=assignment.epoch,
                record=raw.record,
                duration_s=raw.duration_s,
                telemetry=raw.telemetry,
            )
        except Exception as error:  # defense in depth: report, don't die
            completion = dataclasses.replace(
                _error_completion(assignment, error), worker_id=worker_id
            )
        self.cells_run += 1
        self._last_completion = completion
        wire = (
            self.chaos.decide_wire(assignment.task.key, assignment.attempt)
            if self.chaos is not None
            else _NO_WIRE
        )
        if wire.delay_s > 0:
            METRICS.inc("chaos.injections", action="wire-delay")
            time.sleep(wire.delay_s)
        frame = encode_message(completion)
        frame_seed = derive_key(
            self.chaos.spec.seed if self.chaos else 0,
            f"{assignment.task.key}#wire-bytes",
            32,
        )
        with self._send_lock:
            # Clear the lease under the send lock (the Pipe discipline):
            # no stale heartbeat can follow the completion.
            pump.lease_id = None
            if wire.fate == "drop":
                # The frame vanishes in the network; the worker is healthy
                # and will idle-ping, so the scheduler learns the lease
                # outcome was lost and re-dispatches.
                METRICS.inc("chaos.injections", action="wire-drop")
            elif wire.fate == "corrupt":
                METRICS.inc("chaos.injections", action="wire-corrupt")
                sock.send_bytes(corrupt_frame(frame, frame_seed))
            elif wire.fate == "truncate":
                METRICS.inc("chaos.injections", action="wire-truncate")
                sock.send_bytes(truncate_frame(frame, frame_seed))
            else:
                sock.send_bytes(frame)
                if wire.duplicate:
                    METRICS.inc("chaos.injections", action="wire-duplicate")
                    sock.send_bytes(frame)
        if wire.fate == "truncate":
            raise ConnectionLostError(
                "chaos tore the completion frame mid-write",
                kind="chaos-truncate",
                key=assignment.task.key,
            )
        if wire.conn_drop:
            METRICS.inc("chaos.injections", action="wire-conn-drop")
            raise ConnectionLostError(
                "chaos dropped the connection after a clean send",
                kind="chaos-conn-drop",
                key=assignment.task.key,
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def run_net_worker(
    address: str,
    *,
    name: str,
    stats_cache_dir: Optional[str] = None,
    chaos_spec: Optional[ChaosSpec] = None,
    frame_timeout_s: float = 10.0,
    reconnect: Optional[RetryPolicy] = None,
    max_reconnects: int = 8,
) -> int:
    """Run one socket worker until shutdown; returns cells run."""
    worker = _NetWorker(
        address,
        name=name,
        stats_cache_dir=stats_cache_dir,
        chaos_spec=chaos_spec,
        frame_timeout_s=frame_timeout_s,
        reconnect=reconnect,
        max_reconnects=max_reconnects,
    )
    return worker.run()


def net_worker_main(
    address: str,
    name: str,
    stats_cache_dir: Optional[str],
    obs_config: Optional[dict],
    chaos_spec: Optional[ChaosSpec],
    frame_timeout_s: float = 10.0,
    max_reconnects: int = 8,
) -> None:
    """Process entry point (picklable target for multiprocessing)."""
    if obs_config is not None:
        apply_config(obs_config)
    run_net_worker(
        address,
        name=name,
        stats_cache_dir=stats_cache_dir,
        chaos_spec=chaos_spec,
        frame_timeout_s=frame_timeout_s,
        max_reconnects=max_reconnects,
    )


def spawn_net_workers(
    address: str,
    count: int,
    *,
    name_prefix: str = "net",
    stats_cache_dir: Optional[str] = None,
    obs_config: Optional[dict] = None,
    chaos_spec: Optional[ChaosSpec] = None,
    frame_timeout_s: float = 10.0,
    max_reconnects: int = 8,
    mp_context: Optional[str] = None,
):
    """Spawn ``count`` net-worker processes dialing ``address``.

    Returns the (started) process handles; callers join them.  Used by
    the ``work`` CLI subcommand and the distributed tests/smoke.
    """
    import multiprocessing

    ctx = (
        multiprocessing.get_context(mp_context)
        if mp_context
        else multiprocessing.get_context()
    )
    processes = []
    for index in range(count):
        worker_name = f"{name_prefix}{index}"
        process = ctx.Process(
            target=net_worker_main,
            args=(
                address,
                worker_name,
                stats_cache_dir,
                obs_config,
                chaos_spec,
                frame_timeout_s,
                max_reconnects,
            ),
            daemon=True,
            name=f"repro-net-{worker_name}",
        )
        process.start()
        processes.append(process)
    return processes


__all__ = ["net_worker_main", "run_net_worker", "spawn_net_workers"]
