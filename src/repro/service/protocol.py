"""Wire protocol between the campaign scheduler and its workers.

Everything that crosses the scheduler/worker process boundary is one of
the small, picklable dataclasses below, sent over one-directional
``multiprocessing.Pipe`` connections (one task pipe and one result pipe
per worker, so a worker dying mid-write can tear at most its *own*
channel, never a shared queue).

Scheduler -> worker: :class:`CellAssignment` (a leased cell),
:class:`ShutdownMsg` (graceful drain), :class:`RegisteredMsg`
(registration acknowledgement for socket workers), and :class:`NackMsg`
(a frame from the worker failed integrity checks; please resend).
Worker -> scheduler: :class:`HelloMsg` (socket-worker registration),
:class:`HeartbeatMsg` (lease renewal), :class:`CompletionMsg` (a
finished cell, carrying the lease identity that produced it so the
scheduler can fence stale and duplicate deliveries), and
:class:`GoodbyeMsg` (clean exit acknowledgement).

The same message set crosses both substrates: local workers ship the
dataclasses over ``multiprocessing.Pipe`` (pickle), remote workers ship
them as length-prefixed checksummed JSON frames over TCP
(:mod:`repro.service.transport`).

Distributed trace context crosses with them: every
:class:`CellAssignment` carries the submitting span's
``"trace_id:span_id"`` token inside its :class:`CellTask` (the
``trace`` field), so the worker-side cell spans parent under the
scheduler's ``service.submit`` span regardless of substrate -- pickle
and JSON framing both round-trip the token untouched.

Cells are identified by a *content digest* (:func:`cell_digest`): the
same construction as the content-keyed stats cache
(:func:`repro.parallel.cache.stats_cache_key`), applied one level up --
a digest over everything that determines a cell's tidy record.  Two
tenants submitting overlapping sweep grids therefore share cells by
construction: the scheduler runs each digest once and fans the record
out to every waiting submission.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.parallel.executor import CellTask


def cell_digest(payload: dict, key: str) -> str:
    """Content digest identifying one cell's result across submissions.

    Args:
        payload: The owning campaign's :meth:`Campaign.parallel_payload`
            (contributes the DRAM config and degrade policy -- the
            grid-independent inputs a record depends on).
        key: The campaign's canonical cell key (contributes workload,
            mapping spec, scheme, threshold, and scale).
    """
    digest = hashlib.blake2b(digest_size=20)
    for part in (key, payload.get("config"), payload.get("degrade_scale_factor")):
        digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


def payload_digest(payload: dict) -> str:
    """Digest identifying one campaign constructor payload.

    Workers key their rebuilt-campaign cache on this, so a worker serving
    several tenants builds each distinct campaign exactly once.
    """
    digest = hashlib.blake2b(digest_size=12)
    for key in sorted(payload):
        digest.update(f"{key}={payload[key]!r}|".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Scheduler -> worker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CellAssignment:
    """One leased cell, dispatched to a specific worker.

    The lease fields (``lease_id``, ``attempt``, ``epoch``) travel with
    the assignment and come back verbatim on every heartbeat and
    completion, so the scheduler can always tell which dispatch of a
    cell a message belongs to.
    """

    task: CellTask
    payload: dict
    payload_key: str
    digest: str
    lease_id: str
    attempt: int
    epoch: int
    heartbeat_interval_s: float


@dataclass(frozen=True)
class ShutdownMsg:
    """Graceful stop: finish nothing new, acknowledge with a goodbye."""


@dataclass(frozen=True)
class RegisteredMsg:
    """Registration acknowledgement for a socket worker.

    Carries the scheduler-assigned ``worker_id`` (unique per
    *connection*: a reconnecting worker gets a fresh identity) and the
    heartbeat cadence the scheduler expects.
    """

    worker_id: str
    heartbeat_interval_s: float


@dataclass(frozen=True)
class NackMsg:
    """One of the worker's frames was discarded (checksum/decode failure).

    ``lease_id`` names the lease the scheduler currently attributes to
    the worker (empty when unknown).  A worker holding an unacknowledged
    completion resends it -- cheap fast-path recovery that spares the
    cell a full lease-expiry round trip.
    """

    reason: str
    lease_id: str = ""


# ---------------------------------------------------------------------------
# Worker -> scheduler
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HelloMsg:
    """First frame of a socket worker's session: who is connecting.

    ``name`` is the worker's *stable* self-chosen identity (it survives
    reconnects and lands in logs/manifests); the scheduler's reply
    (:class:`RegisteredMsg`) assigns the per-connection ``worker_id``
    used by the lease table.
    """

    name: str
    pid: int = 0
    reconnects: int = 0  #: How many times this worker has reconnected.


@dataclass(frozen=True)
class HeartbeatMsg:
    """Periodic liveness proof for the lease a worker currently holds.

    ``sent_at`` is wall-clock (human-readable in logs); ``sent_monotonic``
    is the sender's monotonic clock, which the scheduler uses to compute
    heartbeat latency *drift* (receive-interval minus send-interval)
    without cross-clock skew -- the two clocks never need a common
    epoch, only a common rate.  An **idle ping** is a heartbeat with an
    empty ``lease_id``: socket workers send it between cells so the
    scheduler can tell an idle worker from a half-open connection.
    """

    worker_id: str
    lease_id: str
    sent_at: float
    sent_monotonic: float = 0.0


@dataclass(frozen=True)
class CompletionMsg:
    """One finished cell plus the lease identity that produced it."""

    worker_id: str
    lease_id: str
    digest: str
    key: str
    attempt: int
    epoch: int
    record: dict
    duration_s: float = 0.0
    telemetry: Optional[dict] = field(default=None)


@dataclass(frozen=True)
class GoodbyeMsg:
    """Clean worker exit (response to :class:`ShutdownMsg`)."""

    worker_id: str
    cells_run: int = 0


__all__ = [
    "CellAssignment",
    "CompletionMsg",
    "GoodbyeMsg",
    "HeartbeatMsg",
    "HelloMsg",
    "NackMsg",
    "RegisteredMsg",
    "ShutdownMsg",
    "cell_digest",
    "payload_digest",
]
