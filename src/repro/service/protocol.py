"""Wire protocol between the campaign scheduler and its workers.

Everything that crosses the scheduler/worker process boundary is one of
the small, picklable dataclasses below, sent over one-directional
``multiprocessing.Pipe`` connections (one task pipe and one result pipe
per worker, so a worker dying mid-write can tear at most its *own*
channel, never a shared queue).

Scheduler -> worker: :class:`CellAssignment` (a leased cell) and
:class:`ShutdownMsg` (graceful drain).  Worker -> scheduler:
:class:`HeartbeatMsg` (lease renewal), :class:`CompletionMsg` (a
finished cell, carrying the lease identity that produced it so the
scheduler can fence stale and duplicate deliveries), and
:class:`GoodbyeMsg` (clean exit acknowledgement).

Cells are identified by a *content digest* (:func:`cell_digest`): the
same construction as the content-keyed stats cache
(:func:`repro.parallel.cache.stats_cache_key`), applied one level up --
a digest over everything that determines a cell's tidy record.  Two
tenants submitting overlapping sweep grids therefore share cells by
construction: the scheduler runs each digest once and fans the record
out to every waiting submission.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.parallel.executor import CellTask


def cell_digest(payload: dict, key: str) -> str:
    """Content digest identifying one cell's result across submissions.

    Args:
        payload: The owning campaign's :meth:`Campaign.parallel_payload`
            (contributes the DRAM config and degrade policy -- the
            grid-independent inputs a record depends on).
        key: The campaign's canonical cell key (contributes workload,
            mapping spec, scheme, threshold, and scale).
    """
    digest = hashlib.blake2b(digest_size=20)
    for part in (key, payload.get("config"), payload.get("degrade_scale_factor")):
        digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


def payload_digest(payload: dict) -> str:
    """Digest identifying one campaign constructor payload.

    Workers key their rebuilt-campaign cache on this, so a worker serving
    several tenants builds each distinct campaign exactly once.
    """
    digest = hashlib.blake2b(digest_size=12)
    for key in sorted(payload):
        digest.update(f"{key}={payload[key]!r}|".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Scheduler -> worker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CellAssignment:
    """One leased cell, dispatched to a specific worker.

    The lease fields (``lease_id``, ``attempt``, ``epoch``) travel with
    the assignment and come back verbatim on every heartbeat and
    completion, so the scheduler can always tell which dispatch of a
    cell a message belongs to.
    """

    task: CellTask
    payload: dict
    payload_key: str
    digest: str
    lease_id: str
    attempt: int
    epoch: int
    heartbeat_interval_s: float


@dataclass(frozen=True)
class ShutdownMsg:
    """Graceful stop: finish nothing new, acknowledge with a goodbye."""


# ---------------------------------------------------------------------------
# Worker -> scheduler
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HeartbeatMsg:
    """Periodic liveness proof for the lease a worker currently holds."""

    worker_id: str
    lease_id: str
    sent_at: float


@dataclass(frozen=True)
class CompletionMsg:
    """One finished cell plus the lease identity that produced it."""

    worker_id: str
    lease_id: str
    digest: str
    key: str
    attempt: int
    epoch: int
    record: dict
    duration_s: float = 0.0
    telemetry: Optional[dict] = field(default=None)


@dataclass(frozen=True)
class GoodbyeMsg:
    """Clean worker exit (response to :class:`ShutdownMsg`)."""

    worker_id: str
    cells_run: int = 0


__all__ = [
    "CellAssignment",
    "CompletionMsg",
    "GoodbyeMsg",
    "HeartbeatMsg",
    "ShutdownMsg",
    "cell_digest",
    "payload_digest",
]
