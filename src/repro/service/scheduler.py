"""Fault-tolerant campaign service: leased scheduling over worker processes.

:class:`CampaignService` promotes the campaign engine from "one process
pool on one box" to a long-lived scheduler that serves many concurrent
submissions:

* **submissions** (:meth:`CampaignService.submit`) decompose a
  :class:`Campaign` into content-keyed cell states; overlapping tenant
  grids *dedupe* -- a cell digest runs once, its record fans out to
  every waiting submission;
* **admission control** bounds the pending-cell queue; a submission
  that would overflow it fails fast with
  :class:`~repro.errors.ServiceSaturated`, never unbounded memory;
* **leases**: every dispatched cell carries a lease with a heartbeat
  deadline (:mod:`repro.service.lease`).  A worker that crashes, hangs,
  or is SIGKILLed misses its heartbeats; the lease expires and the cell
  is re-dispatched with deterministic backoff from the existing
  :class:`~repro.resilience.executor.RetryPolicy` -- under the
  *infrastructure* retry budget, separate from simulation retries;
* **exactly-once commitment**: completions are idempotent.  The first
  delivery of a cell's record is committed to the
  :class:`~repro.resilience.journal.CheckpointJournal` (stamped with
  lease/attempt/epoch metadata); duplicated or stale-lease deliveries
  are dropped, safe because every attempt of a cell computes the same
  deterministic record;
* **recovery**: dead workers are detected twice over (closed result
  channel -> immediate; silent hang -> lease expiry) and respawned up
  to a restart budget, and a scheduler restarted on the same journal
  resumes without recomputing committed cells.

The scheduler itself is a single asyncio task -- all state mutation
happens on the event loop, so there are no locks around the lease table
or cell map.  A reader thread multiplexes every worker's result pipe
into the loop's inbox via ``call_soon_threadsafe``.

**Distributed mode** (``ServiceConfig.listen``): the scheduler also
accepts TCP socket workers (:mod:`repro.service.net_worker`) speaking
the framed transport (:mod:`repro.service.transport`).  Socket workers
register with a Hello/Registered handshake, heartbeat over their
connection (idle pings included, so a silent link is distinguishable
from an idle worker), and stream completions back.  The *same* lease
table, requeue path, and exactly-once commit logic cover both
substrates: a dropped connection expires leases exactly like a dead
process; a checksum-failed frame is discarded, nacked, and counted,
never fatal.  If no socket worker shows up within
``local_fallback_deadline_s`` while work is pending, the scheduler
degrades gracefully by spawning its usual local Pipe workers -- a
campaign always completes.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.errors import (
    FrameError,
    ServiceSaturated,
    ServiceStopped,
    TransportError,
    WorkerLostError,
    error_record,
)
from repro.obs.live import LiveEndpoint
from repro.obs.manifest import RunManifest
from repro.obs.metrics import series_key
from repro.obs.runtime import METRICS, TRACER, export_config, get_logger
from repro.parallel.cache import STATS_CACHE_ENV
from repro.parallel.executor import CellTask
from repro.resilience.executor import RetryPolicy
from repro.resilience.journal import CheckpointJournal
from repro.service.chaos import ChaosSpec, CompletionGate
from repro.service.lease import Lease, LeaseTable
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    HelloMsg,
    NackMsg,
    RegisteredMsg,
    ShutdownMsg,
    cell_digest,
    payload_digest,
)
from repro.service.transport import FramedSocket, listen_socket
from repro.service.worker import service_worker_main

log = get_logger("service")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`CampaignService`.

    Attributes:
        workers: Worker-process pool size.
        lease_timeout_s: Heartbeat deadline; a lease silent this long is
            expired and its cell re-dispatched.
        heartbeat_interval_s: How often workers renew their lease (keep
            well under ``lease_timeout_s``).
        tick_s: Scheduler housekeeping cadence (expiry scan, dispatch).
        max_pending_cells: Admission-control ceiling on not-yet-committed
            cells across all submissions.
        max_worker_restarts: Total replacement workers the service may
            spawn before declaring itself starved.
        retry: Backoff/budget policy for *infrastructure* re-dispatches
            (``max_infra_attempts`` bounds dispatches per cell;
            ``delay_s`` spaces them deterministically).
        mp_context: Multiprocessing start method ('fork', 'spawn', ...);
            None uses the platform default.
        stats_cache_dir: Shared content-keyed stats-cache directory for
            workers; defaults to ``REPRO_STATS_CACHE`` when set.
        listen: ``"host:port"`` to accept TCP socket workers on (port 0
            binds an ephemeral port; see
            :attr:`CampaignService.listen_address`).  ``None`` (the
            default) keeps the classic in-process Pipe pool.  In listen
            mode no local workers are spawned up front -- ``workers``
            becomes the size of the degraded-mode local pool.
        local_fallback_deadline_s: Listen mode only -- if work is
            pending and *no* worker is alive this long, the scheduler
            spawns ``workers`` local Pipe workers so the campaign still
            completes (degraded mode, counted by
            ``service.transport.fallback``).
        frame_timeout_s: Per-frame progress deadline on worker sockets;
            a connection stalled mid-frame this long is declared lost.
        slow_worker_lag_s: A socket worker whose heartbeat-interval
            drift exceeds this is flagged slow (gauge
            ``service.transport.heartbeat_lag_s``, counter
            ``service.transport.slow_workers``); detection only -- the
            lease timeout remains the action threshold.
        status_listen: ``"host:port"`` for the embedded live
            observability endpoint (:mod:`repro.obs.live`): ``/metrics``
            (Prometheus snapshot), ``/healthz`` (liveness + degraded
            flag; 503 once degraded), ``/status`` (per-worker heartbeat
            lag, leases in flight, cache hit rate, cell progress).
            Read-only; ``None`` (default) starts nothing and costs
            nothing.
    """

    workers: int = 2
    lease_timeout_s: float = 5.0
    heartbeat_interval_s: float = 0.5
    tick_s: float = 0.05
    max_pending_cells: int = 4096
    max_worker_restarts: int = 16
    retry: RetryPolicy = RetryPolicy(backoff_base_s=0.02)
    mp_context: Optional[str] = None
    stats_cache_dir: Optional[str] = None
    listen: Optional[str] = None
    local_fallback_deadline_s: float = 5.0
    frame_timeout_s: float = 10.0
    slow_worker_lag_s: float = 0.25
    status_listen: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.lease_timeout_s <= 0 or self.heartbeat_interval_s <= 0:
            raise ValueError("lease timeout and heartbeat interval must be positive")
        if self.max_pending_cells < 1:
            raise ValueError("max_pending_cells must be >= 1")
        if self.local_fallback_deadline_s < 0:
            raise ValueError("local_fallback_deadline_s must be >= 0")
        if self.frame_timeout_s <= 0:
            raise ValueError("frame_timeout_s must be positive")


@dataclass
class _CellState:
    """Scheduler-side state of one content-keyed cell."""

    digest: str
    key: str
    task: CellTask
    payload: dict
    payload_key: str
    status: str = "pending"  # "pending" | "leased" | "committed"
    record: Optional[dict] = None
    attempts: int = 0  #: Dispatches so far (infrastructure budget).
    epoch: int = 0  #: Requeue generation (bumped on every expiry).
    not_before: float = 0.0  #: Earliest re-dispatch time (backoff).
    lease: Optional[Lease] = None
    waiters: List["SubmissionHandle"] = field(default_factory=list)


@dataclass
class _Worker:
    """Scheduler-side handle on one worker (local process or socket).

    ``kind == "local"`` workers own a child process and a Pipe pair;
    ``kind == "net"`` workers own a :class:`FramedSocket` (``conn``) and
    the heartbeat-drift fields the slow-host detector feeds on:
    intervals measured on the *sender's* monotonic clock
    (``last_beat_monotonic``) are compared against intervals on the
    scheduler's clock (``last_beat_received``), so lag needs no common
    epoch between hosts.
    """

    worker_id: str
    process: Optional[multiprocessing.Process] = None
    task_conn: Optional[mp_connection.Connection] = None
    result_conn: Optional[mp_connection.Connection] = None
    kind: str = "local"  # "local" | "net"
    conn: Optional[FramedSocket] = None
    name: str = ""  #: Stable self-chosen identity of a socket worker.
    state: str = "idle"  # "idle" | "busy" | "suspect" | "dead"
    current_lease: Optional[str] = None
    started_at: float = 0.0
    last_beat_monotonic: float = 0.0
    last_beat_received: float = 0.0
    lag_s: float = 0.0
    slow: bool = False


class SubmissionHandle:
    """One tenant's submitted campaign; await :meth:`result` for records."""

    def __init__(self, submission_id: str, tenant: str, digests: List[str]) -> None:
        self.submission_id = submission_id
        self.tenant = tenant
        #: Cell digests in the campaign's deterministic cell order.
        self.digests = digests
        self.remaining = set(digests)
        self._event = asyncio.Event()
        self._records: Optional[List[dict]] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    async def result(self) -> List[dict]:
        """The campaign's tidy records, one per cell, in cell order.

        Raises :class:`~repro.errors.ServiceStopped` if the service was
        hard-stopped before this submission finished.
        """
        await self._event.wait()
        if self._error is not None:
            raise self._error
        assert self._records is not None
        return self._records


class CampaignService:
    """Asyncio campaign scheduler over a pool of leased worker processes.

    Args:
        config: Scheduling/lease/backpressure knobs.
        journal: Path (or instance) of the durable commit log.  An
            existing journal is *resumed* by default -- its committed
            cells are served from the log without recompute; pass
            ``resume=False`` to start it over.
        chaos: Optional seeded failure-injection schedule (tests/CI).
        manifest: Optional run manifest; every spawned worker's identity
            is recorded in its ``workers`` list.

    Use as an async context manager::

        async with CampaignService(config, journal=path) as service:
            handle = await service.submit(campaign, tenant="alice")
            records = await handle.result()

    or drive synchronously via :func:`run_service`.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        journal: Optional[Union[str, Path, CheckpointJournal]] = None,
        chaos: Optional[ChaosSpec] = None,
        manifest: Optional[RunManifest] = None,
        resume: bool = True,
    ) -> None:
        self.config = config or ServiceConfig()
        if journal is None or isinstance(journal, CheckpointJournal):
            self.journal = journal
        else:
            self.journal = CheckpointJournal(journal)
        if self.journal is not None and not resume:
            self.journal.reset()
        self.chaos = chaos
        self.manifest = manifest
        self._clock = time.monotonic
        self._leases = LeaseTable(self.config.lease_timeout_s, clock=self._clock)
        self._gate = CompletionGate(chaos) if chaos else None
        self._cells: Dict[str, _CellState] = {}
        self._pending: Deque[str] = deque()
        self._workers: Dict[str, _Worker] = {}
        self._handles: List[SubmissionHandle] = []
        self._worker_seq = itertools.count()
        self._submission_seq = itertools.count()
        self._restarts = 0
        self._started = False
        self._draining = False
        self._stop_loop = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inbox: Optional[asyncio.Queue] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._reader_stop = threading.Event()
        self._reader: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        # -- distributed mode ------------------------------------------
        self._listener = None  #: Listening socket (listen mode only).
        #: Actual ``host:port`` bound (resolves a ``:0`` ephemeral port).
        self.listen_address: Optional[str] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._net_threads: List[threading.Thread] = []
        self._conn_seq = itertools.count()
        self._net_seq = itertools.count()
        self._conn_workers: Dict[int, str] = {}  # conn token -> worker_id
        self._fallback_deadline: Optional[float] = None
        self._fallback_done = False
        self._committed_log: Dict[str, dict] = {}
        if self.journal is not None:
            self._committed_log = dict(self.journal.completed())
        self._mp = (
            multiprocessing.get_context(self.config.mp_context)
            if self.config.mp_context
            else multiprocessing.get_context()
        )
        self._stats_cache_dir = self.config.stats_cache_dir or os.environ.get(
            STATS_CACHE_ENV
        ) or None
        # -- live observability endpoint -------------------------------
        self._endpoint: Optional[LiveEndpoint] = None
        #: Actual ``host:port`` of the /metrics endpoint once started.
        self.status_address: Optional[str] = None
        # Published by the scheduler loop via whole-dict replacement;
        # HTTP handler threads only ever read the reference, so they
        # never observe a half-built snapshot and need no lock.
        self._status_snapshot: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CampaignService":
        """Spawn workers, start the reader thread and scheduler loop."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._inbox = asyncio.Queue()
        if self.config.listen is not None:
            self._listener = listen_socket(self.config.listen)
            host, port = self._listener.getsockname()[:2]
            self.listen_address = f"{host}:{port}"
            self._fallback_deadline = (
                self._clock() + self.config.local_fallback_deadline_s
            )
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True
            )
            self._accept_thread.start()
        else:
            for _ in range(self.config.workers):
                self._spawn_worker()
        self._reader = threading.Thread(target=self._read_results, daemon=True)
        self._reader.start()
        if self.config.status_listen is not None:
            self._endpoint = LiveEndpoint(
                self.config.status_listen,
                status_provider=lambda: self._status_snapshot,
                health_provider=self._health_payload,
            )
            self._endpoint.start()
            self.status_address = self._endpoint.address
            self._publish_status()
        self._loop_task = asyncio.create_task(self._run())
        topology = (
            f"listening on {self.listen_address}"
            if self.listen_address
            else f"{self.config.workers} workers"
        )
        log.info(
            "service.started",
            message=f"[service up: {topology},"
            f" lease timeout {self.config.lease_timeout_s}s]",
            workers=self.config.workers,
            listen=self.listen_address,
        )
        return self

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.drain()
        else:
            await self.stop()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, then stop.

        Stops admitting new submissions, waits for every accepted
        submission to resolve (all its cells committed to the journal --
        the in-flight checkpoint), then shuts workers down cleanly.  A
        scheduler restarted on the same journal afterwards serves the
        committed cells byte-identically without recompute.
        """
        self._draining = True
        for handle in list(self._handles):
            await handle._event.wait()
        await self._shutdown(graceful=True)

    async def stop(self) -> None:
        """Hard shutdown: terminate workers now; fail unresolved handles."""
        self._draining = True
        await self._shutdown(graceful=False)
        for handle in self._handles:
            if not handle.done:
                handle._error = ServiceStopped(
                    "service stopped before submission completed",
                    submission=handle.submission_id,
                    remaining_cells=len(handle.remaining),
                )
                handle._event.set()

    async def _shutdown(self, *, graceful: bool) -> None:
        self._stop_loop = True
        if self._loop_task is not None:
            try:
                await self._loop_task
            except Exception:
                pass  # already surfaced through the handles' errors
            self._loop_task = None
        self._reader_stop.set()
        if self._reader is not None:
            self._reader.join(timeout=2.0)
            self._reader = None
        if self._listener is not None:
            try:
                self._listener.close()  # unblocks the accept thread
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for worker in self._workers.values():
            if worker.state == "dead":
                continue
            if graceful:
                try:
                    if worker.kind == "net":
                        worker.conn.send(ShutdownMsg())
                    else:
                        worker.task_conn.send(ShutdownMsg())
                except (OSError, ValueError):
                    pass
        if graceful:
            # Let socket workers *read* the shutdown before we close their
            # connections: closing with inbound bytes queued (heartbeats)
            # RSTs the socket, which can destroy the queued ShutdownMsg.
            # Each worker answers with a goodbye and closes its side; its
            # reader thread exits on that EOF, so joining the readers is
            # exactly "every worker has acknowledged or gone silent".
            for thread in self._net_threads:
                thread.join(timeout=2.0)
        for worker in self._workers.values():
            if worker.state == "dead":
                continue
            if worker.process is not None:
                worker.process.join(timeout=2.0 if graceful else 0.2)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
            self._close_worker(worker)
        for thread in self._net_threads:
            thread.join(timeout=1.0)
        self._net_threads = []
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
        if METRICS.enabled:
            METRICS.set_gauge("service.workers", 0)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, campaign, tenant: str = "default") -> SubmissionHandle:
        """Admit one campaign; returns a handle to await its records.

        Cells already committed (by an earlier submission, an earlier
        *run* via the resumed journal, or an overlapping tenant) are
        served from the commit log; only genuinely new cell digests
        enter the dispatch queue.

        Raises:
            ServiceSaturated: Admitting this campaign's new cells would
                exceed ``max_pending_cells`` (or the service is
                draining).
        """
        if not self._started:
            raise RuntimeError("service not started; use 'async with' or start()")
        if self._draining:
            raise ServiceSaturated("service is draining; not accepting submissions")
        payload = campaign.parallel_payload()
        payload_key = payload_digest(payload)
        with TRACER.span("service.submit", cells=campaign.size(), tenant=tenant):
            # Every cell this submission creates ships the submit span's
            # context; worker-side campaign.cell spans then parent under
            # it, whether the cell runs over a Pipe or a socket.  A cell
            # deduped across tenants keeps its *first* submitter's trace.
            trace_ctx = TRACER.current_context() or ""
            plan = []  # (digest, key, coords) in deterministic cell order
            new_digests = set()
            for workload, spec, scheme, t_rh in campaign.cells():
                key = campaign.cell_key(workload, spec, scheme, t_rh)
                digest = cell_digest(payload, key)
                plan.append((digest, key, (workload, spec, scheme, t_rh)))
                if digest not in self._cells and digest not in self._committed_log:
                    new_digests.add(digest)
            backlog = sum(
                1 for c in self._cells.values() if c.status != "committed"
            )
            if backlog + len(new_digests) > self.config.max_pending_cells:
                METRICS.inc("service.submissions", result="saturated")
                raise ServiceSaturated(
                    "admission queue is full",
                    pending_cells=backlog,
                    new_cells=len(new_digests),
                    limit=self.config.max_pending_cells,
                    tenant=tenant,
                )
            handle = SubmissionHandle(
                f"s{next(self._submission_seq)}", tenant, [d for d, _, _ in plan]
            )
            for digest, key, (workload, spec, scheme, t_rh) in plan:
                cell = self._cells.get(digest)
                if cell is None:
                    cell = _CellState(
                        digest=digest,
                        key=key,
                        task=CellTask(
                            0, key, workload, spec, scheme, t_rh, trace=trace_ctx
                        ),
                        payload=payload,
                        payload_key=payload_key,
                    )
                    self._cells[digest] = cell
                    if digest in self._committed_log:
                        cell.status = "committed"
                        cell.record = self._committed_log[digest]
                        METRICS.inc("service.cells", result="resumed")
                    else:
                        self._pending.append(digest)
                        METRICS.inc("service.cells", result="new")
                else:
                    METRICS.inc("service.cells", result="deduped")
                if cell.status == "committed":
                    handle.remaining.discard(digest)
                else:
                    cell.waiters.append(handle)
            self._handles.append(handle)
            METRICS.inc("service.submissions", result="accepted")
            if not handle.remaining:
                self._finish_handle(handle)
            self._dispatch()
        log.info(
            "service.submitted",
            message=f"[{tenant}/{handle.submission_id}: {len(plan)} cells,"
            f" {len(new_digests)} new]",
            tenant=tenant,
            cells=len(plan),
            new=len(new_digests),
        )
        return handle

    # ------------------------------------------------------------------
    # Scheduler loop (single asyncio task; owns all mutable state)
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._inbox is not None
        try:
            while not self._stop_loop:
                try:
                    item = await asyncio.wait_for(
                        self._inbox.get(), timeout=self.config.tick_s
                    )
                except asyncio.TimeoutError:
                    item = None
                while True:
                    if item is not None:
                        self._handle_item(item)
                    if self._inbox.empty():
                        break
                    item = self._inbox.get_nowait()
                self._expire_leases()
                self._reap_workers()
                if self._gate is not None:
                    for held in self._gate.flush_due():
                        self._on_completion(*held)
                self._maybe_fallback()
                self._check_starvation()
                self._dispatch()
                self._publish_status()
        except Exception as error:
            # A scheduler bug (or a failed journal write) must not leave
            # submitters awaiting handles forever: fail them loudly.
            log.error(
                "service.loop_failed",
                message=f"[scheduler loop died: {error}]",
                error=str(error),
            )
            for handle in self._handles:
                if not handle.done:
                    handle._error = ServiceStopped(
                        "scheduler loop failed", cause=str(error)
                    )
                    handle._event.set()
            raise

    def _handle_item(self, item) -> None:
        kind, source, message = item
        if kind == "hello":
            conn, hello = message
            self._register_net_worker(source, conn, hello)
            return
        if kind in ("net-msg", "net-frame-error", "net-closed"):
            worker_id = self._conn_workers.get(source)
            if kind == "net-closed":
                self._conn_workers.pop(source, None)
                if worker_id is not None:
                    self._worker_lost(worker_id, "connection-lost")
                return
            if worker_id is None:
                return  # connection died before registration completed
            if kind == "net-frame-error":
                self._on_frame_error(worker_id, message)
                return
        else:
            worker_id = source
        if kind == "closed":
            self._worker_lost(worker_id, "channel-closed")
            return
        if isinstance(message, HeartbeatMsg):
            self._on_heartbeat(worker_id, message)
            return
        if isinstance(message, CompletionMsg):
            if self._gate is not None:
                for delivered in self._gate.intercept((worker_id, message)):
                    self._on_completion(*delivered)
            else:
                self._on_completion(worker_id, message)
            return
        if isinstance(message, GoodbyeMsg):
            worker = self._workers.get(worker_id)
            if worker is not None and worker.state != "dead":
                worker.state = "dead"
            return
        if isinstance(message, NackMsg):
            # The worker discarded one of *our* frames (a torn or
            # corrupted assignment).  The lease covering it will expire
            # and re-dispatch; nothing to resend statelessly.
            METRICS.inc("service.transport.frame_errors", kind="peer-nack")
            log.warning(
                "service.peer_nack",
                message=f"[{worker_id} discarded a frame of ours:"
                f" {message.reason}]",
                worker=worker_id,
                reason=message.reason,
            )
            return

    # -- heartbeats ----------------------------------------------------
    def _on_heartbeat(self, worker_id: str, beat: HeartbeatMsg) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None and worker.kind == "net":
            self._track_heartbeat(worker, beat)
        if beat.lease_id:
            if self._leases.renew(beat.lease_id):
                METRICS.inc("service.heartbeats")
            return
        # Idle ping (socket workers only): the worker is alive and holds
        # no lease.  If we still attribute a lease to it that is no
        # longer active -- e.g. its completion frame was lost and the
        # lease has since expired -- the worker may rejoin the idle pool.
        if worker is None or worker.state == "dead":
            return
        METRICS.inc("service.heartbeats")
        if worker.current_lease and self._leases.get(worker.current_lease) is None:
            worker.current_lease = None
        if worker.current_lease is None and worker.state in ("busy", "suspect"):
            worker.state = "idle"

    def _track_heartbeat(self, worker: _Worker, beat: HeartbeatMsg) -> None:
        """Slow-host detection from monotonic heartbeat intervals.

        Lag is (receive interval) - (send interval): both are measured
        on a *single* clock each (worker's and scheduler's monotonic
        respectively), so the comparison needs no common epoch and no
        wall-clock synchronization between hosts.
        """
        now = self._clock()
        if worker.last_beat_monotonic and beat.sent_monotonic:
            sent_dt = beat.sent_monotonic - worker.last_beat_monotonic
            recv_dt = now - worker.last_beat_received
            lag = max(0.0, recv_dt - sent_dt)
            worker.lag_s = lag
            label = worker.name or worker.worker_id
            if METRICS.enabled:
                METRICS.set_gauge(
                    "service.transport.heartbeat_lag_s", lag, worker=label
                )
            if lag > self.config.slow_worker_lag_s and not worker.slow:
                worker.slow = True
                METRICS.inc("service.transport.slow_workers")
                log.warning(
                    "service.slow_worker",
                    message=f"[{worker.worker_id} ({label}) heartbeats lag"
                    f" {lag * 1000:.0f}ms behind its send cadence]",
                    worker=worker.worker_id,
                    lag_s=round(lag, 4),
                )
            elif worker.slow and lag <= self.config.slow_worker_lag_s / 2:
                worker.slow = False  # hysteresis: recovered
        if beat.sent_monotonic:
            worker.last_beat_monotonic = beat.sent_monotonic
            worker.last_beat_received = now

    # -- frame integrity ------------------------------------------------
    def _on_frame_error(self, worker_id: str, kind: str) -> None:
        """One frame from a worker failed checksum/decode: discard + nack.

        Never fatal to the scheduler: the reader already skipped the
        frame; here we count it and ask the worker to resend whatever it
        last sent (the cheap path around a full lease-expiry cycle).
        """
        METRICS.inc("service.transport.frame_errors", kind=kind)
        worker = self._workers.get(worker_id)
        lease_id = (worker.current_lease or "") if worker is not None else ""
        log.warning(
            "service.frame_discarded",
            message=f"[discarded a bad frame from {worker_id} ({kind});"
            " nacking]",
            worker=worker_id,
            kind=kind,
        )
        if worker is not None and worker.kind == "net" and worker.state != "dead":
            try:
                worker.conn.send(NackMsg(reason=kind, lease_id=lease_id))
            except OSError:
                self._worker_lost(worker_id, "connection-lost")

    # -- completions ----------------------------------------------------
    def _on_completion(self, worker_id: str, message: CompletionMsg) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None and worker.current_lease == message.lease_id:
            worker.current_lease = None
            if worker.state in ("busy", "suspect"):
                worker.state = "idle"
        self._leases.release(message.lease_id)
        cell = self._cells.get(message.digest)
        if cell is None or cell.status == "committed":
            # Duplicate delivery or stale attempt of an already-committed
            # cell: drop.  Deterministic cells make this always safe.
            METRICS.inc("service.completions", result="duplicate")
            return
        self._commit(
            cell,
            message.record,
            worker_id=worker_id,
            duration_s=message.duration_s,
            attempt=message.attempt,
            epoch=message.epoch,
            lease_id=message.lease_id,
            telemetry=message.telemetry,
        )

    def _commit(
        self,
        cell: _CellState,
        record: dict,
        *,
        worker_id: Optional[str],
        attempt: int,
        epoch: int,
        lease_id: Optional[str],
        duration_s: float = 0.0,
        telemetry: Optional[dict] = None,
    ) -> None:
        """Exactly-once commitment point for one cell."""
        if telemetry:
            METRICS.merge(telemetry)
        cell.status = "committed"
        cell.record = record
        cell.lease = None
        self._committed_log[cell.digest] = record
        if self.journal is not None:
            self.journal.append(
                cell.digest,
                record,
                duration_s=duration_s or None,
                worker_id=worker_id,
                attempt=attempt,
                epoch=epoch,
                lease_id=lease_id,
            )
        METRICS.inc("service.completions", result="committed")
        waiters, cell.waiters = cell.waiters, []
        for handle in waiters:
            handle.remaining.discard(cell.digest)
            if not handle.remaining and not handle.done:
                self._finish_handle(handle)

    def _finish_handle(self, handle: SubmissionHandle) -> None:
        handle._records = [self._cells[d].record for d in handle.digests]
        handle._event.set()

    # -- failure detection & recovery -----------------------------------
    def _expire_leases(self) -> None:
        for lease in self._leases.expire_due():
            METRICS.inc("service.lease_expiries")
            log.warning(
                "service.lease_expired",
                message=f"[lease {lease.lease_id} ({lease.key}) on"
                f" {lease.worker_id} missed its heartbeat deadline]",
                worker=lease.worker_id,
                key=lease.key,
            )
            worker = self._workers.get(lease.worker_id)
            if (
                worker is not None
                and worker.current_lease == lease.lease_id
                and worker.state == "busy"
            ):
                # Could be a hang rather than a death: stop dispatching
                # to it, but let it rejoin if it ever reports back.
                worker.state = "suspect"
            cell = self._cells.get(lease.digest)
            if cell is not None and cell.status == "leased" and cell.lease is lease:
                self._requeue(cell, "lease-expired")

    def _requeue(self, cell: _CellState, reason: str) -> None:
        cell.lease = None
        cell.epoch += 1
        METRICS.inc("service.requeues", reason=reason)
        if cell.attempts >= self.config.retry.max_infra_attempts:
            error = WorkerLostError(
                "cell exhausted its infrastructure retry budget",
                key=cell.key,
                dispatches=cell.attempts,
                reason=reason,
            )
            self._commit(
                cell,
                self._error_record(cell, error),
                worker_id=None,
                attempt=cell.attempts,
                epoch=cell.epoch,
                lease_id=None,
            )
            return
        cell.status = "pending"
        # Existing RetryPolicy machinery: deterministic, per-cell backoff
        # spaces the re-dispatch (the '#infra' namespace matches the
        # executor's separate infrastructure budget).
        cell.not_before = self._clock() + self.config.retry.delay_s(
            f"{cell.key}#infra", cell.attempts
        )
        self._pending.append(cell.digest)

    def _error_record(self, cell: _CellState, error: BaseException) -> dict:
        task = cell.task
        record = {
            "workload": task.workload,
            "mapping": task.spec.label,
            "scheme": task.scheme,
            "t_rh": task.t_rh,
            "status": "error",
            "attempts": cell.attempts,
        }
        record.update(error_record(error))
        return record

    def _reap_workers(self) -> None:
        for worker in list(self._workers.values()):
            if (
                worker.state != "dead"
                and worker.process is not None
                and not worker.process.is_alive()
            ):
                self._worker_lost(worker.worker_id, "worker-dead")

    def _worker_lost(self, worker_id: str, reason: str) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.state == "dead":
            return
        recovery = (
            "it may reconnect" if worker.kind == "net" else "respawning"
        )
        log.warning(
            "service.worker_lost",
            message=f"[worker {worker_id} lost ({reason});"
            f" expiring its lease; {recovery}]",
            worker=worker_id,
            reason=reason,
        )
        worker.state = "dead"
        worker.current_lease = None
        self._close_worker(worker)
        for lease in self._leases.for_worker(worker_id):
            self._leases.expire(lease.lease_id)
            METRICS.inc("service.lease_expiries")
            cell = self._cells.get(lease.digest)
            if cell is not None and cell.status == "leased":
                self._requeue(cell, reason)
        if worker.kind == "net":
            # Socket workers own their own lifecycle: a lost connection
            # is re-established by the *worker* (with backoff), arriving
            # back here as a fresh registration.  Nothing to respawn.
            return
        if not self._stop_loop and self._restarts < self.config.max_worker_restarts:
            self._restarts += 1
            METRICS.inc("service.worker_restarts")
            self._spawn_worker(replaces=worker_id)

    def _maybe_fallback(self) -> None:
        """Degraded mode: no workers showed up, so make our own.

        Listen mode only.  When the fallback deadline passes with
        outstanding work and not a single live worker (none ever
        connected, or every one disconnected for good), the scheduler
        spawns its usual local Pipe pool so the campaign still
        completes.  One-shot; while any worker is alive the deadline
        keeps sliding forward.
        """
        if (
            self._listener is None
            or self._fallback_done
            or self._fallback_deadline is None
        ):
            return
        now = self._clock()
        if any(w.state != "dead" for w in self._workers.values()):
            self._fallback_deadline = now + self.config.local_fallback_deadline_s
            return
        if now < self._fallback_deadline:
            return
        outstanding = any(c.status != "committed" for c in self._cells.values())
        if not outstanding:
            self._fallback_deadline = now + self.config.local_fallback_deadline_s
            return
        self._fallback_done = True
        METRICS.inc("service.transport.fallback")
        log.warning(
            "service.degraded",
            message=f"[no workers connected within"
            f" {self.config.local_fallback_deadline_s}s; degrading to"
            f" {self.config.workers} local workers]",
            workers=self.config.workers,
        )
        for _ in range(self.config.workers):
            self._spawn_worker()

    def _check_starvation(self) -> None:
        """Fail outstanding cells when no worker can ever run them."""
        if any(w.state != "dead" for w in self._workers.values()):
            return
        if self._restarts < self.config.max_worker_restarts:
            return
        if self._listener is not None and not self._fallback_done:
            return  # a socket worker (or the fallback pool) may yet come
        for cell in self._cells.values():
            if cell.status == "committed":
                continue
            error = WorkerLostError(
                "no workers left and the restart budget is exhausted",
                key=cell.key,
                restarts=self._restarts,
            )
            self._commit(
                cell,
                self._error_record(cell, error),
                worker_id=None,
                attempt=cell.attempts,
                epoch=cell.epoch,
                lease_id=None,
            )

    # -- dispatch -------------------------------------------------------
    def _dispatch(self) -> None:
        now = self._clock()
        idle = sorted(
            (w for w in self._workers.values() if w.state == "idle"),
            key=lambda w: w.worker_id,
        )
        if idle:
            deferred: List[str] = []
            while self._pending and idle:
                digest = self._pending.popleft()
                cell = self._cells.get(digest)
                if cell is None or cell.status != "pending":
                    continue
                if cell.not_before > now:
                    deferred.append(digest)
                    continue
                worker = idle.pop(0)
                self._dispatch_to(worker, cell)
            self._pending.extend(deferred)
        if METRICS.enabled:
            METRICS.set_gauge("service.queue_depth", len(self._pending))
            METRICS.set_gauge(
                "service.workers",
                sum(1 for w in self._workers.values() if w.state != "dead"),
            )

    def _dispatch_to(self, worker: _Worker, cell: _CellState) -> None:
        cell.attempts += 1
        lease = self._leases.grant(
            cell.digest, cell.key, worker.worker_id, cell.attempts, cell.epoch
        )
        cell.lease = lease
        cell.status = "leased"
        worker.state = "busy"
        worker.current_lease = lease.lease_id
        assignment = CellAssignment(
            task=cell.task,
            payload=cell.payload,
            payload_key=cell.payload_key,
            digest=cell.digest,
            lease_id=lease.lease_id,
            attempt=cell.attempts,
            epoch=cell.epoch,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
        )
        try:
            if worker.kind == "net":
                worker.conn.send(assignment)
            else:
                worker.task_conn.send(assignment)
        except (OSError, ValueError):
            self._leases.expire(lease.lease_id)
            self._requeue(cell, "channel-closed")
            self._worker_lost(worker.worker_id, "channel-closed")
            return
        METRICS.inc("service.dispatches")

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------
    def _spawn_worker(self, replaces: Optional[str] = None) -> _Worker:
        worker_id = f"w{next(self._worker_seq)}"
        task_r, task_w = self._mp.Pipe(duplex=False)
        result_r, result_w = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=service_worker_main,
            args=(
                worker_id,
                task_r,
                result_w,
                self._stats_cache_dir,
                export_config(),
                self.chaos,
                self.config.heartbeat_interval_s,
            ),
            daemon=True,
            name=f"repro-service-{worker_id}",
        )
        process.start()
        # Close the child's pipe ends in the parent *immediately*: later
        # forks must not inherit them, or a dead worker's channel would
        # never report EOF (and broken-pipe detection on dispatch would
        # not fire).
        task_r.close()
        result_w.close()
        worker = _Worker(
            worker_id=worker_id,
            process=process,
            task_conn=task_w,
            result_conn=result_r,
            started_at=self._clock(),
        )
        with self._conn_lock:
            self._workers[worker_id] = worker
        if self.manifest is not None:
            self.manifest.workers.append(
                {
                    "worker_id": worker_id,
                    "pid": process.pid,
                    "replaces": replaces,
                    "stats_cache_dir": self._stats_cache_dir,
                }
            )
        return worker

    def _close_worker(self, worker: _Worker) -> None:
        if worker.kind == "net":
            if worker.conn is not None:
                worker.conn.close()
            if METRICS.enabled:
                METRICS.set_gauge(
                    "service.transport.heartbeat_lag_s",
                    0.0,
                    worker=worker.name or worker.worker_id,
                )
            return
        with self._conn_lock:
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Socket workers: accept loop, per-connection readers, registration
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        """Accept socket workers; one reader thread per connection."""
        while not self._reader_stop.is_set():
            try:
                raw, _addr = self._listener.accept()
            except OSError:
                return  # listener closed (shutdown)
            conn = FramedSocket(raw, frame_timeout_s=self.config.frame_timeout_s)
            token = next(self._conn_seq)
            thread = threading.Thread(
                target=self._read_net, args=(token, conn), daemon=True
            )
            self._net_threads.append(thread)
            thread.start()

    def _read_net(self, token: int, conn: FramedSocket) -> None:
        """Reader thread of one worker connection -> the asyncio inbox.

        Enforces the typed failure envelope at the edge: a
        :class:`FrameError` discards one frame and keeps reading; any
        :class:`TransportError`/``OSError`` ends the connection, which
        the loop converts into lease expiry + requeue.
        """
        registered = False
        try:
            while True:
                try:
                    message = conn.recv()
                except FrameError as error:
                    self._post(
                        (
                            "net-frame-error",
                            token,
                            str(error.context.get("kind", "unknown")),
                        )
                    )
                    continue
                except (TransportError, OSError):
                    return
                if message is None:
                    # Idle timeout.  Keep listening -- except during
                    # shutdown, where a worker idle this long is not
                    # going to acknowledge anything (live ones answer
                    # the ShutdownMsg with a goodbye + EOF well before
                    # one frame timeout elapses).
                    if self._reader_stop.is_set():
                        return
                    continue
                if not registered:
                    if not isinstance(message, HelloMsg):
                        return  # protocol violation: first frame is Hello
                    registered = True
                    self._post(("hello", token, (conn, message)))
                    continue
                self._post(("net-msg", token, message))
        finally:
            self._post(("net-closed", token, None))
            conn.close()

    def _register_net_worker(
        self, token: int, conn: FramedSocket, hello: HelloMsg
    ) -> None:
        """Admit one socket worker (scheduler-loop side of the handshake).

        Every *connection* gets a fresh ``worker_id`` -- a reconnecting
        worker is a new lease-table identity, so stale leases of its
        previous life expire normally and can never be confused with
        new grants.
        """
        worker_id = f"n{next(self._net_seq)}"
        worker = _Worker(
            worker_id=worker_id,
            kind="net",
            conn=conn,
            name=hello.name,
            started_at=self._clock(),
        )
        with self._conn_lock:
            self._workers[worker_id] = worker
        self._conn_workers[token] = worker_id
        try:
            conn.send(
                RegisteredMsg(
                    worker_id=worker_id,
                    heartbeat_interval_s=self.config.heartbeat_interval_s,
                )
            )
        except OSError:
            self._worker_lost(worker_id, "connection-lost")
            return
        METRICS.inc("service.transport.connects", role="scheduler")
        log.info(
            "service.worker_connected",
            message=f"[{hello.name} connected from {conn.peername()}"
            f" as {worker_id}"
            + (f" (reconnect #{hello.reconnects})" if hello.reconnects else "")
            + "]",
            worker=worker_id,
            name=hello.name,
            reconnects=hello.reconnects,
        )
        if self.manifest is not None:
            self.manifest.workers.append(
                {
                    "worker_id": worker_id,
                    "kind": "net",
                    "name": hello.name,
                    "pid": hello.pid,
                    "peer": conn.peername(),
                    "reconnects": hello.reconnects,
                }
            )

    # ------------------------------------------------------------------
    # Reader thread: worker result pipes -> asyncio inbox
    # ------------------------------------------------------------------
    def _read_results(self) -> None:
        while not self._reader_stop.is_set():
            with self._conn_lock:
                conns = {
                    w.result_conn: w.worker_id
                    for w in self._workers.values()
                    if w.kind == "local"
                    and w.state != "dead"
                    and not w.result_conn.closed
                }
            if not conns:
                time.sleep(0.02)
                continue
            try:
                ready = mp_connection.wait(list(conns), timeout=0.1)
            except OSError:
                continue  # a conn closed under us; rebuild the list
            for conn in ready:
                worker_id = conns[conn]
                try:
                    message = conn.recv()
                except Exception:
                    # EOF (worker died), OSError, or an unpickling error
                    # from a torn write: either way that channel is done.
                    self._post(("closed", worker_id, None))
                    with self._conn_lock:
                        try:
                            conn.close()
                        except OSError:
                            pass
                    continue
                self._post(("msg", worker_id, message))

    def _post(self, item) -> None:
        loop, inbox = self._loop, self._inbox
        if loop is None or inbox is None:
            return
        try:
            loop.call_soon_threadsafe(inbox.put_nowait, item)
        except RuntimeError:
            pass  # loop already closed (shutdown race)

    # ------------------------------------------------------------------
    # Introspection (tests, smoke scripts)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Point-in-time counters describing the service's state."""
        states = [c.status for c in self._cells.values()]
        return {
            "cells": len(states),
            "committed": states.count("committed"),
            "pending": states.count("pending"),
            "leased": states.count("leased"),
            "workers_alive": sum(
                1 for w in self._workers.values() if w.state != "dead"
            ),
            "net_workers_alive": sum(
                1
                for w in self._workers.values()
                if w.kind == "net" and w.state != "dead"
            ),
            "slow_workers": sum(1 for w in self._workers.values() if w.slow),
            "fallback_engaged": self._fallback_done,
            "worker_restarts": self._restarts,
            "lease_history": len(self._leases.history),
            "submissions": len(self._handles),
        }

    # ------------------------------------------------------------------
    # Live observability endpoint (/status and /healthz payloads)
    # ------------------------------------------------------------------
    def _publish_status(self) -> None:
        """Swap in a fresh /status snapshot (scheduler loop only).

        Builds a brand-new dict and replaces the published reference in
        one assignment; the endpoint's handler threads read whichever
        snapshot was current when their request arrived.  No-op without
        a configured endpoint, so the loop stays endpoint-free by
        default.
        """
        if self._endpoint is None:
            return
        now = self._clock()
        workers = []
        for worker in self._workers.values():
            beat_age = (
                round(now - worker.last_beat_received, 4)
                if worker.last_beat_received
                else None
            )
            workers.append(
                {
                    "worker": worker.worker_id,
                    "name": worker.name,
                    "kind": worker.kind,
                    "state": worker.state,
                    "current_lease": worker.current_lease,
                    "heartbeat_lag_s": round(worker.lag_s, 4),
                    "heartbeat_age_s": beat_age,
                    "slow": worker.slow,
                }
            )
        payload = dict(self.stats())
        payload.update(
            {
                "workers": workers,
                "leases_in_flight": len(self._leases),
                "queue_depth": len(self._pending),
                "cache": self._cache_stats(),
                "draining": self._draining,
                "degraded": self._fallback_done,
                "listen_address": self.listen_address,
                "ts": time.time(),
            }
        )
        self._status_snapshot = payload

    @staticmethod
    def _cache_stats() -> dict:
        """Stats-cache hit/miss counters from the live metrics registry."""
        counters = METRICS.snapshot().get("counters", {})
        hits = int(
            counters.get(series_key("cache.requests", {"result": "hit"}), 0)
        ) + int(
            counters.get(series_key("cache.requests", {"result": "disk_hit"}), 0)
        )
        misses = int(
            counters.get(series_key("cache.requests", {"result": "miss"}), 0)
        )
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else None,
        }

    def _health_payload(self) -> dict:
        """The /healthz body; ``status != "ok"`` renders as HTTP 503."""
        snapshot = self._status_snapshot
        degraded = bool(snapshot.get("degraded"))
        return {
            "status": "degraded" if degraded else "ok",
            "workers_alive": snapshot.get("workers_alive", 0),
            "leases_in_flight": snapshot.get("leases_in_flight", 0),
            "draining": bool(snapshot.get("draining")),
        }


# ---------------------------------------------------------------------------
# Synchronous convenience driver
# ---------------------------------------------------------------------------
def run_service(
    campaigns,
    *,
    config: Optional[ServiceConfig] = None,
    journal: Optional[Union[str, Path, CheckpointJournal]] = None,
    chaos: Optional[ChaosSpec] = None,
    manifest: Optional[RunManifest] = None,
    resume: bool = True,
    tenants: Optional[List[str]] = None,
) -> List[List[dict]]:
    """Run a batch of campaigns through one service; returns their records.

    Submissions are made concurrently (so overlapping grids dedupe), the
    service drains gracefully afterwards, and the result list is ordered
    like ``campaigns``.  This is the synchronous entry point the CLI and
    smoke scripts use.
    """
    campaigns = list(campaigns)
    names = tenants or [f"tenant{i}" for i in range(len(campaigns))]
    if len(names) != len(campaigns):
        raise ValueError("tenants must match campaigns 1:1")

    async def _main() -> List[List[dict]]:
        async with CampaignService(
            config, journal=journal, chaos=chaos, manifest=manifest, resume=resume
        ) as service:
            handles = [
                await service.submit(campaign, tenant=name)
                for campaign, name in zip(campaigns, names)
            ]
            return [await handle.result() for handle in handles]

    return asyncio.run(_main())


__all__ = [
    "CampaignService",
    "ServiceConfig",
    "SubmissionHandle",
    "run_service",
]
