"""Fault-tolerant campaign service: leased scheduling over worker processes.

:class:`CampaignService` promotes the campaign engine from "one process
pool on one box" to a long-lived scheduler that serves many concurrent
submissions:

* **submissions** (:meth:`CampaignService.submit`) decompose a
  :class:`Campaign` into content-keyed cell states; overlapping tenant
  grids *dedupe* -- a cell digest runs once, its record fans out to
  every waiting submission;
* **admission control** bounds the pending-cell queue; a submission
  that would overflow it fails fast with
  :class:`~repro.errors.ServiceSaturated`, never unbounded memory;
* **leases**: every dispatched cell carries a lease with a heartbeat
  deadline (:mod:`repro.service.lease`).  A worker that crashes, hangs,
  or is SIGKILLed misses its heartbeats; the lease expires and the cell
  is re-dispatched with deterministic backoff from the existing
  :class:`~repro.resilience.executor.RetryPolicy` -- under the
  *infrastructure* retry budget, separate from simulation retries;
* **exactly-once commitment**: completions are idempotent.  The first
  delivery of a cell's record is committed to the
  :class:`~repro.resilience.journal.CheckpointJournal` (stamped with
  lease/attempt/epoch metadata); duplicated or stale-lease deliveries
  are dropped, safe because every attempt of a cell computes the same
  deterministic record;
* **recovery**: dead workers are detected twice over (closed result
  channel -> immediate; silent hang -> lease expiry) and respawned up
  to a restart budget, and a scheduler restarted on the same journal
  resumes without recomputing committed cells.

The scheduler itself is a single asyncio task -- all state mutation
happens on the event loop, so there are no locks around the lease table
or cell map.  A reader thread multiplexes every worker's result pipe
into the loop's inbox via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.errors import (
    ServiceSaturated,
    ServiceStopped,
    WorkerLostError,
    error_record,
)
from repro.obs.manifest import RunManifest
from repro.obs.runtime import METRICS, TRACER, export_config, get_logger
from repro.parallel.cache import STATS_CACHE_ENV
from repro.parallel.executor import CellTask
from repro.resilience.executor import RetryPolicy
from repro.resilience.journal import CheckpointJournal
from repro.service.chaos import ChaosSpec, CompletionGate
from repro.service.lease import Lease, LeaseTable
from repro.service.protocol import (
    CellAssignment,
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    ShutdownMsg,
    cell_digest,
    payload_digest,
)
from repro.service.worker import service_worker_main

log = get_logger("service")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`CampaignService`.

    Attributes:
        workers: Worker-process pool size.
        lease_timeout_s: Heartbeat deadline; a lease silent this long is
            expired and its cell re-dispatched.
        heartbeat_interval_s: How often workers renew their lease (keep
            well under ``lease_timeout_s``).
        tick_s: Scheduler housekeeping cadence (expiry scan, dispatch).
        max_pending_cells: Admission-control ceiling on not-yet-committed
            cells across all submissions.
        max_worker_restarts: Total replacement workers the service may
            spawn before declaring itself starved.
        retry: Backoff/budget policy for *infrastructure* re-dispatches
            (``max_infra_attempts`` bounds dispatches per cell;
            ``delay_s`` spaces them deterministically).
        mp_context: Multiprocessing start method ('fork', 'spawn', ...);
            None uses the platform default.
        stats_cache_dir: Shared content-keyed stats-cache directory for
            workers; defaults to ``REPRO_STATS_CACHE`` when set.
    """

    workers: int = 2
    lease_timeout_s: float = 5.0
    heartbeat_interval_s: float = 0.5
    tick_s: float = 0.05
    max_pending_cells: int = 4096
    max_worker_restarts: int = 16
    retry: RetryPolicy = RetryPolicy(backoff_base_s=0.02)
    mp_context: Optional[str] = None
    stats_cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.lease_timeout_s <= 0 or self.heartbeat_interval_s <= 0:
            raise ValueError("lease timeout and heartbeat interval must be positive")
        if self.max_pending_cells < 1:
            raise ValueError("max_pending_cells must be >= 1")


@dataclass
class _CellState:
    """Scheduler-side state of one content-keyed cell."""

    digest: str
    key: str
    task: CellTask
    payload: dict
    payload_key: str
    status: str = "pending"  # "pending" | "leased" | "committed"
    record: Optional[dict] = None
    attempts: int = 0  #: Dispatches so far (infrastructure budget).
    epoch: int = 0  #: Requeue generation (bumped on every expiry).
    not_before: float = 0.0  #: Earliest re-dispatch time (backoff).
    lease: Optional[Lease] = None
    waiters: List["SubmissionHandle"] = field(default_factory=list)


@dataclass
class _Worker:
    """Parent-side handle on one worker process."""

    worker_id: str
    process: multiprocessing.Process
    task_conn: mp_connection.Connection
    result_conn: mp_connection.Connection
    state: str = "idle"  # "idle" | "busy" | "suspect" | "dead"
    current_lease: Optional[str] = None
    started_at: float = 0.0


class SubmissionHandle:
    """One tenant's submitted campaign; await :meth:`result` for records."""

    def __init__(self, submission_id: str, tenant: str, digests: List[str]) -> None:
        self.submission_id = submission_id
        self.tenant = tenant
        #: Cell digests in the campaign's deterministic cell order.
        self.digests = digests
        self.remaining = set(digests)
        self._event = asyncio.Event()
        self._records: Optional[List[dict]] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    async def result(self) -> List[dict]:
        """The campaign's tidy records, one per cell, in cell order.

        Raises :class:`~repro.errors.ServiceStopped` if the service was
        hard-stopped before this submission finished.
        """
        await self._event.wait()
        if self._error is not None:
            raise self._error
        assert self._records is not None
        return self._records


class CampaignService:
    """Asyncio campaign scheduler over a pool of leased worker processes.

    Args:
        config: Scheduling/lease/backpressure knobs.
        journal: Path (or instance) of the durable commit log.  An
            existing journal is *resumed* by default -- its committed
            cells are served from the log without recompute; pass
            ``resume=False`` to start it over.
        chaos: Optional seeded failure-injection schedule (tests/CI).
        manifest: Optional run manifest; every spawned worker's identity
            is recorded in its ``workers`` list.

    Use as an async context manager::

        async with CampaignService(config, journal=path) as service:
            handle = await service.submit(campaign, tenant="alice")
            records = await handle.result()

    or drive synchronously via :func:`run_service`.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        journal: Optional[Union[str, Path, CheckpointJournal]] = None,
        chaos: Optional[ChaosSpec] = None,
        manifest: Optional[RunManifest] = None,
        resume: bool = True,
    ) -> None:
        self.config = config or ServiceConfig()
        if journal is None or isinstance(journal, CheckpointJournal):
            self.journal = journal
        else:
            self.journal = CheckpointJournal(journal)
        if self.journal is not None and not resume:
            self.journal.reset()
        self.chaos = chaos
        self.manifest = manifest
        self._clock = time.monotonic
        self._leases = LeaseTable(self.config.lease_timeout_s, clock=self._clock)
        self._gate = CompletionGate(chaos) if chaos else None
        self._cells: Dict[str, _CellState] = {}
        self._pending: Deque[str] = deque()
        self._workers: Dict[str, _Worker] = {}
        self._handles: List[SubmissionHandle] = []
        self._worker_seq = itertools.count()
        self._submission_seq = itertools.count()
        self._restarts = 0
        self._started = False
        self._draining = False
        self._stop_loop = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inbox: Optional[asyncio.Queue] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._reader_stop = threading.Event()
        self._reader: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._committed_log: Dict[str, dict] = {}
        if self.journal is not None:
            self._committed_log = dict(self.journal.completed())
        self._mp = (
            multiprocessing.get_context(self.config.mp_context)
            if self.config.mp_context
            else multiprocessing.get_context()
        )
        self._stats_cache_dir = self.config.stats_cache_dir or os.environ.get(
            STATS_CACHE_ENV
        ) or None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CampaignService":
        """Spawn workers, start the reader thread and scheduler loop."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._inbox = asyncio.Queue()
        for _ in range(self.config.workers):
            self._spawn_worker()
        self._reader = threading.Thread(target=self._read_results, daemon=True)
        self._reader.start()
        self._loop_task = asyncio.create_task(self._run())
        log.info(
            "service.started",
            message=f"[service up: {self.config.workers} workers,"
            f" lease timeout {self.config.lease_timeout_s}s]",
            workers=self.config.workers,
        )
        return self

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.drain()
        else:
            await self.stop()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, then stop.

        Stops admitting new submissions, waits for every accepted
        submission to resolve (all its cells committed to the journal --
        the in-flight checkpoint), then shuts workers down cleanly.  A
        scheduler restarted on the same journal afterwards serves the
        committed cells byte-identically without recompute.
        """
        self._draining = True
        for handle in list(self._handles):
            await handle._event.wait()
        await self._shutdown(graceful=True)

    async def stop(self) -> None:
        """Hard shutdown: terminate workers now; fail unresolved handles."""
        self._draining = True
        await self._shutdown(graceful=False)
        for handle in self._handles:
            if not handle.done:
                handle._error = ServiceStopped(
                    "service stopped before submission completed",
                    submission=handle.submission_id,
                    remaining_cells=len(handle.remaining),
                )
                handle._event.set()

    async def _shutdown(self, *, graceful: bool) -> None:
        self._stop_loop = True
        if self._loop_task is not None:
            try:
                await self._loop_task
            except Exception:
                pass  # already surfaced through the handles' errors
            self._loop_task = None
        self._reader_stop.set()
        if self._reader is not None:
            self._reader.join(timeout=2.0)
            self._reader = None
        for worker in self._workers.values():
            if worker.state == "dead":
                continue
            if graceful:
                try:
                    worker.task_conn.send(ShutdownMsg())
                except (OSError, ValueError):
                    pass
        for worker in self._workers.values():
            if worker.state == "dead":
                continue
            worker.process.join(timeout=2.0 if graceful else 0.2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            self._close_worker(worker)
        if METRICS.enabled:
            METRICS.set_gauge("service.workers", 0)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, campaign, tenant: str = "default") -> SubmissionHandle:
        """Admit one campaign; returns a handle to await its records.

        Cells already committed (by an earlier submission, an earlier
        *run* via the resumed journal, or an overlapping tenant) are
        served from the commit log; only genuinely new cell digests
        enter the dispatch queue.

        Raises:
            ServiceSaturated: Admitting this campaign's new cells would
                exceed ``max_pending_cells`` (or the service is
                draining).
        """
        if not self._started:
            raise RuntimeError("service not started; use 'async with' or start()")
        if self._draining:
            raise ServiceSaturated("service is draining; not accepting submissions")
        payload = campaign.parallel_payload()
        payload_key = payload_digest(payload)
        with TRACER.span("service.submit", cells=campaign.size(), tenant=tenant):
            plan = []  # (digest, key, coords) in deterministic cell order
            new_digests = set()
            for workload, spec, scheme, t_rh in campaign.cells():
                key = campaign.cell_key(workload, spec, scheme, t_rh)
                digest = cell_digest(payload, key)
                plan.append((digest, key, (workload, spec, scheme, t_rh)))
                if digest not in self._cells and digest not in self._committed_log:
                    new_digests.add(digest)
            backlog = sum(
                1 for c in self._cells.values() if c.status != "committed"
            )
            if backlog + len(new_digests) > self.config.max_pending_cells:
                METRICS.inc("service.submissions", result="saturated")
                raise ServiceSaturated(
                    "admission queue is full",
                    pending_cells=backlog,
                    new_cells=len(new_digests),
                    limit=self.config.max_pending_cells,
                    tenant=tenant,
                )
            handle = SubmissionHandle(
                f"s{next(self._submission_seq)}", tenant, [d for d, _, _ in plan]
            )
            for digest, key, (workload, spec, scheme, t_rh) in plan:
                cell = self._cells.get(digest)
                if cell is None:
                    cell = _CellState(
                        digest=digest,
                        key=key,
                        task=CellTask(0, key, workload, spec, scheme, t_rh),
                        payload=payload,
                        payload_key=payload_key,
                    )
                    self._cells[digest] = cell
                    if digest in self._committed_log:
                        cell.status = "committed"
                        cell.record = self._committed_log[digest]
                        METRICS.inc("service.cells", result="resumed")
                    else:
                        self._pending.append(digest)
                        METRICS.inc("service.cells", result="new")
                else:
                    METRICS.inc("service.cells", result="deduped")
                if cell.status == "committed":
                    handle.remaining.discard(digest)
                else:
                    cell.waiters.append(handle)
            self._handles.append(handle)
            METRICS.inc("service.submissions", result="accepted")
            if not handle.remaining:
                self._finish_handle(handle)
            self._dispatch()
        log.info(
            "service.submitted",
            message=f"[{tenant}/{handle.submission_id}: {len(plan)} cells,"
            f" {len(new_digests)} new]",
            tenant=tenant,
            cells=len(plan),
            new=len(new_digests),
        )
        return handle

    # ------------------------------------------------------------------
    # Scheduler loop (single asyncio task; owns all mutable state)
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._inbox is not None
        try:
            while not self._stop_loop:
                try:
                    item = await asyncio.wait_for(
                        self._inbox.get(), timeout=self.config.tick_s
                    )
                except asyncio.TimeoutError:
                    item = None
                while True:
                    if item is not None:
                        self._handle_item(item)
                    if self._inbox.empty():
                        break
                    item = self._inbox.get_nowait()
                self._expire_leases()
                self._reap_workers()
                if self._gate is not None:
                    for held in self._gate.flush_due():
                        self._on_completion(*held)
                self._check_starvation()
                self._dispatch()
        except Exception as error:
            # A scheduler bug (or a failed journal write) must not leave
            # submitters awaiting handles forever: fail them loudly.
            log.error(
                "service.loop_failed",
                message=f"[scheduler loop died: {error}]",
                error=str(error),
            )
            for handle in self._handles:
                if not handle.done:
                    handle._error = ServiceStopped(
                        "scheduler loop failed", cause=str(error)
                    )
                    handle._event.set()
            raise

    def _handle_item(self, item) -> None:
        kind, worker_id, message = item
        if kind == "closed":
            self._worker_lost(worker_id, "channel-closed")
            return
        if isinstance(message, HeartbeatMsg):
            if self._leases.renew(message.lease_id):
                METRICS.inc("service.heartbeats")
            return
        if isinstance(message, CompletionMsg):
            if self._gate is not None:
                for delivered in self._gate.intercept((worker_id, message)):
                    self._on_completion(*delivered)
            else:
                self._on_completion(worker_id, message)
            return
        if isinstance(message, GoodbyeMsg):
            worker = self._workers.get(worker_id)
            if worker is not None and worker.state != "dead":
                worker.state = "dead"
            return

    # -- completions ----------------------------------------------------
    def _on_completion(self, worker_id: str, message: CompletionMsg) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None and worker.current_lease == message.lease_id:
            worker.current_lease = None
            if worker.state in ("busy", "suspect"):
                worker.state = "idle"
        self._leases.release(message.lease_id)
        cell = self._cells.get(message.digest)
        if cell is None or cell.status == "committed":
            # Duplicate delivery or stale attempt of an already-committed
            # cell: drop.  Deterministic cells make this always safe.
            METRICS.inc("service.completions", result="duplicate")
            return
        self._commit(
            cell,
            message.record,
            worker_id=worker_id,
            duration_s=message.duration_s,
            attempt=message.attempt,
            epoch=message.epoch,
            lease_id=message.lease_id,
            telemetry=message.telemetry,
        )

    def _commit(
        self,
        cell: _CellState,
        record: dict,
        *,
        worker_id: Optional[str],
        attempt: int,
        epoch: int,
        lease_id: Optional[str],
        duration_s: float = 0.0,
        telemetry: Optional[dict] = None,
    ) -> None:
        """Exactly-once commitment point for one cell."""
        if telemetry:
            METRICS.merge(telemetry)
        cell.status = "committed"
        cell.record = record
        cell.lease = None
        self._committed_log[cell.digest] = record
        if self.journal is not None:
            self.journal.append(
                cell.digest,
                record,
                duration_s=duration_s or None,
                worker_id=worker_id,
                attempt=attempt,
                epoch=epoch,
                lease_id=lease_id,
            )
        METRICS.inc("service.completions", result="committed")
        waiters, cell.waiters = cell.waiters, []
        for handle in waiters:
            handle.remaining.discard(cell.digest)
            if not handle.remaining and not handle.done:
                self._finish_handle(handle)

    def _finish_handle(self, handle: SubmissionHandle) -> None:
        handle._records = [self._cells[d].record for d in handle.digests]
        handle._event.set()

    # -- failure detection & recovery -----------------------------------
    def _expire_leases(self) -> None:
        for lease in self._leases.expire_due():
            METRICS.inc("service.lease_expiries")
            log.warning(
                "service.lease_expired",
                message=f"[lease {lease.lease_id} ({lease.key}) on"
                f" {lease.worker_id} missed its heartbeat deadline]",
                worker=lease.worker_id,
                key=lease.key,
            )
            worker = self._workers.get(lease.worker_id)
            if (
                worker is not None
                and worker.current_lease == lease.lease_id
                and worker.state == "busy"
            ):
                # Could be a hang rather than a death: stop dispatching
                # to it, but let it rejoin if it ever reports back.
                worker.state = "suspect"
            cell = self._cells.get(lease.digest)
            if cell is not None and cell.status == "leased" and cell.lease is lease:
                self._requeue(cell, "lease-expired")

    def _requeue(self, cell: _CellState, reason: str) -> None:
        cell.lease = None
        cell.epoch += 1
        METRICS.inc("service.requeues", reason=reason)
        if cell.attempts >= self.config.retry.max_infra_attempts:
            error = WorkerLostError(
                "cell exhausted its infrastructure retry budget",
                key=cell.key,
                dispatches=cell.attempts,
                reason=reason,
            )
            self._commit(
                cell,
                self._error_record(cell, error),
                worker_id=None,
                attempt=cell.attempts,
                epoch=cell.epoch,
                lease_id=None,
            )
            return
        cell.status = "pending"
        # Existing RetryPolicy machinery: deterministic, per-cell backoff
        # spaces the re-dispatch (the '#infra' namespace matches the
        # executor's separate infrastructure budget).
        cell.not_before = self._clock() + self.config.retry.delay_s(
            f"{cell.key}#infra", cell.attempts
        )
        self._pending.append(cell.digest)

    def _error_record(self, cell: _CellState, error: BaseException) -> dict:
        task = cell.task
        record = {
            "workload": task.workload,
            "mapping": task.spec.label,
            "scheme": task.scheme,
            "t_rh": task.t_rh,
            "status": "error",
            "attempts": cell.attempts,
        }
        record.update(error_record(error))
        return record

    def _reap_workers(self) -> None:
        for worker in list(self._workers.values()):
            if worker.state != "dead" and not worker.process.is_alive():
                self._worker_lost(worker.worker_id, "worker-dead")

    def _worker_lost(self, worker_id: str, reason: str) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.state == "dead":
            return
        log.warning(
            "service.worker_lost",
            message=f"[worker {worker_id} lost ({reason});"
            " expiring its lease and respawning]",
            worker=worker_id,
            reason=reason,
        )
        worker.state = "dead"
        worker.current_lease = None
        self._close_worker(worker)
        for lease in self._leases.for_worker(worker_id):
            self._leases.expire(lease.lease_id)
            METRICS.inc("service.lease_expiries")
            cell = self._cells.get(lease.digest)
            if cell is not None and cell.status == "leased":
                self._requeue(cell, reason)
        if not self._stop_loop and self._restarts < self.config.max_worker_restarts:
            self._restarts += 1
            METRICS.inc("service.worker_restarts")
            self._spawn_worker(replaces=worker_id)

    def _check_starvation(self) -> None:
        """Fail outstanding cells when no worker can ever run them."""
        if any(w.state != "dead" for w in self._workers.values()):
            return
        if self._restarts < self.config.max_worker_restarts:
            return
        for cell in self._cells.values():
            if cell.status == "committed":
                continue
            error = WorkerLostError(
                "no workers left and the restart budget is exhausted",
                key=cell.key,
                restarts=self._restarts,
            )
            self._commit(
                cell,
                self._error_record(cell, error),
                worker_id=None,
                attempt=cell.attempts,
                epoch=cell.epoch,
                lease_id=None,
            )

    # -- dispatch -------------------------------------------------------
    def _dispatch(self) -> None:
        now = self._clock()
        idle = sorted(
            (w for w in self._workers.values() if w.state == "idle"),
            key=lambda w: w.worker_id,
        )
        if idle:
            deferred: List[str] = []
            while self._pending and idle:
                digest = self._pending.popleft()
                cell = self._cells.get(digest)
                if cell is None or cell.status != "pending":
                    continue
                if cell.not_before > now:
                    deferred.append(digest)
                    continue
                worker = idle.pop(0)
                self._dispatch_to(worker, cell)
            self._pending.extend(deferred)
        if METRICS.enabled:
            METRICS.set_gauge("service.queue_depth", len(self._pending))
            METRICS.set_gauge(
                "service.workers",
                sum(1 for w in self._workers.values() if w.state != "dead"),
            )

    def _dispatch_to(self, worker: _Worker, cell: _CellState) -> None:
        cell.attempts += 1
        lease = self._leases.grant(
            cell.digest, cell.key, worker.worker_id, cell.attempts, cell.epoch
        )
        cell.lease = lease
        cell.status = "leased"
        worker.state = "busy"
        worker.current_lease = lease.lease_id
        assignment = CellAssignment(
            task=cell.task,
            payload=cell.payload,
            payload_key=cell.payload_key,
            digest=cell.digest,
            lease_id=lease.lease_id,
            attempt=cell.attempts,
            epoch=cell.epoch,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
        )
        try:
            worker.task_conn.send(assignment)
        except (OSError, ValueError):
            self._leases.expire(lease.lease_id)
            self._requeue(cell, "channel-closed")
            self._worker_lost(worker.worker_id, "channel-closed")
            return
        METRICS.inc("service.dispatches")

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------
    def _spawn_worker(self, replaces: Optional[str] = None) -> _Worker:
        worker_id = f"w{next(self._worker_seq)}"
        task_r, task_w = self._mp.Pipe(duplex=False)
        result_r, result_w = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=service_worker_main,
            args=(
                worker_id,
                task_r,
                result_w,
                self._stats_cache_dir,
                export_config(),
                self.chaos,
                self.config.heartbeat_interval_s,
            ),
            daemon=True,
            name=f"repro-service-{worker_id}",
        )
        process.start()
        # Close the child's pipe ends in the parent *immediately*: later
        # forks must not inherit them, or a dead worker's channel would
        # never report EOF (and broken-pipe detection on dispatch would
        # not fire).
        task_r.close()
        result_w.close()
        worker = _Worker(
            worker_id=worker_id,
            process=process,
            task_conn=task_w,
            result_conn=result_r,
            started_at=self._clock(),
        )
        with self._conn_lock:
            self._workers[worker_id] = worker
        if self.manifest is not None:
            self.manifest.workers.append(
                {
                    "worker_id": worker_id,
                    "pid": process.pid,
                    "replaces": replaces,
                    "stats_cache_dir": self._stats_cache_dir,
                }
            )
        return worker

    def _close_worker(self, worker: _Worker) -> None:
        with self._conn_lock:
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Reader thread: worker result pipes -> asyncio inbox
    # ------------------------------------------------------------------
    def _read_results(self) -> None:
        while not self._reader_stop.is_set():
            with self._conn_lock:
                conns = {
                    w.result_conn: w.worker_id
                    for w in self._workers.values()
                    if w.state != "dead" and not w.result_conn.closed
                }
            if not conns:
                time.sleep(0.02)
                continue
            try:
                ready = mp_connection.wait(list(conns), timeout=0.1)
            except OSError:
                continue  # a conn closed under us; rebuild the list
            for conn in ready:
                worker_id = conns[conn]
                try:
                    message = conn.recv()
                except Exception:
                    # EOF (worker died), OSError, or an unpickling error
                    # from a torn write: either way that channel is done.
                    self._post(("closed", worker_id, None))
                    with self._conn_lock:
                        try:
                            conn.close()
                        except OSError:
                            pass
                    continue
                self._post(("msg", worker_id, message))

    def _post(self, item) -> None:
        loop, inbox = self._loop, self._inbox
        if loop is None or inbox is None:
            return
        try:
            loop.call_soon_threadsafe(inbox.put_nowait, item)
        except RuntimeError:
            pass  # loop already closed (shutdown race)

    # ------------------------------------------------------------------
    # Introspection (tests, smoke scripts)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Point-in-time counters describing the service's state."""
        states = [c.status for c in self._cells.values()]
        return {
            "cells": len(states),
            "committed": states.count("committed"),
            "pending": states.count("pending"),
            "leased": states.count("leased"),
            "workers_alive": sum(
                1 for w in self._workers.values() if w.state != "dead"
            ),
            "worker_restarts": self._restarts,
            "lease_history": len(self._leases.history),
            "submissions": len(self._handles),
        }


# ---------------------------------------------------------------------------
# Synchronous convenience driver
# ---------------------------------------------------------------------------
def run_service(
    campaigns,
    *,
    config: Optional[ServiceConfig] = None,
    journal: Optional[Union[str, Path, CheckpointJournal]] = None,
    chaos: Optional[ChaosSpec] = None,
    manifest: Optional[RunManifest] = None,
    resume: bool = True,
    tenants: Optional[List[str]] = None,
) -> List[List[dict]]:
    """Run a batch of campaigns through one service; returns their records.

    Submissions are made concurrently (so overlapping grids dedupe), the
    service drains gracefully afterwards, and the result list is ordered
    like ``campaigns``.  This is the synchronous entry point the CLI and
    smoke scripts use.
    """
    campaigns = list(campaigns)
    names = tenants or [f"tenant{i}" for i in range(len(campaigns))]
    if len(names) != len(campaigns):
        raise ValueError("tenants must match campaigns 1:1")

    async def _main() -> List[List[dict]]:
        async with CampaignService(
            config, journal=journal, chaos=chaos, manifest=manifest, resume=resume
        ) as service:
            handles = [
                await service.submit(campaign, tenant=name)
                for campaign, name in zip(campaigns, names)
            ]
            return [await handle.result() for handle in handles]

    return asyncio.run(_main())


__all__ = [
    "CampaignService",
    "ServiceConfig",
    "SubmissionHandle",
    "run_service",
]
