"""Lease bookkeeping for dispatched cells.

A lease is the scheduler's claim ticket for one dispatch of one cell:
it names the worker, the dispatch attempt, the cell's requeue *epoch*,
and a heartbeat deadline.  Workers renew their lease on every heartbeat;
a lease whose deadline passes without renewal is *expired* -- the worker
is presumed crashed or hung and the cell is re-dispatched under a new
lease (higher attempt, higher epoch).  The old lease's completion may
still arrive later (a hung worker that woke up); the scheduler commits
whichever completion lands first and drops the rest, which is safe
because cells are deterministic -- every attempt computes the same
record.

All time is an injected monotonic clock, so the unit tests drive expiry
deterministically without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Lease:
    """One dispatch of one cell to one worker."""

    lease_id: str
    digest: str  #: Content digest of the leased cell.
    key: str  #: Human-readable cell key (logs and journal metadata).
    worker_id: str
    attempt: int  #: 1-based dispatch count for the cell.
    epoch: int  #: The cell's requeue generation at dispatch time.
    granted_at: float
    deadline: float
    renewals: int = 0
    state: str = "active"  # "active" | "expired" | "released"

    @property
    def active(self) -> bool:
        return self.state == "active"


def lease_id_for(digest: str, attempt: int, epoch: int) -> str:
    """Deterministic lease identifier (stable across identical runs)."""
    return f"{digest[:12]}#a{attempt}e{epoch}"


class LeaseTable:
    """All active leases, with deadline accounting.

    Args:
        timeout_s: Heartbeat deadline; a lease not renewed within this
            window expires.
        clock: Injectable monotonic clock (tests use a fake).
    """

    def __init__(
        self,
        timeout_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self._clock = clock
        self._active: Dict[str, Lease] = {}
        #: Terminal leases kept for audit (expired or released).
        self.history: List[Lease] = []

    def __len__(self) -> int:
        return len(self._active)

    def get(self, lease_id: str) -> Optional[Lease]:
        """The active lease with this id, or None."""
        return self._active.get(lease_id)

    def for_worker(self, worker_id: str) -> List[Lease]:
        """Active leases held by one worker (normally zero or one)."""
        return [l for l in self._active.values() if l.worker_id == worker_id]

    # ------------------------------------------------------------------
    def grant(self, digest: str, key: str, worker_id: str, attempt: int, epoch: int) -> Lease:
        """Issue a lease for one dispatch; deadline = now + timeout."""
        now = self._clock()
        lease = Lease(
            lease_id=lease_id_for(digest, attempt, epoch),
            digest=digest,
            key=key,
            worker_id=worker_id,
            attempt=attempt,
            epoch=epoch,
            granted_at=now,
            deadline=now + self.timeout_s,
        )
        self._active[lease.lease_id] = lease
        return lease

    def renew(self, lease_id: str) -> bool:
        """Extend a lease's deadline (heartbeat); False if not active.

        A heartbeat for an already-expired or unknown lease is *stale*:
        renewing it would resurrect a claim the scheduler has already
        re-dispatched, so it is refused.
        """
        lease = self._active.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self._clock() + self.timeout_s
        lease.renewals += 1
        return True

    def release(self, lease_id: str) -> Optional[Lease]:
        """Retire a lease normally (its completion was committed)."""
        lease = self._active.pop(lease_id, None)
        if lease is not None:
            lease.state = "released"
            self.history.append(lease)
        return lease

    def expire(self, lease_id: str) -> Optional[Lease]:
        """Force-expire one lease (e.g. its worker's channel closed)."""
        lease = self._active.pop(lease_id, None)
        if lease is not None:
            lease.state = "expired"
            self.history.append(lease)
        return lease

    def expire_due(self) -> List[Lease]:
        """Pop and return every lease whose deadline has passed."""
        now = self._clock()
        due = [l for l in self._active.values() if l.deadline < now]
        for lease in due:
            self._active.pop(lease.lease_id, None)
            lease.state = "expired"
            self.history.append(lease)
        return due


__all__ = ["Lease", "LeaseTable", "lease_id_for"]
