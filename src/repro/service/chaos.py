"""Deterministic chaos harness for the campaign service.

The service's correctness claim -- final results identical to a serial
run, every cell committed exactly once, resume without recompute -- is
only credible if it holds *under failure*.  This module injects the
failures, reproducibly:

* **worker kills** -- a worker ``os._exit``\\ s mid-assignment, before
  or after sending its completion (crash vs. crash-after-send);
* **hangs with heartbeat stalls** -- a worker computes its cell but
  stops heartbeating and sits on the completion longer than the lease
  timeout, so the scheduler expires the lease and re-dispatches while
  the original eventually delivers a *late* (stale-lease) completion;
* **duplicated completions** -- the same completion message is sent
  twice, exercising idempotent commitment;
* **reordered completions** -- the scheduler-side :class:`CompletionGate`
  holds every k-th completion back one message, exercising
  out-of-order delivery;
* **journal truncation** -- :func:`truncate_journal_tail` tears the
  final JSONL record of a checkpoint journal, simulating a crash
  mid-write on a filesystem without atomic rename.

Every decision is a pure function of ``(seed, cell key, attempt)`` via
the same :func:`~repro.utils.prng.derive_key` construction the retry
backoff uses, so a chaos schedule is exactly reproducible and tests can
*precompute* it (e.g. assert the seed they chose kills at least two
workers).  Chaos only ever fires on a cell's **first** attempt:
re-dispatched attempts run clean, which guarantees every chaos schedule
converges.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.obs.runtime import METRICS
from repro.utils.prng import derive_key

#: Exit status of a chaos-killed worker (mirrors SIGKILL's 128+9).
KILLED_EXIT_CODE = 137


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded failure-injection schedule for one service run.

    All ``*_frac`` fields are probabilities in [0, 1] evaluated per
    (cell, attempt=1) with deterministic draws; they partition one unit
    interval in priority order kill-before > kill-after > hang, so at
    most one *process* fault fires per cell.  ``duplicate_frac`` draws
    independently (a completion can be both late and duplicated).

    Attributes:
        seed: Master seed every decision derives from.
        kill_before_frac: P(worker exits before sending the completion).
        kill_after_frac: P(worker exits right after sending it).
        hang_frac: P(worker stalls heartbeats and delays the completion).
        hang_s: How long a hanging worker sits on its completion; must
            exceed the service's lease timeout to actually trigger
            expiry.
        duplicate_frac: P(the completion message is sent twice).
        reorder_every: Scheduler-side -- hold every k-th completion back
            one delivery (0 disables).
        max_hold_s: Longest the completion gate may hold a message (so
            a held *final* completion still drains).
    """

    seed: int = 2024
    kill_before_frac: float = 0.0
    kill_after_frac: float = 0.0
    hang_frac: float = 0.0
    hang_s: float = 0.0
    duplicate_frac: float = 0.0
    reorder_every: int = 0
    max_hold_s: float = 0.5

    def __post_init__(self) -> None:
        total = self.kill_before_frac + self.kill_after_frac + self.hang_frac
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"kill/hang fractions must sum to <= 1, got {total:.3f}"
            )
        for name in ("kill_before_frac", "kill_after_frac", "hang_frac", "duplicate_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_every < 0:
            raise ValueError(f"reorder_every must be >= 0, got {self.reorder_every}")


@dataclass(frozen=True)
class ChaosDecision:
    """What the harness does to one (cell, attempt)."""

    action: str = "none"  # "none" | "kill-before" | "kill-after" | "hang"
    hang_s: float = 0.0
    duplicate: bool = False

    @property
    def benign(self) -> bool:
        return self.action == "none" and not self.duplicate


_NO_CHAOS = ChaosDecision()


def _unit(seed: int, label: str) -> float:
    """Deterministic draw in [0, 1) from (seed, label)."""
    return derive_key(seed, label, 53) / float(1 << 53)


class ChaosEngine:
    """Worker-side decision oracle (pure; shared nothing)."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec

    def decide(self, key: str, attempt: int) -> ChaosDecision:
        """The (deterministic) fault plan for one dispatch of one cell."""
        if attempt != 1:
            return _NO_CHAOS  # retries always run clean -> convergence
        spec = self.spec
        u = _unit(spec.seed, f"{key}#fault")
        if u < spec.kill_before_frac:
            action = "kill-before"
        elif u < spec.kill_before_frac + spec.kill_after_frac:
            action = "kill-after"
        elif u < spec.kill_before_frac + spec.kill_after_frac + spec.hang_frac:
            action = "hang"
        else:
            action = "none"
        duplicate = _unit(spec.seed, f"{key}#dup") < spec.duplicate_frac
        if action == "none" and not duplicate:
            return _NO_CHAOS
        return ChaosDecision(
            action=action,
            hang_s=spec.hang_s if action == "hang" else 0.0,
            duplicate=duplicate,
        )

    def kill_now(self, action: str) -> None:  # pragma: no cover - exits
        """Terminate this worker process immediately (no cleanup)."""
        METRICS.inc("chaos.injections", action=action)
        os._exit(KILLED_EXIT_CODE)


def planned_faults(
    spec: ChaosSpec, keys: Iterable[str]
) -> List[Tuple[str, ChaosDecision]]:
    """Precompute the first-attempt fault schedule for a set of cells.

    Tests use this to assert a chosen seed produces the scenario they
    need (e.g. at least two kills) *before* spending simulation time.
    """
    engine = ChaosEngine(spec)
    plan = []
    for key in keys:
        decision = engine.decide(key, 1)
        if not decision.benign:
            plan.append((key, decision))
    return plan


# ---------------------------------------------------------------------------
# Scheduler-side: delivery-order chaos
# ---------------------------------------------------------------------------
class CompletionGate:
    """Holds every k-th completion back one delivery (reordering).

    The scheduler funnels every received completion through
    :meth:`intercept`; with ``reorder_every == k``, completion number
    ``k, 2k, ...`` is held until the *next* completion arrives (then
    delivered after it), or until :meth:`flush_due` sees it exceed
    ``max_hold_s`` -- whichever comes first, so a held final message
    cannot deadlock the run.
    """

    def __init__(self, spec: ChaosSpec, *, clock=None) -> None:
        import time

        self.spec = spec
        self._clock = clock or time.monotonic
        self._count = 0
        self._held: Optional[object] = None
        self._held_at = 0.0

    def intercept(self, message) -> List[object]:
        """Pass one completion through the gate; returns deliveries."""
        if not self.spec.reorder_every:
            return [message]
        self._count += 1
        out: List[object] = []
        if self._held is not None:
            held, self._held = self._held, None
            out.append(message)
            out.append(held)  # delivered late: reordered past its successor
            METRICS.inc("chaos.injections", action="reorder")
            return out
        if self._count % self.spec.reorder_every == 0:
            self._held = message
            self._held_at = self._clock()
            return []
        return [message]

    def flush_due(self) -> List[object]:
        """Release a held message that has waited past ``max_hold_s``."""
        if self._held is None:
            return []
        if self._clock() - self._held_at < self.spec.max_hold_s:
            return []
        held, self._held = self._held, None
        METRICS.inc("chaos.injections", action="reorder")
        return [held]

    def flush(self) -> List[object]:
        """Unconditionally release anything held (drain path)."""
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]


# ---------------------------------------------------------------------------
# Journal chaos
# ---------------------------------------------------------------------------
def truncate_journal_tail(path: Union[str, Path], *, seed: int = 0) -> int:
    """Tear the final JSONL record of a journal mid-write.

    Cuts a seeded number of bytes (at least one, never the whole line)
    off the file's last non-empty line, simulating a crash on a
    filesystem where the atomic-rename discipline did not hold.  Returns
    the number of bytes removed.  The journal must still *load* after
    this -- skipping exactly the torn record -- which is what the resume
    tests assert.
    """
    path = Path(path)
    data = path.read_bytes().rstrip(b"\n")
    if not data:
        raise ValueError(f"{path} has no records to truncate")
    last_newline = data.rfind(b"\n")
    last_line_len = len(data) - (last_newline + 1)
    if last_line_len < 2:
        raise ValueError(f"{path}: final record too short to tear")
    cut = 1 + derive_key(seed, f"truncate:{path.name}", 32) % (last_line_len - 1)
    path.write_bytes(data[: len(data) - cut])
    METRICS.inc("chaos.injections", action="journal-truncate")
    return cut


__all__ = [
    "KILLED_EXIT_CODE",
    "ChaosDecision",
    "ChaosEngine",
    "ChaosSpec",
    "CompletionGate",
    "planned_faults",
    "truncate_journal_tail",
]
