"""Deterministic chaos harness for the campaign service.

The service's correctness claim -- final results identical to a serial
run, every cell committed exactly once, resume without recompute -- is
only credible if it holds *under failure*.  This module injects the
failures, reproducibly:

* **worker kills** -- a worker ``os._exit``\\ s mid-assignment, before
  or after sending its completion (crash vs. crash-after-send);
* **hangs with heartbeat stalls** -- a worker computes its cell but
  stops heartbeating and sits on the completion longer than the lease
  timeout, so the scheduler expires the lease and re-dispatches while
  the original eventually delivers a *late* (stale-lease) completion;
* **duplicated completions** -- the same completion message is sent
  twice, exercising idempotent commitment;
* **reordered completions** -- the scheduler-side :class:`CompletionGate`
  holds every k-th completion back one message, exercising
  out-of-order delivery;
* **journal truncation** -- :func:`truncate_journal_tail` tears the
  final JSONL record of a checkpoint journal, simulating a crash
  mid-write on a filesystem without atomic rename;
* **wire faults** (socket transport only) -- a completion frame can be
  *dropped* (lost in the network: the worker stays healthy but the
  scheduler must expire the lease), *corrupted* (one payload byte
  flipped: the CRC fails, the frame is discarded, and the peer is
  nacked into resending), *truncated* (a torn write followed by a
  connection close: a half-open socket), *duplicated*, or *delayed*;
  independently the whole connection can be *dropped* right after a
  clean send, forcing the worker through its reconnect/backoff path.

Every decision is a pure function of ``(seed, cell key, attempt)`` via
the same :func:`~repro.utils.prng.derive_key` construction the retry
backoff uses, so a chaos schedule is exactly reproducible and tests can
*precompute* it (e.g. assert the seed they chose kills at least two
workers).  Chaos only ever fires on a cell's **first** attempt:
re-dispatched attempts run clean, which guarantees every chaos schedule
converges.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.obs.runtime import METRICS
from repro.utils.prng import derive_key

#: Exit status of a chaos-killed worker (mirrors SIGKILL's 128+9).
KILLED_EXIT_CODE = 137


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded failure-injection schedule for one service run.

    All ``*_frac`` fields are probabilities in [0, 1] evaluated per
    (cell, attempt=1) with deterministic draws; they partition one unit
    interval in priority order kill-before > kill-after > hang, so at
    most one *process* fault fires per cell.  ``duplicate_frac`` draws
    independently (a completion can be both late and duplicated).

    Attributes:
        seed: Master seed every decision derives from.
        kill_before_frac: P(worker exits before sending the completion).
        kill_after_frac: P(worker exits right after sending it).
        hang_frac: P(worker stalls heartbeats and delays the completion).
        hang_s: How long a hanging worker sits on its completion; must
            exceed the service's lease timeout to actually trigger
            expiry.
        duplicate_frac: P(the completion message is sent twice).
        reorder_every: Scheduler-side -- hold every k-th completion back
            one delivery (0 disables).
        max_hold_s: Longest the completion gate may hold a message (so
            a held *final* completion still drains).
        wire_drop_frac: P(the completion frame vanishes in the network);
            socket transport only.  The fates partition one unit
            interval in priority order drop > corrupt > truncate, so at
            most one frame fate fires per cell.
        wire_corrupt_frac: P(one payload byte of the completion frame is
            flipped -- the receiver's CRC must catch it).
        wire_truncate_frac: P(the completion frame is torn mid-write and
            the connection closed -- a half-open socket).
        wire_conn_drop_frac: P(the connection is dropped right *after* a
            clean completion send); drawn independently of the frame
            fate, exercising worker reconnection without losing data.
        wire_delay_frac: P(the completion send is delayed by
            ``wire_delay_s``); independent draw.
        wire_delay_s: How long a delayed send sleeps.
        wire_duplicate_frac: P(the completion frame is sent twice);
            independent draw (distinct from ``duplicate_frac``, which
            duplicates the in-process message on the Pipe substrate).
    """

    seed: int = 2024
    kill_before_frac: float = 0.0
    kill_after_frac: float = 0.0
    hang_frac: float = 0.0
    hang_s: float = 0.0
    duplicate_frac: float = 0.0
    reorder_every: int = 0
    max_hold_s: float = 0.5
    wire_drop_frac: float = 0.0
    wire_corrupt_frac: float = 0.0
    wire_truncate_frac: float = 0.0
    wire_conn_drop_frac: float = 0.0
    wire_delay_frac: float = 0.0
    wire_delay_s: float = 0.0
    wire_duplicate_frac: float = 0.0

    def __post_init__(self) -> None:
        total = self.kill_before_frac + self.kill_after_frac + self.hang_frac
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"kill/hang fractions must sum to <= 1, got {total:.3f}"
            )
        wire_total = (
            self.wire_drop_frac + self.wire_corrupt_frac + self.wire_truncate_frac
        )
        if wire_total > 1.0 + 1e-9:
            raise ValueError(
                f"wire frame-fate fractions must sum to <= 1, got {wire_total:.3f}"
            )
        for name in (
            "kill_before_frac",
            "kill_after_frac",
            "hang_frac",
            "duplicate_frac",
            "wire_drop_frac",
            "wire_corrupt_frac",
            "wire_truncate_frac",
            "wire_conn_drop_frac",
            "wire_delay_frac",
            "wire_duplicate_frac",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_every < 0:
            raise ValueError(f"reorder_every must be >= 0, got {self.reorder_every}")
        if self.wire_delay_s < 0:
            raise ValueError(f"wire_delay_s must be >= 0, got {self.wire_delay_s}")

    @property
    def has_wire_faults(self) -> bool:
        """Does this schedule ever touch the socket transport?"""
        return any(
            getattr(self, name) > 0
            for name in (
                "wire_drop_frac",
                "wire_corrupt_frac",
                "wire_truncate_frac",
                "wire_conn_drop_frac",
                "wire_delay_frac",
                "wire_duplicate_frac",
            )
        )


@dataclass(frozen=True)
class ChaosDecision:
    """What the harness does to one (cell, attempt)."""

    action: str = "none"  # "none" | "kill-before" | "kill-after" | "hang"
    hang_s: float = 0.0
    duplicate: bool = False

    @property
    def benign(self) -> bool:
        return self.action == "none" and not self.duplicate


_NO_CHAOS = ChaosDecision()


@dataclass(frozen=True)
class WireDecision:
    """What the wire-fault layer does to one cell's completion frame."""

    fate: str = "none"  # "none" | "drop" | "corrupt" | "truncate"
    conn_drop: bool = False  #: Close the connection after a clean send.
    delay_s: float = 0.0
    duplicate: bool = False

    @property
    def benign(self) -> bool:
        return (
            self.fate == "none"
            and not self.conn_drop
            and not self.duplicate
            and self.delay_s == 0.0
        )

    @property
    def drops_connection(self) -> bool:
        """Does this decision sever the TCP connection?

        ``truncate`` tears the frame *and* closes the socket (a torn
        write is only observable as one); ``conn_drop`` closes it after
        a clean send.  Tests count these to assert a seed exercises
        reconnection.
        """
        return self.fate == "truncate" or self.conn_drop


_NO_WIRE_CHAOS = WireDecision()


def _unit(seed: int, label: str) -> float:
    """Deterministic draw in [0, 1) from (seed, label)."""
    return derive_key(seed, label, 53) / float(1 << 53)


class ChaosEngine:
    """Worker-side decision oracle (pure; shared nothing)."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec

    def decide(self, key: str, attempt: int) -> ChaosDecision:
        """The (deterministic) fault plan for one dispatch of one cell."""
        if attempt != 1:
            return _NO_CHAOS  # retries always run clean -> convergence
        spec = self.spec
        u = _unit(spec.seed, f"{key}#fault")
        if u < spec.kill_before_frac:
            action = "kill-before"
        elif u < spec.kill_before_frac + spec.kill_after_frac:
            action = "kill-after"
        elif u < spec.kill_before_frac + spec.kill_after_frac + spec.hang_frac:
            action = "hang"
        else:
            action = "none"
        duplicate = _unit(spec.seed, f"{key}#dup") < spec.duplicate_frac
        if action == "none" and not duplicate:
            return _NO_CHAOS
        return ChaosDecision(
            action=action,
            hang_s=spec.hang_s if action == "hang" else 0.0,
            duplicate=duplicate,
        )

    def decide_wire(self, key: str, attempt: int) -> WireDecision:
        """The deterministic wire-fault plan for one completion send.

        Like :meth:`decide`, fires only on a cell's **first** attempt:
        re-dispatched attempts ship clean frames, so every wire-chaos
        schedule converges.  The draws use distinct labels from the
        process-fault draws, so wire and process chaos decorrelate.
        """
        if attempt != 1:
            return _NO_WIRE_CHAOS
        spec = self.spec
        if not spec.has_wire_faults:
            return _NO_WIRE_CHAOS
        u = _unit(spec.seed, f"{key}#wire-fate")
        if u < spec.wire_drop_frac:
            fate = "drop"
        elif u < spec.wire_drop_frac + spec.wire_corrupt_frac:
            fate = "corrupt"
        elif u < spec.wire_drop_frac + spec.wire_corrupt_frac + spec.wire_truncate_frac:
            fate = "truncate"
        else:
            fate = "none"
        conn_drop = (
            fate in ("none", "drop")  # truncate already closes the socket
            and _unit(spec.seed, f"{key}#wire-conn") < spec.wire_conn_drop_frac
        )
        delay = (
            spec.wire_delay_s
            if _unit(spec.seed, f"{key}#wire-delay") < spec.wire_delay_frac
            else 0.0
        )
        duplicate = _unit(spec.seed, f"{key}#wire-dup") < spec.wire_duplicate_frac
        if fate == "none" and not conn_drop and not duplicate and delay == 0.0:
            return _NO_WIRE_CHAOS
        return WireDecision(
            fate=fate, conn_drop=conn_drop, delay_s=delay, duplicate=duplicate
        )

    def kill_now(self, action: str) -> None:  # pragma: no cover - exits
        """Terminate this worker process immediately (no cleanup)."""
        METRICS.inc("chaos.injections", action=action)
        os._exit(KILLED_EXIT_CODE)


def planned_faults(
    spec: ChaosSpec, keys: Iterable[str]
) -> List[Tuple[str, ChaosDecision]]:
    """Precompute the first-attempt fault schedule for a set of cells.

    Tests use this to assert a chosen seed produces the scenario they
    need (e.g. at least two kills) *before* spending simulation time.
    """
    engine = ChaosEngine(spec)
    plan = []
    for key in keys:
        decision = engine.decide(key, 1)
        if not decision.benign:
            plan.append((key, decision))
    return plan


def planned_wire_faults(
    spec: ChaosSpec, keys: Iterable[str]
) -> List[Tuple[str, WireDecision]]:
    """Precompute the first-attempt wire-fault schedule for some cells.

    The distributed smoke uses this to assert its seed produces the
    scenario the acceptance contract names (>= 2 connection drops, at
    least one corrupt frame) before spending simulation time.
    """
    engine = ChaosEngine(spec)
    plan = []
    for key in keys:
        decision = engine.decide_wire(key, 1)
        if not decision.benign:
            plan.append((key, decision))
    return plan


# ---------------------------------------------------------------------------
# Scheduler-side: delivery-order chaos
# ---------------------------------------------------------------------------
class CompletionGate:
    """Holds every k-th completion back one delivery (reordering).

    The scheduler funnels every received completion through
    :meth:`intercept`; with ``reorder_every == k``, completion number
    ``k, 2k, ...`` is held until the *next* completion arrives (then
    delivered after it), or until :meth:`flush_due` sees it exceed
    ``max_hold_s`` -- whichever comes first, so a held final message
    cannot deadlock the run.
    """

    def __init__(self, spec: ChaosSpec, *, clock=None) -> None:
        import time

        self.spec = spec
        self._clock = clock or time.monotonic
        self._count = 0
        self._held: Optional[object] = None
        self._held_at = 0.0

    def intercept(self, message) -> List[object]:
        """Pass one completion through the gate; returns deliveries."""
        if not self.spec.reorder_every:
            return [message]
        self._count += 1
        out: List[object] = []
        if self._held is not None:
            held, self._held = self._held, None
            out.append(message)
            out.append(held)  # delivered late: reordered past its successor
            METRICS.inc("chaos.injections", action="reorder")
            return out
        if self._count % self.spec.reorder_every == 0:
            self._held = message
            self._held_at = self._clock()
            return []
        return [message]

    def flush_due(self) -> List[object]:
        """Release a held message that has waited past ``max_hold_s``."""
        if self._held is None:
            return []
        if self._clock() - self._held_at < self.spec.max_hold_s:
            return []
        held, self._held = self._held, None
        METRICS.inc("chaos.injections", action="reorder")
        return [held]

    def flush(self) -> List[object]:
        """Unconditionally release anything held (drain path)."""
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]


# ---------------------------------------------------------------------------
# Journal chaos
# ---------------------------------------------------------------------------
def truncate_journal_tail(path: Union[str, Path], *, seed: int = 0) -> int:
    """Tear the final JSONL record of a journal mid-write.

    Cuts a seeded number of bytes (at least one, never the whole line)
    off the file's last non-empty line, simulating a crash on a
    filesystem where the atomic-rename discipline did not hold.  Returns
    the number of bytes removed.  The journal must still *load* after
    this -- skipping exactly the torn record -- which is what the resume
    tests assert.
    """
    path = Path(path)
    data = path.read_bytes().rstrip(b"\n")
    if not data:
        raise ValueError(f"{path} has no records to truncate")
    last_newline = data.rfind(b"\n")
    last_line_len = len(data) - (last_newline + 1)
    if last_line_len < 2:
        raise ValueError(f"{path}: final record too short to tear")
    cut = 1 + derive_key(seed, f"truncate:{path.name}", 32) % (last_line_len - 1)
    path.write_bytes(data[: len(data) - cut])
    METRICS.inc("chaos.injections", action="journal-truncate")
    return cut


__all__ = [
    "KILLED_EXIT_CODE",
    "ChaosDecision",
    "ChaosEngine",
    "ChaosSpec",
    "CompletionGate",
    "WireDecision",
    "planned_faults",
    "planned_wire_faults",
    "truncate_journal_tail",
]
