"""Minimalist Open-Page (MOP) mapping (Kaseridis et al., Section 7.1).

MOP places only four lines of each 4 KB page in a row and round-robins
consecutive 4-line chunks across all banks.  Because the round-robin
wraps, one chunk of each of 32 *consecutive* pages still co-resides in
each row -- spatial correlation survives, and the paper finds MOP's
hot-row counts close to the baseline mappings (Figure 17).
"""

from __future__ import annotations

from repro.dram.config import DRAMConfig
from repro.mapping.base import FieldDecodeMapping, fields_from_segments


class MOPMapping(FieldDecodeMapping):
    """MOP: 4-line chunks round-robined across banks.

    Layout (LSB to MSB): 2 column bits (the 4-line chunk), channel bits,
    bank bits (chunk round-robin), the remaining column bits (consecutive
    pages sharing the row), rank bits, row bits.
    """

    def __init__(self, config: DRAMConfig) -> None:
        segments = [
            ("col", min(2, config.col_bits)),
            ("channel", config.channel_bits),
            ("bank", config.bank_bits),
            ("col", max(0, config.col_bits - 2)),
            ("rank", config.rank_bits),
            ("row", config.row_bits),
        ]
        super().__init__(config, fields_from_segments(config, segments))


__all__ = ["MOPMapping"]
