"""Sequential (linear) mapping: consecutive lines fill a row, then the
next bank, then the next row.

This is the textbook mapping used by the illustrative model of Figure 4
(one bank, 4 KB rows): an entire page co-resides in one row and there is
no bank hashing.
"""

from __future__ import annotations

from repro.dram.config import DRAMConfig
from repro.mapping.base import FieldDecodeMapping, fields_from_segments


class LinearMapping(FieldDecodeMapping):
    """Row-major decode: [row | channel | rank | bank | col] from MSB to LSB."""

    def __init__(self, config: DRAMConfig) -> None:
        segments = [
            ("col", config.col_bits),
            ("bank", config.bank_bits),
            ("rank", config.rank_bits),
            ("channel", config.channel_bits),
            ("row", config.row_bits),
        ]
        super().__init__(config, fields_from_segments(config, segments))


__all__ = ["LinearMapping"]
