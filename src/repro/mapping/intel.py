"""Intel Coffee Lake and Skylake memory mappings (Section 2.3).

Both mappings place spatially proximate lines in the same DRAM row to
maximize row-buffer hits -- which is exactly what creates hot rows:

* **Coffee Lake** keeps 128 consecutive lines (two 4 KB pages) in one
  row, with xor-hashed bank selection.
* **Skylake** alternates pairs of lines between two banks, so 32 lines
  of each 4 KB page land in a row, and four consecutive pages share the
  row.

For the multi-channel systems of Section 5.12 both mappings stripe gangs
of four lines across channels, matching the paper's description of
Intel's multi-channel interleave.
"""

from __future__ import annotations

from repro.dram.config import DRAMConfig
from repro.mapping.base import (
    FieldDecodeMapping,
    default_bank_hash,
    fields_from_segments,
)


class CoffeeLakeMapping(FieldDecodeMapping):
    """Coffee Lake: 128 consecutive lines per row, xor-hashed banks.

    Layout (LSB to MSB): 2 column bits (gang of 4 lines), channel bits,
    the remaining 5 column bits, bank bits, rank bits, row bits.  With one
    channel this degenerates to a contiguous 7-bit column field, i.e. two
    consecutive 4 KB pages per row.
    """

    def __init__(self, config: DRAMConfig) -> None:
        segments = [
            ("col", min(2, config.col_bits)),
            ("channel", config.channel_bits),
            ("col", max(0, config.col_bits - 2)),
            ("bank", config.bank_bits),
            ("rank", config.rank_bits),
            ("row", config.row_bits),
        ]
        super().__init__(
            config,
            fields_from_segments(config, segments),
            bank_hash_row_bits=default_bank_hash(config),
        )


class SkylakeMapping(FieldDecodeMapping):
    """Skylake: line pairs alternate between two banks.

    Page-offset bit 1 selects the bank's low bit, so lines 0,1,4,5,...
    of a 4 KB page share one row while lines 2,3,6,7,... go to a second
    bank; 32 lines of each page land in a row and four consecutive pages
    co-reside (column high bits come from page-index bits 6-7).
    """

    def __init__(self, config: DRAMConfig) -> None:
        if config.col_bits < 7:
            raise ValueError("SkylakeMapping requires 8 KB rows (7 column bits)")
        segments = [
            ("col", 1),                      # line within pair
            ("bank", 1),                     # pair parity -> bank LSB
            ("channel", config.channel_bits),
            ("col", 4),                      # pair within page
            ("col", config.col_bits - 5),    # consecutive pages sharing the row
            ("bank", config.bank_bits - 1),
            ("rank", config.rank_bits),
            ("row", config.row_bits),
        ]
        super().__init__(
            config,
            fields_from_segments(config, segments),
            bank_hash_row_bits=default_bank_hash(config),
        )


__all__ = ["CoffeeLakeMapping", "SkylakeMapping"]
