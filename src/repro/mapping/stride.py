"""Large-stride mapping (Section 6.1): randomization without a cipher.

The gang-in-row column bits are taken from the *most significant* address
bits, so gangs co-residing in a row are separated by huge strides (512 MB
for 16 GB memory with 32 gangs per row).  Spatially proximate lines thus
never share a row, which reduces hot rows for typical workloads -- but,
unlike cipher-based Rubix-S, an adversary (or an unlucky workload) using
exactly that large stride re-creates them, which is why the paper treats
this as a discussion-only alternative.
"""

from __future__ import annotations

from repro.dram.config import DRAMConfig
from repro.mapping.base import FieldDecodeMapping, fields_from_segments
from repro.utils.bitops import bit_length_for


class LargeStrideMapping(FieldDecodeMapping):
    """Gang-in-row selected by the top address bits.

    Layout (LSB to MSB): k column bits (line in gang), channel bits, bank
    bits, rank bits, row bits, and the remaining column bits at the very
    top of the address.
    """

    def __init__(self, config: DRAMConfig, gang_size: int = 4) -> None:
        if gang_size < 1:
            raise ValueError(f"gang_size must be >= 1, got {gang_size}")
        k = bit_length_for(gang_size)
        if k > config.col_bits:
            raise ValueError(
                f"gang of {gang_size} lines exceeds the {config.lines_per_row}-line row"
            )
        self.gang_size = gang_size
        segments = [
            ("col", k),
            ("channel", config.channel_bits),
            ("bank", config.bank_bits),
            ("rank", config.rank_bits),
            ("row", config.row_bits),
            ("col", config.col_bits - k),
        ]
        super().__init__(config, fields_from_segments(config, segments))

    @property
    def gang_stride_bytes(self) -> int:
        """Address distance between gangs that share a row.

        512 MB for the 16 GB baseline with 32 gangs of 4 lines per row.
        """
        high_col_bits = self.config.col_bits - bit_length_for(self.gang_size)
        lines_per_step = 2 ** (self.config.line_addr_bits - high_col_bits)
        return lines_per_step * self.config.line_bytes


__all__ = ["LargeStrideMapping"]
