"""Address-mapping interface and the bit-field decode engine.

A mapping translates a line address (e.g. 28 bits for the 16 GB baseline)
into a DRAM coordinate ``(channel, rank, bank, row, col)``.  Most real
controller mappings -- including every baseline in the paper -- are pure
bit-selection plus an xor hash on the bank bits, so the common machinery
here is :class:`FieldDecodeMapping`: each coordinate field names the
source address bits it is assembled from, and the bank field may be
xor-hashed with row bits.  Translation is vectorized over numpy arrays
for the fast analysis tier.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.config import Coordinate, DRAMConfig

FIELD_ORDER = ("channel", "rank", "bank", "row", "col")


@dataclass
class MappedTrace:
    """A trace translated to physical coordinates (vectorized form)."""

    flat_bank: np.ndarray
    row: np.ndarray
    col: np.ndarray
    rows_per_bank: int

    @property
    def global_row(self) -> np.ndarray:
        """Global physical row id per access."""
        return self.flat_bank.astype(np.int64) * np.int64(self.rows_per_bank) + self.row.astype(
            np.int64
        )

    def __len__(self) -> int:
        return int(self.flat_bank.size)

    def split_flat_bank(
        self, config: DRAMConfig
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Decompose flat bank ids into (channel, rank, bank) arrays.

        Inverts ``flat = (channel * ranks + rank) * banks + bank`` for
        the given geometry.
        """
        flat = self.flat_bank.astype(np.int64)
        bank = flat % config.banks
        rest = flat // config.banks
        rank = rest % config.ranks
        channel = rest // config.ranks
        return channel, rank, bank

    def iter_coordinates(self, config: DRAMConfig):
        """Yield one :class:`Coordinate` per access, in program order.

        Lets per-request consumers (the command-level protocol engine)
        ride a single vectorized ``translate_trace`` pass instead of
        calling ``mapping.translate`` once per line.
        """
        channel, rank, bank = self.split_flat_bank(config)
        rows = self.row.astype(np.int64)
        cols = self.col.astype(np.int64)
        for coord in zip(
            channel.tolist(), rank.tolist(), bank.tolist(), rows.tolist(), cols.tolist()
        ):
            yield Coordinate(*coord)


class AddressMapping(abc.ABC):
    """Translates line addresses to DRAM coordinates."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config

    @property
    def name(self) -> str:
        """Human-readable mapping name (used in experiment output)."""
        return type(self).__name__.replace("Mapping", "")

    @property
    def cache_key(self) -> str:
        """Key identifying this mapping's *behaviour* for result caches.

        Mappings whose translation depends on more than the class (keys,
        rates, seeds) must extend this so differently-configured
        instances never share cached statistics.
        """
        return self.name

    @abc.abstractmethod
    def translate(self, line_addr: int) -> Coordinate:
        """Translate one line address."""

    @abc.abstractmethod
    def translate_trace(self, lines: np.ndarray, *, validate: bool = True) -> MappedTrace:
        """Translate a whole trace (vectorized).

        ``validate`` bounds-checks the chunk once (a single max scan);
        callers that already validated the window -- e.g. the simulator,
        which checks once and then feeds chunks -- pass ``False`` so the
        hot path does no per-chunk scans at all.
        """

    def inverse(self, coord: Coordinate) -> int:
        """Translate a coordinate back to its line address.

        Optional; mappings that support it override.  Used by tests to
        verify bijectivity and by migration bookkeeping.
        """
        raise NotImplementedError(f"{self.name} does not implement inverse()")

    def _check_line(self, line_addr: int) -> None:
        if not 0 <= line_addr < self.config.total_lines:
            raise ValueError(
                f"line address {line_addr:#x} out of range for "
                f"{self.config.capacity_bytes} byte memory"
            )


class FieldDecodeMapping(AddressMapping):
    """Mapping defined by per-field source-bit lists plus a bank xor-hash.

    Args:
        config: DRAM geometry.
        field_bits: For each coordinate field, the address bit positions
            (LSB first) that assemble the field.  Every address bit must
            be used exactly once across all fields.
        bank_hash_row_bits: Row-relative bit positions xored into the bank
            field (per bank bit, a list of row bits folded by parity), or
            None for no hashing.
    """

    def __init__(
        self,
        config: DRAMConfig,
        field_bits: Dict[str, Sequence[int]],
        *,
        bank_hash_row_bits: Optional[List[List[int]]] = None,
    ) -> None:
        super().__init__(config)
        self._validate_spec(field_bits)
        self.field_bits = {k: list(v) for k, v in field_bits.items()}
        if bank_hash_row_bits is not None and len(bank_hash_row_bits) != config.bank_bits:
            raise ValueError(
                f"bank_hash_row_bits must have {config.bank_bits} entries, "
                f"got {len(bank_hash_row_bits)}"
            )
        self.bank_hash_row_bits = bank_hash_row_bits

    # ------------------------------------------------------------------
    def _expected_widths(self) -> Dict[str, int]:
        c = self.config
        return {
            "channel": c.channel_bits,
            "rank": c.rank_bits,
            "bank": c.bank_bits,
            "row": c.row_bits,
            "col": c.col_bits,
        }

    def _validate_spec(self, field_bits: Dict[str, Sequence[int]]) -> None:
        widths = {
            "channel": self.config.channel_bits,
            "rank": self.config.rank_bits,
            "bank": self.config.bank_bits,
            "row": self.config.row_bits,
            "col": self.config.col_bits,
        }
        used: List[int] = []
        for field in FIELD_ORDER:
            bits = list(field_bits.get(field, []))
            if len(bits) != widths[field]:
                raise ValueError(
                    f"field '{field}' needs {widths[field]} source bits, got {len(bits)}"
                )
            used.extend(bits)
        total = self.config.line_addr_bits
        if sorted(used) != list(range(total)):
            raise ValueError(
                f"field spec must use each of the {total} address bits exactly once"
            )

    # ------------------------------------------------------------------
    def _gather_field(self, lines: np.ndarray, bits: Sequence[int]) -> np.ndarray:
        out = np.zeros(lines.shape, dtype=np.uint64)
        for i, src in enumerate(bits):
            out |= ((lines >> np.uint64(src)) & np.uint64(1)) << np.uint64(i)
        return out

    def _hash_bank(self, bank: np.ndarray, row: np.ndarray) -> np.ndarray:
        if self.bank_hash_row_bits is None:
            return bank
        hashed = bank.copy() if isinstance(bank, np.ndarray) else bank
        for bit_index, row_bits in enumerate(self.bank_hash_row_bits):
            fold = np.zeros(row.shape, dtype=np.uint64) if isinstance(row, np.ndarray) else 0
            for rb in row_bits:
                if isinstance(row, np.ndarray):
                    fold ^= (row >> np.uint64(rb)) & np.uint64(1)
                else:
                    fold ^= (row >> rb) & 1
            if isinstance(bank, np.ndarray):
                hashed = hashed ^ (fold << np.uint64(bit_index))
            else:
                hashed ^= fold << bit_index
        return hashed

    # ------------------------------------------------------------------
    def translate(self, line_addr: int) -> Coordinate:
        self._check_line(line_addr)
        values = {}
        for field in FIELD_ORDER:
            bits = self.field_bits[field]
            value = 0
            for i, src in enumerate(bits):
                value |= ((line_addr >> src) & 1) << i
            values[field] = value
        values["bank"] = self._hash_bank(values["bank"], values["row"])
        return Coordinate(**values)

    def translate_trace(self, lines: np.ndarray, *, validate: bool = True) -> MappedTrace:
        lines = np.asarray(lines, dtype=np.uint64)
        if validate and lines.size and int(lines.max()) >= self.config.total_lines:
            raise ValueError(
                f"line addresses exceed the {self.config.capacity_bytes} byte memory"
            )
        channel = self._gather_field(lines, self.field_bits["channel"])
        rank = self._gather_field(lines, self.field_bits["rank"])
        bank = self._gather_field(lines, self.field_bits["bank"])
        row = self._gather_field(lines, self.field_bits["row"])
        col = self._gather_field(lines, self.field_bits["col"])
        bank = self._hash_bank(bank, row)
        flat = (channel * np.uint64(self.config.ranks) + rank) * np.uint64(
            self.config.banks
        ) + bank
        return MappedTrace(flat_bank=flat, row=row, col=col, rows_per_bank=self.config.rows_per_bank)

    def inverse(self, coord: Coordinate) -> int:
        self.config.validate_coordinate(coord)
        # Undo the bank hash first (xor is self-inverse given the row).
        bank_field = self._hash_bank(coord.bank, coord.row)
        values = {
            "channel": coord.channel,
            "rank": coord.rank,
            "bank": bank_field,
            "row": coord.row,
            "col": coord.col,
        }
        line = 0
        for field in FIELD_ORDER:
            value = values[field]
            for i, src in enumerate(self.field_bits[field]):
                line |= ((value >> i) & 1) << src
        return line


def fields_from_segments(
    config: DRAMConfig, segments: Sequence["tuple[str, int]"]
) -> Dict[str, List[int]]:
    """Build a field-bit spec from LSB-to-MSB (field, width) segments.

    Real mappings interleave fields (e.g. Skylake's bank bit sits between
    column bits); describing the layout as consecutive segments keeps each
    mapping definition readable.  Zero-width segments are allowed so one
    description covers single- and multi-channel geometries.

    >>> cfg = DRAMConfig()
    >>> spec = fields_from_segments(cfg, [("col", 7), ("bank", 4),
    ...                                   ("rank", 0), ("channel", 0), ("row", 17)])
    >>> spec["col"]
    [0, 1, 2, 3, 4, 5, 6]
    """
    fields: Dict[str, List[int]] = {name: [] for name in FIELD_ORDER}
    cursor = 0
    for name, width in segments:
        if name not in fields:
            raise ValueError(f"unknown field '{name}'")
        if width < 0:
            raise ValueError(f"segment width must be non-negative, got {width}")
        fields[name].extend(range(cursor, cursor + width))
        cursor += width
    if cursor != config.line_addr_bits:
        raise ValueError(
            f"segments cover {cursor} bits, address has {config.line_addr_bits}"
        )
    return fields


def default_bank_hash(config: DRAMConfig) -> List[List[int]]:
    """The xor-based bank hash used by the Intel-style mappings.

    Each bank bit is xored with the parity of a strided subset of row
    bits, decorrelating bank conflicts from row strides (the 'xor-based
    hashed mapping for bank selection' of Section 2.3).
    """
    return [
        [rb for rb in range(bit, config.row_bits, config.bank_bits)]
        for bit in range(config.bank_bits)
    ]


__all__ = [
    "AddressMapping",
    "FieldDecodeMapping",
    "MappedTrace",
    "FIELD_ORDER",
    "fields_from_segments",
    "default_bank_hash",
]
