"""Address mappings: line address -> DRAM coordinate.

Baseline mappings model deployed controllers (Intel Coffee Lake and
Skylake, per the reverse-engineering cited by the paper), plus MOP
(Section 7.1) and the large-stride mapping (Section 6.1).  The Rubix
mappings that randomize these live in :mod:`repro.core`.
"""

from repro.mapping.base import AddressMapping, FieldDecodeMapping, MappedTrace
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping
from repro.mapping.stride import LargeStrideMapping

__all__ = [
    "AddressMapping",
    "FieldDecodeMapping",
    "MappedTrace",
    "CoffeeLakeMapping",
    "SkylakeMapping",
    "LinearMapping",
    "MOPMapping",
    "LargeStrideMapping",
]
