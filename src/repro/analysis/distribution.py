"""Per-row activation-distribution statistics.

Hot rows are a tail phenomenon: the interesting comparison between
mappings is the whole distribution of per-row activation counts, not
just the count above one threshold.  These helpers compute the decade
histogram, tail percentiles, and a concentration index used by the
``actdist`` experiment and available for notebook-style exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.dram.fast_model import TraceStats

#: Decade bucket edges for activation histograms.
DECADE_EDGES = (1, 4, 16, 64, 256, 1024, 4096)


@dataclass(frozen=True)
class ActivationDistribution:
    """Summary of a window's per-row activation distribution."""

    rows_with_activations: int
    total_activations: int
    decade_counts: Dict[str, int]
    p50: float
    p99: float
    p999: float
    max_acts: int
    concentration_index: float

    def describe(self) -> List[str]:
        """Human-readable lines for reports."""
        lines = [
            f"rows with ACTs: {self.rows_with_activations:,}; "
            f"total ACTs: {self.total_activations:,}",
            f"percentiles p50/p99/p99.9/max: {self.p50:.0f}/{self.p99:.0f}/"
            f"{self.p999:.0f}/{self.max_acts}",
            f"concentration index (top-1% share): {self.concentration_index:.2f}",
        ]
        lines += [f"  {label}: {count:,}" for label, count in self.decade_counts.items()]
        return lines


def activation_distribution(stats: TraceStats) -> ActivationDistribution:
    """Compute the distribution summary for one analyzed window."""
    acts = stats.acts_per_row
    if acts.size == 0:
        return ActivationDistribution(
            rows_with_activations=0,
            total_activations=0,
            decade_counts={_bucket_label(i): 0 for i in range(len(DECADE_EDGES))},
            p50=0.0,
            p99=0.0,
            p999=0.0,
            max_acts=0,
            concentration_index=0.0,
        )
    sorted_acts = np.sort(acts)
    total = int(sorted_acts.sum())
    top = max(1, acts.size // 100)
    concentration = float(sorted_acts[-top:].sum() / total) if total else 0.0
    decades = {}
    for i, low in enumerate(DECADE_EDGES):
        high = DECADE_EDGES[i + 1] if i + 1 < len(DECADE_EDGES) else None
        if high is None:
            mask = acts >= low
        else:
            mask = (acts >= low) & (acts < high)
        decades[_bucket_label(i)] = int(np.count_nonzero(mask))
    return ActivationDistribution(
        rows_with_activations=int(acts.size),
        total_activations=total,
        decade_counts=decades,
        p50=float(np.percentile(acts, 50)),
        p99=float(np.percentile(acts, 99)),
        p999=float(np.percentile(acts, 99.9)),
        max_acts=int(sorted_acts[-1]),
        concentration_index=concentration,
    )


def _bucket_label(index: int) -> str:
    low = DECADE_EDGES[index]
    if index + 1 < len(DECADE_EDGES):
        return f"[{low},{DECADE_EDGES[index + 1]})"
    return f"[{low},inf)"


def compare_distributions(
    labels: Sequence[str], distributions: Sequence[ActivationDistribution]
) -> List[List[object]]:
    """Tabulate several distributions side by side (experiment helper)."""
    if len(labels) != len(distributions):
        raise ValueError("labels and distributions must align")
    rows = []
    for label, dist in zip(labels, distributions):
        rows.append(
            [
                label,
                dist.rows_with_activations,
                round(dist.p50, 1),
                round(dist.p99, 1),
                round(dist.p999, 1),
                dist.max_acts,
                round(dist.concentration_index, 3),
            ]
        )
    return rows


__all__ = [
    "DECADE_EDGES",
    "ActivationDistribution",
    "activation_distribution",
    "compare_distributions",
]
