"""DRAMA-style mapping reverse engineering -- and why Rubix resists it.

Real Rowhammer attacks start by reverse-engineering the controller's
address mapping with a timing side channel: two addresses in the same
bank but different rows exhibit the row-conflict latency.  For the
xor-based mappings deployed today, the bank-selection function is
*linear over GF(2)*, so a few thousand timing probes and Gaussian
elimination recover the exact bank masks (Pessl et al., USENIX Sec'16;
the DRAMDig tool the paper cites).

This module implements that attack against our mappings:

* :func:`probe_same_bank` -- the (idealized, noise-free) timing oracle.
* :func:`recover_linear_bank_masks` -- GF(2) recovery of the bank
  function from probes, assuming linearity.
* :func:`linearity_score` -- how well a recovered linear model predicts
  fresh probes; ~1.0 for the Intel mappings, ~0.5 (coin-flip) for
  cipher-based Rubix-S, which has no linear structure to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dram.config import DRAMConfig
from repro.mapping.base import AddressMapping
from repro.utils.prng import SplitMix64


def probe_same_bank(mapping: AddressMapping, line_a: int, line_b: int) -> bool:
    """The timing oracle: do two lines hit the same bank?

    Models a perfect row-conflict timing measurement (same bank and
    different rows -> conflict latency; we expose same-bank directly,
    the strongest possible oracle).
    """
    config = mapping.config
    return config.flat_bank(mapping.translate(line_a)) == config.flat_bank(
        mapping.translate(line_b)
    )


def _bank_bits_vector(mapping: AddressMapping, line: int) -> int:
    config = mapping.config
    return config.flat_bank(mapping.translate(line))


@dataclass(frozen=True)
class LinearModel:
    """A recovered GF(2)-linear model of the bank function."""

    masks: Tuple[int, ...]  # one xor mask per bank bit
    constants: Tuple[int, ...]  # affine constants per bank bit

    def predict_bank(self, line: int) -> int:
        bank = 0
        for bit, (mask_value, constant) in enumerate(zip(self.masks, self.constants)):
            parity = bin(line & mask_value).count("1") & 1
            bank |= (parity ^ constant) << bit
        return bank


def recover_linear_bank_masks(
    mapping: AddressMapping, *, samples: int = 4096, seed: int = 0xD12A
) -> LinearModel:
    """Fit an affine GF(2) model bank_bit_i = parity(line & mask_i) ^ c_i.

    Solves one least-inconsistent system per bank bit by Gaussian
    elimination over the sampled (line, bank) pairs.  For truly linear
    mappings the fit is exact; for nonlinear (cipher) mappings the
    returned model is the best linear guess and will predict poorly.
    """
    config = mapping.config
    nbits = config.line_addr_bits
    rng = SplitMix64(seed).numpy_rng()
    lines = rng.integers(0, config.total_lines, samples, dtype=np.uint64)
    banks = np.array([_bank_bits_vector(mapping, int(line)) for line in lines])

    total_bank_bits = (config.total_banks - 1).bit_length() or 1
    masks: List[int] = []
    constants: List[int] = []
    # Build the GF(2) design matrix: line bits plus an affine column.
    design = np.zeros((samples, nbits + 1), dtype=np.uint8)
    for bit in range(nbits):
        design[:, bit] = (lines >> np.uint64(bit)) & np.uint64(1)
    design[:, nbits] = 1

    for bank_bit in range(total_bank_bits):
        target = ((banks >> bank_bit) & 1).astype(np.uint8)
        solution = _gf2_least_squares(design.copy(), target.copy())
        mask_value = 0
        for bit in range(nbits):
            if solution[bit]:
                mask_value |= 1 << bit
        masks.append(mask_value)
        constants.append(int(solution[nbits]))
    return LinearModel(masks=tuple(masks), constants=tuple(constants))


def _gf2_least_squares(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Solve design @ x = target over GF(2) by elimination.

    Uses the first linearly-independent rows as constraints; for
    consistent (truly linear) systems this is an exact solution, for
    inconsistent systems it returns the solution of the independent
    subsystem (a best-effort linear guess).
    """
    rows, cols = design.shape
    augmented = np.concatenate([design, target[:, None]], axis=1)
    pivot_row = 0
    pivot_cols = []
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if augmented[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        augmented[[pivot_row, pivot]] = augmented[[pivot, pivot_row]]
        eliminate = (augmented[:, col] == 1) & (np.arange(rows) != pivot_row)
        augmented[eliminate] ^= augmented[pivot_row]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    solution = np.zeros(cols, dtype=np.uint8)
    for row, col in enumerate(pivot_cols):
        solution[col] = augmented[row, -1]
    return solution


def linearity_score(
    mapping: AddressMapping,
    model: LinearModel,
    *,
    samples: int = 2048,
    seed: int = 0x7E57,
) -> float:
    """Fraction of fresh probes the linear model predicts correctly.

    ~1.0 means the mapping's bank function was recovered (the attacker
    can now build same-bank address sets); near the random-guess
    baseline means the mapping resists linear reverse engineering.
    """
    config = mapping.config
    rng = SplitMix64(seed).numpy_rng()
    lines = rng.integers(0, config.total_lines, samples, dtype=np.uint64)
    correct = sum(
        model.predict_bank(int(line)) == _bank_bits_vector(mapping, int(line))
        for line in lines
    )
    return correct / samples


def random_guess_baseline(config: DRAMConfig) -> float:
    """Expected accuracy of guessing the bank uniformly."""
    return 1.0 / config.total_banks


__all__ = [
    "probe_same_bank",
    "LinearModel",
    "recover_linear_bank_masks",
    "linearity_score",
    "random_guess_baseline",
]
