"""Security verification (Sections 4.10 and 5.5).

The threat model: an attack succeeds iff some row accumulates more than
T_RH activations (or refresh-induced disturbances, for Half-Double
against victim refresh) within one 64 ms window without mitigation.

``verify_mitigation`` replays an attack trace through the *detailed*
memory system with a mitigation attached and reports the peak per-row
pressure.  The integration tests assert:

* AQUA, SRS, and Blockhammer keep every row below T_RH for every attack
  pattern and every mapping (Lemma 1),
* Rubix-S/Rubix-D are just mappings, so the same holds with them
  (Lemma 2), and
* TRR is broken by Half-Double: the refresh-induced disturbance at
  distance 2 exceeds what the threshold permits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.config import DRAMConfig
from repro.dram.memory_system import MemorySystem, Request
from repro.mapping.base import AddressMapping
from repro.mitigations.base import Mitigation
from repro.mitigations.trr import TRR
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SecurityReport:
    """Peak per-row pressure observed during an attack replay.

    The breach criterion depends on the defense style:

    * *unprotected*: a row exceeding T_RH activations flips bits.
    * *aggressor-focused* (AQUA/SRS/Blockhammer): the guarantee is that
      no physical row ever accumulates T_RH activations in a window, so
      the activation count is the metric.
    * *victim-refresh* (TRR): the victim of a tracked aggressor is
      refreshed in time, so direct activation counts are mitigated --
      but the refreshes themselves disturb rows at distance 2, which is
      untracked; that accumulated disturbance is TRR's breach channel
      (Half-Double).
    """

    attack: str
    mitigation: str
    scheme_kind: str  # "none" | "aggressor" | "victim-refresh"
    t_rh: int
    max_row_activations: int
    max_refresh_disturbance: int
    mitigations_triggered: int

    @property
    def activation_breach(self) -> bool:
        """Did any row's per-window activation count exceed T_RH
        without a defense that neutralizes those activations?"""
        if self.scheme_kind == "victim-refresh":
            # Tracked aggressors get their victims refreshed before the
            # accumulated count matters (idealized tracker).
            return False
        return self.max_row_activations > self.t_rh

    @property
    def half_double_breach(self) -> bool:
        """Did refresh-induced disturbance reach hammering levels?

        Victim refreshes act as activations of *their* neighbours; if a
        row accumulates T_RH of them, Half-Double flips its bits even
        though no explicit activation ever targeted it.
        """
        return self.max_refresh_disturbance > self.t_rh

    @property
    def secure(self) -> bool:
        return not (self.activation_breach or self.half_double_breach)


def verify_mitigation(
    config: DRAMConfig,
    mapping: AddressMapping,
    mitigation: Optional[Mitigation],
    attack: Trace,
    *,
    t_rh: int,
    request_interval_s: float = 50e-9,
) -> SecurityReport:
    """Replay an attack through the detailed model and report pressure.

    Args:
        config: DRAM geometry/timing.
        mapping: Address mapping under test.
        mitigation: Mitigation under test (None = unprotected).
        attack: Attack trace (line addresses).
        t_rh: Rowhammer threshold defining a breach.
        request_interval_s: Attack issue rate (50 ns ~ back-to-back ACTs).
    """
    system = MemorySystem(config, mapping, mitigation=mitigation)
    requests = [
        Request(line_addr=int(line), arrival=i * request_interval_s)
        for i, line in enumerate(attack.lines)
    ]
    system.run_trace(requests)
    # The mitigation counts activations of the rows it actually sees
    # (post-redirect); the memory-system histogram is the ground truth
    # for per-physical-row pressure.
    max_acts = system.stats.max_row_activations()
    if mitigation is None:
        kind = "none"
    elif isinstance(mitigation, TRR):
        kind = "victim-refresh"
    else:
        kind = "aggressor"
    disturbance = mitigation.max_disturbance() if isinstance(mitigation, TRR) else 0
    return SecurityReport(
        attack=attack.name,
        mitigation=type(mitigation).__name__ if mitigation else "none",
        scheme_kind=kind,
        t_rh=t_rh,
        max_row_activations=max_acts,
        max_refresh_disturbance=disturbance,
        mitigations_triggered=mitigation.stats.mitigations_triggered if mitigation else 0,
    )


__all__ = ["SecurityReport", "verify_mitigation"]
