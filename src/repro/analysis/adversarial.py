"""Adversarial access-pattern analysis (Section 6.1's caveat).

The large-stride mapping reduces hot rows for *typical* workloads by
placing a row's gangs 512 MB apart -- but the placement is fixed and
public, so a pattern that strides by exactly that distance re-creates
hot rows at will.  Cipher-based Rubix-S has no such public structure:
the same pattern scatters like any other.

``mapping_robustness`` quantifies this: it feeds a mapping both a benign
pattern and the worst-case stride pattern for a given row-gang distance
and reports hot rows under each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.config import DRAMConfig
from repro.dram.fast_model import analyze_trace
from repro.mapping.base import AddressMapping
from repro.workloads.trace import Trace


def gang_stride_attack_trace(
    stride_lines: int,
    *,
    gangs: int = 32,
    accesses: int = 500_000,
    gang_size: int = 4,
    base_line: int = 0,
    background_ratio: int = 7,
    total_lines: int = 1 << 28,
    seed: int = 0x57D1,
) -> Trace:
    """A large-stride pattern interleaved with ordinary traffic.

    Models a benign-looking application (e.g. a column-major traversal)
    whose touches are spaced ``stride_lines`` apart, running alongside
    background traffic that keeps closing the row buffer.  Against a
    mapping that co-locates gangs at exactly that stride, the pattern's
    activations concentrate into a handful of rows; against a randomized
    mapping they spread out.
    """
    if stride_lines < 1 or gangs < 1:
        raise ValueError("stride_lines and gangs must be positive")
    if background_ratio < 0:
        raise ValueError("background_ratio must be non-negative")
    pattern_accesses = accesses // (1 + background_ratio)
    i = np.arange(pattern_accesses, dtype=np.uint64)
    gang_index = i % np.uint64(gangs)
    line_in_gang = (i // np.uint64(gangs)) % np.uint64(gang_size)
    pattern = np.uint64(base_line) + gang_index * np.uint64(stride_lines) + line_in_gang

    rng = np.random.default_rng(seed)
    background = rng.integers(
        0, total_lines, accesses - pattern_accesses, dtype=np.uint64
    )
    # Interleave: one pattern access per background_ratio random ones.
    lines = np.empty(accesses, dtype=np.uint64)
    step = 1 + background_ratio
    lines[0::step] = pattern[: len(lines[0::step])]
    mask = np.ones(accesses, dtype=bool)
    mask[0::step] = False
    lines[mask] = background[: int(mask.sum())]
    return Trace(name=f"stride-attack-{stride_lines}", lines=lines, instructions=accesses * 2)


@dataclass(frozen=True)
class RobustnessReport:
    """Concentration exposure of a mapping to a worst-case stride.

    Attributes:
        mapping_name: Mapping under test.
        benign_hot_rows: Hot rows from an ordinary stride-64 sweep.
        adversarial_hot_rows: Hot rows from the gang-stride pattern.
        adversarial_max_row_acts: Peak per-row activations under it.
        fair_share_acts: What the peak would be if the pattern's
            activations spread evenly over its gang positions.
    """

    mapping_name: str
    benign_hot_rows: int
    adversarial_hot_rows: int
    adversarial_max_row_acts: int
    fair_share_acts: int

    @property
    def concentration(self) -> float:
        """Peak-to-fair-share ratio (1.0 = perfectly spread)."""
        return self.adversarial_max_row_acts / max(1, self.fair_share_acts)

    @property
    def exposed(self) -> bool:
        """Does the stride concentrate far beyond an even spread?"""
        return self.concentration > 8.0


def mapping_robustness(
    config: DRAMConfig,
    mapping: AddressMapping,
    *,
    adversarial_stride_lines: int,
    accesses: int = 500_000,
    hot_threshold: int = 64,
    gangs: int = 32,
) -> RobustnessReport:
    """Compare hot-row pressure under a benign stride-64 sweep vs the
    worst-case gang stride for this mapping."""
    from repro.workloads.kernels import stride_kernel

    benign = stride_kernel(
        footprint_lines=min(config.total_lines, 1 << 16), accesses=accesses
    )
    adversarial = gang_stride_attack_trace(
        adversarial_stride_lines,
        gangs=gangs,
        accesses=accesses,
        total_lines=config.total_lines,
    )
    pattern_accesses = accesses // 8  # 1-in-8 interleave in the trace

    def hot(trace: Trace) -> "tuple[int, int]":
        mapped = mapping.translate_trace(trace.lines)
        stats = analyze_trace(
            mapped.flat_bank,
            mapped.row,
            rows_per_bank=config.rows_per_bank,
            max_hits=16,
        )
        return stats.hot_rows(hot_threshold), stats.max_row_activations()

    benign_hot, _ = hot(benign)
    adversarial_hot, max_acts = hot(adversarial)
    return RobustnessReport(
        mapping_name=mapping.name,
        benign_hot_rows=benign_hot,
        adversarial_hot_rows=adversarial_hot,
        adversarial_max_row_acts=max_acts,
        fair_share_acts=pattern_accesses // gangs,
    )


__all__ = ["gang_stride_attack_trace", "RobustnessReport", "mapping_robustness"]
