"""Hot-row characterization (Tables 2 and 3).

A *hot row* receives at least ``threshold`` activations within one
refresh window.  Table 2 counts them per workload (ACT-64+ / ACT-512+);
Table 3 asks how many distinct lines of each hot row contributed
activations -- the evidence that the line-to-row mapping, not a single
frantic line, is what makes rows hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.dram.fast_model import TraceStats

#: Table 3's line-count buckets (inclusive lower, exclusive upper).
LINE_BUCKETS: Tuple[Tuple[int, int], ...] = ((1, 32), (32, 64), (64, 129))


@dataclass(frozen=True)
class HotRowSummary:
    """Table-2-style summary of one analyzed window."""

    unique_rows: int
    hot_rows_64: int
    hot_rows_512: int
    activations: int
    hit_rate: float


def hot_row_summary(stats: TraceStats) -> HotRowSummary:
    """Summarize a window's hot-row statistics."""
    return HotRowSummary(
        unique_rows=stats.unique_rows_touched,
        hot_rows_64=stats.hot_rows(64),
        hot_rows_512=stats.hot_rows(512),
        activations=stats.n_activations,
        hit_rate=stats.hit_rate,
    )


@dataclass(frozen=True)
class LineContribution:
    """Table-3 row: distribution of activating-line counts per hot row.

    Attributes:
        hot_rows: Number of hot rows analyzed.
        bucket_fractions: Fraction of hot rows whose distinct activating
            line count falls in each of :data:`LINE_BUCKETS`.
        average_lines: Mean distinct activating lines per hot row.
    """

    hot_rows: int
    bucket_fractions: Dict[str, float]
    average_lines: float


def line_contribution_table(
    stats: TraceStats, *, threshold: int = 64, lines_per_row: int = 128
) -> LineContribution:
    """Compute Table 3 for one window.

    Requires the window to have been analyzed with ``keep_detail=True``
    (the per-activation row/column arrays).
    """
    if stats.act_rows is None or stats.act_cols is None:
        raise ValueError("line contribution needs keep_detail=True analysis")
    hot_ids = stats.row_ids[stats.acts_per_row >= threshold]
    empty = {f"{lo}-{hi - 1}": 0.0 for lo, hi in LINE_BUCKETS}
    if hot_ids.size == 0:
        return LineContribution(hot_rows=0, bucket_fractions=empty, average_lines=0.0)

    mask = np.isin(stats.act_rows, hot_ids)
    pair = stats.act_rows[mask] * np.int64(lines_per_row) + stats.act_cols[mask].astype(
        np.int64
    )
    unique_pairs = np.unique(pair)
    rows_of_pairs = unique_pairs // lines_per_row
    _, lines_per_hot_row = np.unique(rows_of_pairs, return_counts=True)

    fractions = {}
    for lo, hi in LINE_BUCKETS:
        in_bucket = np.count_nonzero((lines_per_hot_row >= lo) & (lines_per_hot_row < hi))
        fractions[f"{lo}-{hi - 1}"] = in_bucket / hot_ids.size
    return LineContribution(
        hot_rows=int(hot_ids.size),
        bucket_fractions=fractions,
        average_lines=float(lines_per_hot_row.mean()),
    )


__all__ = ["LINE_BUCKETS", "HotRowSummary", "hot_row_summary", "LineContribution", "line_contribution_table"]
