"""Analysis utilities: hot-row characterization, the analytic binomial
model of Section 4.1, and the security checker."""

from repro.analysis.binomial import (
    encrypted_hot_row_expectation,
    expected_rows_with_k_lines,
    illustrative_model,
)
from repro.analysis.hotrows import (
    LineContribution,
    hot_row_summary,
    line_contribution_table,
)
from repro.analysis.security import SecurityReport, verify_mitigation

__all__ = [
    "expected_rows_with_k_lines",
    "encrypted_hot_row_expectation",
    "illustrative_model",
    "LineContribution",
    "hot_row_summary",
    "line_contribution_table",
    "SecurityReport",
    "verify_mitigation",
]
