"""Analytic model of Section 4.1 / Figure 4.

A 4 GB single-bank memory with 1 M rows of 4 KB runs three kernels with
a 4 MB footprint and one million accesses.  Under the sequential mapping
the stride and random kernels make *every* footprint row hot; under an
encrypted (randomized) mapping the footprint's 64 K lines scatter over
the million rows and the binomial/Poisson math below predicts the
hot-row expectations the paper quotes (61.5 K rows with one line, 1.9 K
with two, 40 with three; ~0.4 expected hot rows for random).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


def expected_rows_with_k_lines(
    footprint_lines: int, total_rows: int, lines_per_row: int, k: int
) -> float:
    """Expected rows receiving exactly ``k`` footprint lines.

    Each of the ``lines_per_row`` line slots of a row receives a given
    footprint line with probability 1/(total_rows * lines_per_row); the
    count per row is Binomial(footprint_lines, lines_per_row/total_lines).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    total_lines = total_rows * lines_per_row
    p = lines_per_row / total_lines
    log_pmf = (
        _log_comb(footprint_lines, k)
        + k * math.log(p)
        + (footprint_lines - k) * math.log1p(-p)
    )
    return total_rows * math.exp(log_pmf)


def _log_comb(n: int, k: int) -> float:
    if k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def encrypted_hot_row_expectation(
    footprint_lines: int,
    total_rows: int,
    lines_per_row: int,
    accesses: int,
    hot_threshold: int = 64,
) -> float:
    """Expected hot rows for the *random* kernel under encryption.

    Each access activates the row of a uniformly random footprint line;
    a row holding k footprint lines accumulates Binomial(accesses,
    k/footprint_lines) activations.  Summing the tail probability over
    the row-population distribution gives the expectation (the paper
    estimates ~0.4 rows for the Figure-4 parameters).
    """
    expectation = 0.0
    # Rows holding >= 8 lines are vanishingly rare for the paper's
    # parameters; the truncation error is far below the result's scale.
    for k in range(1, 9):
        rows_k = expected_rows_with_k_lines(
            footprint_lines, total_rows, lines_per_row, k
        )
        if rows_k < 1e-12:
            continue
        lam = accesses * k / footprint_lines
        expectation += rows_k * _poisson_tail(lam, hot_threshold)
    return expectation


def _poisson_tail(lam: float, threshold: int) -> float:
    """P(Poisson(lam) >= threshold)."""
    if lam <= 0:
        return 0.0
    # Sum the complement; threshold is small (64) so this is exact enough.
    log_term = -lam
    cumulative = math.exp(log_term)
    total = cumulative
    for i in range(1, threshold):
        log_term += math.log(lam / i)
        total += math.exp(log_term)
    return max(0.0, 1.0 - total)


@dataclass(frozen=True)
class IllustrativeResult:
    """Hot-row counts for Figure 4(c)."""

    baseline: Dict[str, float]
    encrypted: Dict[str, float]


def illustrative_model(
    *,
    footprint_lines: int = 65536,
    total_rows: int = 1 << 20,
    lines_per_row: int = 64,
    accesses: int = 1_000_000,
    hot_threshold: int = 64,
) -> IllustrativeResult:
    """The full Figure-4(c) prediction from first principles.

    Baseline (sequential mapping): stream keeps the row open across its
    64 sequential lines (≈16 activations per row -- never hot); stride
    and random activate on every access, spreading 1 M activations over
    the 1 K footprint rows (1000 per row -- all hot).
    """
    footprint_rows = footprint_lines // lines_per_row
    # Stream: one activation per row per pass (the row stays open for
    # its 64 sequential lines), so acts/row = number of passes.
    stream_acts_per_row = accesses / footprint_lines
    # Stride/random: every access activates; 1 M activations spread over
    # the 1 K footprint rows.
    scattered_acts_per_row = accesses / footprint_rows
    baseline = {
        "stream": float(footprint_rows) if stream_acts_per_row >= hot_threshold else 0.0,
        "stride": float(footprint_rows) if scattered_acts_per_row >= hot_threshold else 0.0,
        "random": float(footprint_rows) if scattered_acts_per_row >= hot_threshold else 0.0,
    }
    # Encrypted: stream/stride touch each line accesses/footprint times;
    # a row with k lines gets k * accesses/footprint activations.
    per_line = accesses / footprint_lines
    deterministic_hot = 0.0
    for k in range(1, 9):
        if per_line * k >= hot_threshold:
            deterministic_hot += expected_rows_with_k_lines(
                footprint_lines, total_rows, lines_per_row, k
            )
    encrypted = {
        "stream": deterministic_hot,
        "stride": deterministic_hot,
        "random": encrypted_hot_row_expectation(
            footprint_lines, total_rows, lines_per_row, accesses, hot_threshold
        ),
    }
    return IllustrativeResult(baseline=baseline, encrypted=encrypted)


__all__ = [
    "expected_rows_with_k_lines",
    "encrypted_hot_row_expectation",
    "illustrative_model",
    "IllustrativeResult",
]
