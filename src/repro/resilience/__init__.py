"""Resilient campaign execution: isolation, retries, budgets, journals.

Long sweep campaigns are the product surface of this reproduction; this
package keeps them alive.  :class:`~repro.resilience.executor.ResilientExecutor`
runs each cell in isolation with retry/backoff and budget enforcement,
:class:`~repro.resilience.journal.CheckpointJournal` persists completed
cells so interrupted sweeps resume where they stopped, and
:mod:`~repro.resilience.faults` injects deterministic faults so tests can
prove every failure mode is detected rather than silently absorbed.
"""

from repro.resilience.executor import (
    CellBudget,
    CellOutcome,
    ResilientExecutor,
    RetryPolicy,
)
from repro.resilience.journal import CheckpointJournal

__all__ = [
    "CellBudget",
    "CellOutcome",
    "CheckpointJournal",
    "ResilientExecutor",
    "RetryPolicy",
]
