"""JSONL checkpoint journal for resumable campaigns.

One line per completed cell: ``{"key": <canonical cell key>,
"record": <tidy record>}`` plus optional telemetry fields --
``duration_s`` (monotonic cell wall time) and ``worker_id`` (the
process that ran the cell) -- so a resumed campaign can report where
the time of its earlier segments went (:meth:`CheckpointJournal.timings`).
The campaign *service* additionally stamps its completion records with
lease metadata -- ``attempt`` (how many dispatches the cell took),
``epoch`` (the lease generation that committed it), and ``lease_id`` --
making the journal the exactly-once commit log for leased scheduling.
Journals written before any of those fields existed load unchanged:
the fields are simply absent from their entries.

Appends are atomic (full rewrite to a sibling temp file +
``os.replace``), so a crash mid-write can at worst lose the in-flight
cell, never corrupt earlier ones; a truncated final line left by a
hard kill (or a filesystem without atomic rename) is skipped on load
with a warning and a ``resilience.journal.truncated`` metric rather
than poisoning the resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import JournalError
from repro.obs.runtime import METRICS, get_logger

log = get_logger("journal")


class CheckpointJournal:
    """Append-only journal of completed campaign cells.

    Args:
        path: The ``.jsonl`` file backing this journal (created on the
            first append; parent directories are created as needed).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._records: Optional[List[dict]] = None
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    def load(self) -> List[dict]:
        """Read all journal entries (cached; [] when the file is absent).

        Malformed lines -- typically one truncated trailing line from a
        crash mid-append -- are skipped with a warning, counted in
        :attr:`skipped_lines`, and recorded in the
        ``resilience.journal.truncated`` metric; the cells they named
        simply re-run on resume.  A journal entry that parses but lacks
        the ``key`` field raises :class:`JournalError` (that is
        corruption, not an interrupted write).
        """
        if self._records is not None:
            return self._records
        records: List[dict] = []
        self.skipped_lines = 0
        if self.path.exists():
            for lineno, line in enumerate(self.path.read_text().splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    METRICS.inc("resilience.journal.truncated")
                    log.warning(
                        "journal.truncated_line",
                        message=f"[journal {self.path}:{lineno}: skipping torn"
                        " record (crash mid-write?); its cell will re-run]",
                        path=str(self.path),
                        lineno=lineno,
                    )
                    continue
                if not isinstance(entry, dict) or "key" not in entry:
                    raise JournalError(
                        "journal entry has no 'key' field", path=str(self.path)
                    )
                records.append(entry)
        self._records = records
        return records

    def completed(self) -> Dict[str, dict]:
        """Completed cells as ``{key: record}`` (last write wins)."""
        return {entry["key"]: entry.get("record", {}) for entry in self.load()}

    def completed_keys(self) -> "set[str]":
        """The set of cell keys already journaled."""
        return set(self.completed())

    def __len__(self) -> int:
        return len(self.load())

    def timings(self) -> Dict[str, dict]:
        """Per-cell timing metadata: ``{key: {duration_s, worker_id}}``.

        Entries from journals written before these fields existed are
        skipped (not errors) -- old journals stay fully resumable, they
        just cannot report where their time went.
        """
        out: Dict[str, dict] = {}
        for entry in self.load():
            if "duration_s" not in entry:
                continue
            out[entry["key"]] = {
                "duration_s": entry["duration_s"],
                "worker_id": entry.get("worker_id"),
            }
        return out

    def leases(self) -> Dict[str, dict]:
        """Per-cell lease metadata: ``{key: {attempt, epoch, lease_id}}``.

        Only entries committed by the campaign service carry these
        fields; plain serial/pool journal entries are skipped, exactly
        like pre-telemetry entries in :meth:`timings`.
        """
        out: Dict[str, dict] = {}
        for entry in self.load():
            if "epoch" not in entry and "lease_id" not in entry:
                continue
            out[entry["key"]] = {
                "attempt": entry.get("attempt"),
                "epoch": entry.get("epoch"),
                "lease_id": entry.get("lease_id"),
            }
        return out

    # ------------------------------------------------------------------
    def append(
        self,
        key: str,
        record: dict,
        *,
        duration_s: Optional[float] = None,
        worker_id: Optional[str] = None,
        attempt: Optional[int] = None,
        epoch: Optional[int] = None,
        lease_id: Optional[str] = None,
    ) -> None:
        """Durably append one completed cell (atomic tmp + rename).

        Args:
            key: Canonical cell key.
            record: The cell's tidy record (must be JSON-serializable).
            duration_s: Optional monotonic wall time the cell took.
            worker_id: Optional identifier of the executing process.
            attempt: Optional dispatch count (leased scheduling).
            epoch: Optional lease generation that committed the cell.
            lease_id: Optional identifier of the committing lease.
        """
        entries = self.load()
        payload: dict = {"key": key, "record": record}
        if duration_s is not None:
            payload["duration_s"] = round(float(duration_s), 6)
        if worker_id is not None:
            payload["worker_id"] = worker_id
        if attempt is not None:
            payload["attempt"] = int(attempt)
        if epoch is not None:
            payload["epoch"] = int(epoch)
        if lease_id is not None:
            payload["lease_id"] = lease_id
        try:
            line = json.dumps(payload, default=str)
        except (TypeError, ValueError) as error:
            raise JournalError(
                f"record for '{key}' is not JSON-serializable", key=key
            ) from error
        entries.append(json.loads(line))
        self._write_all(entries)

    def reset(self) -> None:
        """Start the journal over (used when not resuming)."""
        self._records = []
        if self.path.exists():
            self.path.unlink()

    def _write_all(self, entries: List[dict]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as handle:
                for entry in entries:
                    handle.write(json.dumps(entry, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as error:
            raise JournalError(
                f"cannot write journal: {error}", path=str(self.path)
            ) from error
        finally:
            if tmp.exists():
                tmp.unlink()


__all__ = ["CheckpointJournal"]
