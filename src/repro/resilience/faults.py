"""Deterministic fault injection for the mitigation pipeline.

Hardware Rowhammer test harnesses prove their detection logic by
injecting faults and watching the system fail *loudly*.  This module is
the software analogue: seeded, reproducible corruptions of the three
trust boundaries a campaign crosses --

* **trace bundles** on disk (:func:`corrupt_trace_file` truncates or
  bit-flips an ``.npz`` so :func:`~repro.workloads.trace_io.load_trace`
  must raise :class:`~repro.errors.TraceFormatError`);
* **remap-engine key state** (:func:`corrupt_remap_keys` flips a key
  bit, :func:`verify_key_state` catches it against a boot-time
  :func:`snapshot_key_state` digest -- modelling key-register parity);
* **the simulator itself** (:class:`FaultySimulator` wraps a real
  simulator and, per a seeded :class:`FaultPlan`, raises typed errors,
  fails transiently, drops mitigation events, or crashes the process
  mid-sweep).

:func:`check_result_invariants` is the matching detector: impossible
statistics raise :class:`~repro.errors.FaultInjectedError`; merely
suspicious ones (e.g. a mitigation scheme that never fired although a
row crossed the threshold -- the dropped-events fault) return warning
flags, so the campaign keeps the cell but marks it degraded.  Either
way, no injected fault yields a silent wrong result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import FaultInjectedError, MappingConfigError, TransientError
from repro.mapping.base import AddressMapping
from repro.perf.simulator import RunResult, Simulator
from repro.utils.prng import SplitMix64
from repro.workloads.trace import Trace


class SimulatedCrash(BaseException):
    """A hard mid-sweep crash (process death, OOM kill).

    Derives from ``BaseException`` on purpose: the resilience layer
    absorbs only ``Exception``, so a simulated crash tears the campaign
    down exactly like a real one -- which is what the checkpoint/resume
    tests need to exercise.
    """


# ---------------------------------------------------------------------------
# Trace-bundle corruption
# ---------------------------------------------------------------------------
def corrupt_trace_file(
    path: Union[str, Path],
    *,
    mode: str = "truncate",
    seed: int = 0,
    out: Optional[Union[str, Path]] = None,
) -> Path:
    """Write a deterministically-corrupted copy of a trace bundle.

    Args:
        path: An existing ``.npz`` bundle.
        mode: ``truncate`` (drop the final quarter of the file) or
            ``bitflip`` (flip one seed-chosen bit).
        seed: Selects the flipped bit for ``bitflip``.
        out: Destination (defaults to ``<name>.corrupt.npz`` next to the
            original; the original is never modified).

    Returns:
        The corrupted file's path.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if mode == "truncate":
        data = data[: max(1, len(data) - max(1, len(data) // 4))]
    elif mode == "bitflip":
        rng = SplitMix64(seed)
        offset = rng.next_below(len(data))
        data[offset] ^= 1 << rng.next_below(8)
    else:
        raise ValueError(f"unknown corruption mode '{mode}' (truncate, bitflip)")
    target = Path(out) if out is not None else path.with_suffix(".corrupt.npz")
    target.write_bytes(bytes(data))
    return target


# ---------------------------------------------------------------------------
# Remap-engine key corruption + integrity checking
# ---------------------------------------------------------------------------
def _key_material(mapping: AddressMapping) -> bytes:
    """Serialize a mapping's secret state (keys + sweep pointers)."""
    engines = getattr(mapping, "engines", None)
    if engines:
        digest = hashlib.sha256()
        for engine in engines:
            digest.update(
                f"{engine.keys.curr_key:x}/{engine.keys.next_key:x}/{engine.ptr}|".encode()
            )
        return digest.digest()
    cipher = getattr(mapping, "cipher", None)
    if cipher is not None:
        return hashlib.sha256(f"{cipher.key:x}".encode()).digest()
    raise MappingConfigError(
        f"mapping '{mapping.name}' has no key state to checksum",
        mapping=mapping.name,
    )


def snapshot_key_state(mapping: AddressMapping) -> str:
    """Boot-time digest of the mapping's key registers (hex)."""
    return _key_material(mapping).hex()


def corrupt_remap_keys(mapping: AddressMapping, *, seed: int = 0) -> str:
    """Flip one bit in one remap engine's current key (in place).

    Models a bit-flip in the controller's key SRAM.  Only mappings with
    xor remap engines (Rubix-D, Keyed-Xor) carry mutable key registers;
    others raise :class:`~repro.errors.MappingConfigError`.

    Returns:
        A description of the flip (engine index and bit), for logs.
    """
    engines = getattr(mapping, "engines", None)
    if not engines:
        raise MappingConfigError(
            f"mapping '{mapping.name}' has no remap engines to corrupt",
            mapping=mapping.name,
        )
    rng = SplitMix64(seed)
    index = rng.next_below(len(engines))
    engine = engines[index]
    bit = rng.next_below(engine.nbits)
    engine.keys.curr_key ^= 1 << bit
    return f"engine[{index}].curr_key bit {bit}"


def verify_key_state(mapping: AddressMapping, snapshot: str) -> None:
    """Check key registers against a boot-time snapshot.

    Raises:
        FaultInjectedError: The key material changed outside a legal
            epoch advance (snapshot mismatch).
    """
    current = snapshot_key_state(mapping)
    if current != snapshot:
        raise FaultInjectedError(
            "remap key state diverged from its boot-time snapshot",
            mapping=mapping.name,
            expected=snapshot[:16],
            actual=current[:16],
        )


# ---------------------------------------------------------------------------
# Result integrity checking
# ---------------------------------------------------------------------------
def check_result_invariants(result: RunResult) -> List[str]:
    """Sanity-check a run result; impossible values raise, suspicious flag.

    Returns:
        Warning flags for results that are self-consistent but
        suspicious (kept, marked degraded).

    Raises:
        FaultInjectedError: The result is physically impossible
            (negative counters, NaN, hit rate outside [0, 1], ...).
    """
    checks: List[Tuple[bool, str]] = [
        (result.accesses >= 0, "negative access count"),
        (result.activations >= 0, "negative activation count"),
        (result.activations <= result.accesses, "more activations than accesses"),
        (0.0 <= result.hit_rate <= 1.0, "hit rate outside [0, 1]"),
        (result.mitigations >= 0, "negative mitigation count"),
        (result.exec_time_s > 0, "non-positive execution time"),
        (
            result.normalized_performance is None
            or (
                math.isfinite(result.normalized_performance)
                and result.normalized_performance > 0
            ),
            "non-positive or non-finite normalized performance",
        ),
        (result.hot_rows_512 <= result.hot_rows_64, "ACT-512 rows exceed ACT-64 rows"),
    ]
    for ok, what in checks:
        if not ok:
            raise FaultInjectedError(
                f"impossible run result: {what}",
                trace=result.trace_name,
                mapping=result.mapping_name,
                scheme=result.scheme,
            )
    flags: List[str] = []
    if (
        result.scheme != "none"
        and result.mitigations == 0
        and result.max_row_activations >= result.t_rh
    ):
        # A row crossed the Rowhammer threshold yet the mitigation never
        # fired -- the signature of dropped mitigation events.
        flags.append("suspect-mitigation-count")
    return flags


# ---------------------------------------------------------------------------
# Simulator-level fault plans
# ---------------------------------------------------------------------------
@dataclass
class FaultPlan:
    """A seeded, declarative set of faults to inject into a simulator.

    Cells are matched by substring against the cell id
    ``"<trace>|<mapping>|<scheme>|<t_rh>"`` (e.g. ``"namd|Rubix"``).

    Attributes:
        seed: Recorded for provenance (plans are already deterministic).
        fail_cells: Cells that raise :class:`FaultInjectedError`.
        transient_cells: ``{pattern: n}`` -- the first ``n`` attempts of
            matching cells raise :class:`TransientError`, then succeed.
        drop_mitigation_cells: Cells whose result has its mitigation
            events dropped (count zeroed) -- a *silent* corruption that
            :func:`check_result_invariants` must catch.
        crash_after_cells: Raise :class:`SimulatedCrash` when this many
            cells have completed (None = never).
    """

    seed: int = 0
    fail_cells: Tuple[str, ...] = ()
    transient_cells: Dict[str, int] = field(default_factory=dict)
    drop_mitigation_cells: Tuple[str, ...] = ()
    crash_after_cells: Optional[int] = None


class FaultySimulator:
    """A :class:`~repro.perf.simulator.Simulator` wrapper that injects faults.

    Drop-in for the campaign's ``simulator`` argument; everything not
    named by the plan passes straight through to the wrapped simulator.
    """

    def __init__(self, simulator: Simulator, plan: FaultPlan) -> None:
        self.simulator = simulator
        self.plan = plan
        self.config = simulator.config
        self.cells_completed = 0
        self._attempts: Dict[str, int] = {}

    @staticmethod
    def _cell_id(trace: Trace, mapping: AddressMapping, scheme: str, t_rh: int) -> str:
        return f"{trace.name}|{mapping.name}|{scheme}|{t_rh}"

    def _matches(self, patterns, cell_id: str) -> bool:
        return any(pattern in cell_id for pattern in patterns)

    def run(self, trace: Trace, mapping: AddressMapping, *, scheme: str = "none", t_rh: int = 128, **kwargs) -> RunResult:
        """Injecting counterpart of :meth:`Simulator.run`."""
        if (
            self.plan.crash_after_cells is not None
            and self.cells_completed >= self.plan.crash_after_cells
        ):
            raise SimulatedCrash(
                f"simulated crash after {self.cells_completed} cells"
            )
        cell_id = self._cell_id(trace, mapping, scheme, t_rh)
        if self._matches(self.plan.fail_cells, cell_id):
            raise FaultInjectedError(
                "injected hard fault", cell=cell_id, seed=self.plan.seed
            )
        for pattern, failures in self.plan.transient_cells.items():
            if pattern in cell_id:
                seen = self._attempts.get(cell_id, 0)
                self._attempts[cell_id] = seen + 1
                if seen < failures:
                    raise TransientError(
                        "injected transient fault",
                        cell=cell_id,
                        attempt=seen + 1,
                        remaining=failures - seen - 1,
                    )
        result = self.simulator.run(trace, mapping, scheme=scheme, t_rh=t_rh, **kwargs)
        if self._matches(self.plan.drop_mitigation_cells, cell_id):
            result = dataclasses.replace(result, mitigations=0)
        self.cells_completed += 1
        return result

    def __getattr__(self, name: str):
        # Delegate window_stats/power/etc. to the wrapped simulator.
        return getattr(self.simulator, name)


__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "FaultySimulator",
    "corrupt_trace_file",
    "snapshot_key_state",
    "corrupt_remap_keys",
    "verify_key_state",
    "check_result_invariants",
]
