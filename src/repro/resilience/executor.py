"""Per-cell isolation: retries with deterministic backoff, budgets.

A sweep campaign is only as robust as its weakest cell.  The
:class:`ResilientExecutor` runs one cell's work function inside a fault
boundary:

* transient failures retry with exponential backoff whose jitter is
  *deterministic* (derived from the cell key and attempt number), so a
  re-run of the same campaign sleeps the same schedule -- reproducibility
  extends to the failure path;
* budgets bound each cell: a wall-clock deadline (checked against the
  measured run time) and an activation budget (checked against the
  result's ``activations``);
* a budget overrun can degrade gracefully: when the caller supplies a
  ``degrade`` fallback (e.g. re-run at half scale), the cell survives
  with a flagged record instead of an error;
* everything else becomes a tidy :class:`CellOutcome` error record --
  the sweep continues.

Only :class:`Exception` is absorbed; ``KeyboardInterrupt`` and other
``BaseException`` (including the fault harness's simulated crashes)
propagate so interruption semantics stay intact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.errors import (
    BudgetExceededError,
    CellExecutionError,
    CellTimeoutError,
    TransientError,
    error_record,
    is_infrastructure_error,
)
from repro.obs.runtime import METRICS
from repro.utils.prng import derive_key


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for transient cell failures.

    Attributes:
        max_attempts: Total tries per cell (1 = no retries).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        jitter: Max fractional jitter added to each delay ([0, 1]).
        seed: Seed the deterministic jitter derives from.
        retry_on: Exception types considered transient.
        max_infra_attempts: Separate try budget for *infrastructure*
            failures (worker death, broken pipes, OS errors -- see
            :func:`repro.errors.is_infrastructure_error`).  A cell whose
            worker was SIGKILLed twice has learned nothing about its
            simulation, so those retries must not consume
            ``max_attempts``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 2024
    retry_on: Tuple[Type[Exception], ...] = (TransientError,)
    max_infra_attempts: int = 5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.max_infra_attempts < 1:
            raise ValueError(
                f"max_infra_attempts must be >= 1, got {self.max_infra_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``key`` after failed attempt ``attempt``.

        Deterministic: the jitter is a pure function of (seed, key,
        attempt), so identical re-runs produce identical schedules while
        distinct cells still decorrelate.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        unit = derive_key(self.seed, f"{key}#attempt{attempt}", 53) / float(1 << 53)
        return base * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class CellBudget:
    """Per-cell resource ceilings (None disables a dimension)."""

    wall_clock_s: Optional[float] = None
    max_activations: Optional[int] = None

    def check(self, elapsed_s: float, value: Any) -> None:
        """Raise a typed error if the finished cell overran a ceiling."""
        if self.wall_clock_s is not None and elapsed_s > self.wall_clock_s:
            raise CellTimeoutError(
                "cell exceeded its wall-clock budget",
                elapsed_s=round(elapsed_s, 3),
                wall_clock_s=self.wall_clock_s,
            )
        activations = getattr(value, "activations", None)
        if (
            self.max_activations is not None
            and activations is not None
            and activations > self.max_activations
        ):
            raise BudgetExceededError(
                "cell exceeded its activation budget",
                activations=int(activations),
                max_activations=self.max_activations,
            )


@dataclass
class CellOutcome:
    """What happened to one isolated cell."""

    key: str
    status: str  # "ok" | "degraded" | "error"
    value: Any = None
    attempts: int = 1
    elapsed_s: float = 0.0
    flags: List[str] = field(default_factory=list)
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a usable value (even degraded)."""
        return self.status in ("ok", "degraded")

    def error_fields(self) -> Dict[str, Any]:
        """Error description for tidy records (empty when ok)."""
        return error_record(self.error) if self.error is not None else {}


class ResilientExecutor:
    """Runs cell work functions inside a retry/budget fault boundary.

    Args:
        retry: Retry schedule (defaults to 3 attempts, deterministic
            exponential backoff).
        budget: Per-cell ceilings (unlimited by default).
        fail_fast: Re-raise cell failures as :class:`CellExecutionError`
            instead of returning error outcomes (debugging aid).
        sleep: Injectable sleep (tests capture the backoff schedule).
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        budget: Optional[CellBudget] = None,
        *,
        fail_fast: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.retry = retry or RetryPolicy()
        self.budget = budget or CellBudget()
        self.fail_fast = fail_fast
        self._sleep = sleep
        self._clock = clock
        self.cells_executed = 0
        self.total_attempts = 0

    # ------------------------------------------------------------------
    def execute(
        self,
        key: str,
        fn: Callable[[], Any],
        *,
        degrade: Optional[Callable[[], Any]] = None,
        validate: Optional[Callable[[Any], Optional[Iterable[str]]]] = None,
    ) -> CellOutcome:
        """Run one cell; never raises for ordinary failures.

        Args:
            key: Canonical cell key (names the cell in logs/journals and
                seeds the deterministic backoff jitter).
            fn: The cell's work function.
            degrade: Optional fallback run when the budget is exceeded
                (e.g. the same cell at reduced scale); its result is
                kept with a ``degraded`` status and explanatory flags.
            validate: Optional integrity check over the result; it may
                return warning flags (-> ``degraded`` status) or raise a
                typed error for fatally-inconsistent results.

        Returns:
            A :class:`CellOutcome`; ``status`` is ``ok``, ``degraded``
            (budget fallback or flagged result), or ``error``.
        """
        self.cells_executed += 1
        attempt = 0
        sim_failures = 0
        infra_failures = 0
        started = self._clock()
        while True:
            attempt += 1
            self.total_attempts += 1
            attempt_started = self._clock()
            try:
                value = fn()
                elapsed = self._clock() - attempt_started
                self.budget.check(elapsed, value)
            except self.retry.retry_on as error:
                sim_failures += 1
                if sim_failures >= self.retry.max_attempts:
                    return self._failure(key, error, attempt, started)
                delay = self.retry.delay_s(key, sim_failures)
                METRICS.inc("resilience.retries")
                METRICS.inc("resilience.backoff_seconds", delay)
                self._sleep(delay)
                continue
            except BudgetExceededError as error:
                if degrade is None:
                    return self._failure(key, error, attempt, started)
                return self._degrade(key, degrade, error, attempt, started)
            except Exception as error:  # isolation boundary: keep sweeping
                if (
                    is_infrastructure_error(error)
                    and infra_failures + 1 < self.retry.max_infra_attempts
                ):
                    # Worker/OS failure, not a simulation failure: retry
                    # under the separate infrastructure budget so flaky
                    # substrate never eats a cell's simulation retries.
                    infra_failures += 1
                    delay = self.retry.delay_s(f"{key}#infra", infra_failures)
                    METRICS.inc("resilience.infra_retries")
                    METRICS.inc("resilience.backoff_seconds", delay)
                    self._sleep(delay)
                    continue
                return self._failure(key, error, attempt, started)

            if validate is not None:
                try:
                    flags = list(validate(value) or [])
                except Exception as error:
                    return self._failure(key, error, attempt, started)
            else:
                flags = []
            status = "degraded" if flags else "ok"
            METRICS.inc("resilience.cells", status=status)
            return CellOutcome(
                key=key,
                status=status,
                value=value,
                attempts=attempt,
                elapsed_s=self._clock() - started,
                flags=flags,
            )

    # ------------------------------------------------------------------
    def _degrade(
        self,
        key: str,
        degrade: Callable[[], Any],
        cause: BudgetExceededError,
        attempts: int,
        started: float,
    ) -> CellOutcome:
        try:
            value = degrade()
        except Exception as error:
            return self._failure(key, error, attempts, started)
        METRICS.inc("resilience.cells", status="degraded")
        METRICS.inc("resilience.faults", **{"class": type(cause).__name__})
        return CellOutcome(
            key=key,
            status="degraded",
            value=value,
            attempts=attempts + 1,
            elapsed_s=self._clock() - started,
            flags=["budget-exceeded", type(cause).__name__, "degraded-fallback"],
            error=cause,
        )

    def _failure(
        self, key: str, error: BaseException, attempts: int, started: float
    ) -> CellOutcome:
        METRICS.inc("resilience.cells", status="error")
        METRICS.inc("resilience.faults", **{"class": type(error).__name__})
        if self.fail_fast:
            raise CellExecutionError(
                f"cell '{key}' failed after {attempts} attempt(s)",
                key=key,
                attempts=attempts,
            ) from error
        return CellOutcome(
            key=key,
            status="error",
            attempts=attempts,
            elapsed_s=self._clock() - started,
            error=error,
        )


__all__ = ["RetryPolicy", "CellBudget", "CellOutcome", "ResilientExecutor"]
