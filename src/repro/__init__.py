"""repro: reproduction of *Rubix: Reducing the Overhead of Secure
Rowhammer Mitigations via Randomized Line-to-Row Mapping* (ASPLOS 2024).

Quickstart::

    from repro import (
        baseline_config, CoffeeLakeMapping, RubixSMapping, Simulator, spec_trace,
    )

    config = baseline_config()
    sim = Simulator(config)
    trace = spec_trace("gcc", scale=0.1)
    base = sim.run(trace, CoffeeLakeMapping(config), scheme="aqua", t_rh=128)
    rubix = sim.run(trace, RubixSMapping(config, gang_size=4), scheme="aqua", t_rh=128)
    print(base.slowdown_pct, "->", rubix.slowdown_pct)

Package map (see DESIGN.md for the full inventory):

* ``repro.dram``        -- DRAM geometry/timing, banks, power, the fast analyzer
* ``repro.mapping``     -- baseline address mappings (Coffee Lake, Skylake, MOP, ...)
* ``repro.crypto``      -- the programmable-width cipher (K-Cipher stand-in)
* ``repro.core``        -- Rubix-S, Rubix-D, keyed-xor (the paper's contribution)
* ``repro.mitigations`` -- AQUA, SRS, Blockhammer, TRR, trackers
* ``repro.workloads``   -- calibrated SPEC-like generators, mixes, STREAM, attacks
* ``repro.perf``        -- performance model and simulation driver
* ``repro.analysis``    -- hot-row characterization, binomial model, security checks
* ``repro.experiments`` -- one runner per table/figure of the paper
* ``repro.errors``      -- the structured exception taxonomy
* ``repro.resilience``  -- campaign fault boundary, checkpoint journals, fault injection
"""

from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_keyed_xor import KeyedXorMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import (
    Coordinate,
    DRAMConfig,
    DRAMTiming,
    baseline_config,
    multichannel_config,
)
from repro.errors import ReproError
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping
from repro.mapping.stride import LargeStrideMapping
from repro.mitigations.aqua import AQUA
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.srs import SRS
from repro.mitigations.trr import TRR
from repro.perf.simulator import RunResult, Simulator
from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel
from repro.workloads.mixes import mix_trace
from repro.workloads.spec import spec_names, spec_trace
from repro.workloads.stream_suite import stream_suite_trace
from repro.workloads.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "DRAMConfig",
    "DRAMTiming",
    "Coordinate",
    "baseline_config",
    "multichannel_config",
    "CoffeeLakeMapping",
    "SkylakeMapping",
    "LinearMapping",
    "MOPMapping",
    "LargeStrideMapping",
    "RubixSMapping",
    "RubixDMapping",
    "KeyedXorMapping",
    "AQUA",
    "SRS",
    "Blockhammer",
    "TRR",
    "Simulator",
    "RunResult",
    "Trace",
    "spec_trace",
    "spec_names",
    "mix_trace",
    "stream_suite_trace",
    "stream_kernel",
    "stride_kernel",
    "random_kernel",
    "ReproError",
    "__version__",
]
