"""TRR-style victim refresh: the deployed but *insecure* baseline.

When an aggressor reaches the tracker threshold, the two neighbouring
(victim) rows are refreshed.  This is cheap (<100 ns) but preserves the
aggressor-victim spatial link: Half-Double uses the victim refreshes
themselves as distance-1 hammers to flip bits at distance 2.  TRR is
included for Table 5 and for the security analysis that demonstrates the
Half-Double break (see :mod:`repro.analysis.security`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.base import Mitigation
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.mitigations.trackers import PerRowTracker, Tracker


class TRR(Mitigation):
    """Victim refresh: refresh rows at distance 1 from a hot aggressor.

    Args:
        config: DRAM geometry/timing.
        t_rh: Rowhammer threshold; victims refresh at ``t_rh // 2``.
        tracker: Activation tracker (an idealized per-row tracker by
            default -- deployed TRR trackers are *weaker*, so results
            with this model are an upper bound on TRR's protection).
        blast_radius: How far refresh-induced disturbance reaches; the
            refresh of row v disturbs v +/- 1, which is what Half-Double
            exploits.
    """

    scheme = "trr"

    def __init__(
        self,
        config: DRAMConfig,
        t_rh: int,
        *,
        tracker: "Tracker | None" = None,
        costs: "MitigationCostModel | None" = None,
        blast_radius: int = 1,
    ) -> None:
        threshold = tracker_threshold("trr", t_rh)
        super().__init__(config, tracker or PerRowTracker(threshold), costs)
        self.t_rh = t_rh
        self.blast_radius = blast_radius
        #: Disturbance each row has accumulated from refreshes of its
        #: neighbours (the Half-Double side channel).
        self.refresh_disturbance: Dict[int, int] = {}

    def _neighbours(self, row_id: int) -> List[int]:
        """Rows at distance <= blast_radius within the same bank."""
        bank_base = (row_id // self.config.rows_per_bank) * self.config.rows_per_bank
        bank_top = bank_base + self.config.rows_per_bank
        out = []
        for distance in range(1, self.blast_radius + 1):
            for candidate in (row_id - distance, row_id + distance):
                if bank_base <= candidate < bank_top:
                    out.append(candidate)
        return out

    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        victims = self._neighbours(row_id)
        self.stats.bump("victim_refreshes", len(victims))
        # Each victim refresh is itself an activation-like disturbance of
        # *its* neighbours -- the mechanism Half-Double weaponizes.
        for victim in victims:
            for disturbed in self._neighbours(victim):
                if disturbed != row_id:
                    self.refresh_disturbance[disturbed] = (
                        self.refresh_disturbance.get(disturbed, 0) + 1
                    )
        return MitigationAction(stall_s=self.costs.victim_refresh_s, blocks_channel=False)

    def on_refresh_window(self) -> None:
        super().on_refresh_window()
        self.refresh_disturbance.clear()

    @property
    def victim_refreshes(self) -> int:
        return self.stats.extra.get("victim_refreshes", 0)

    def max_disturbance(self) -> int:
        """Peak refresh-induced disturbance of any row this window."""
        return max(self.refresh_disturbance.values(), default=0)


__all__ = ["TRR"]
