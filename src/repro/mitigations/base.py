"""Common mitigation machinery.

A :class:`Mitigation` plugs into the detailed memory system through the
``MitigationHook`` protocol: it observes every activation, may redirect
coordinates through an indirection table (row migrations), and returns
the stall its mitigative action costs.  Aggregate statistics feed the
performance model and the experiment reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.costs import MitigationCostModel
from repro.mitigations.trackers import Tracker


@dataclass
class MitigationStats:
    """Counters accumulated by a mitigation over a run."""

    activations_observed: int = 0
    mitigations_triggered: int = 0
    stall_s: float = 0.0
    window_resets: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a scheme-specific counter."""
        self.extra[key] = self.extra.get(key, 0) + amount


class Mitigation(abc.ABC):
    """Base class for Rowhammer mitigations.

    Args:
        config: DRAM geometry/timing.
        tracker: Activation tracker deciding when to act.
        costs: Latency model for mitigative actions.
    """

    #: Short lowercase scheme name ("aqua", "srs", ...).
    scheme: str = "base"

    def __init__(
        self,
        config: DRAMConfig,
        tracker: Tracker,
        costs: "MitigationCostModel | None" = None,
    ) -> None:
        self.config = config
        self.tracker = tracker
        self.costs = costs or MitigationCostModel(config)
        self.stats = MitigationStats()

    # --- MitigationHook protocol -----------------------------------------
    def redirect(self, coord: Coordinate) -> Coordinate:
        """Default: no indirection."""
        return coord

    def on_activation(self, coord: Coordinate, now: float) -> MitigationAction:
        self.stats.activations_observed += 1
        row_id = self.config.global_row(coord)
        if not self.tracker.observe(row_id):
            return MitigationAction()
        self.stats.mitigations_triggered += 1
        action = self._mitigate(row_id, coord, now)
        self.stats.stall_s += action.stall_s
        return action

    def on_refresh_window(self) -> None:
        self.tracker.reset()
        self.stats.window_resets += 1

    # --- scheme-specific --------------------------------------------------
    @abc.abstractmethod
    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        """Perform the mitigative action for an over-threshold row."""

    @property
    def name(self) -> str:
        return type(self).__name__


__all__ = ["Mitigation", "MitigationStats"]
