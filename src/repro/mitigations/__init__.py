"""Rowhammer mitigations evaluated by the paper.

Aggressor-focused *secure* mitigations (resilient to complex patterns
like Half-Double):

* :class:`repro.mitigations.aqua.AQUA` -- quarantine-region row migration,
* :class:`repro.mitigations.srs.SRS` -- randomized row swap,
* :class:`repro.mitigations.blockhammer.Blockhammer` -- activation-rate
  control.

Plus the deployed-but-insecure baseline:

* :class:`repro.mitigations.trr.TRR` -- victim refresh (broken by
  Half-Double; included for Table 5 and the security analysis).
"""

from repro.mitigations.aqua import AQUA
from repro.mitigations.base import Mitigation, MitigationStats
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.cbf import CountingBloomFilter, DualCBFTracker
from repro.mitigations.costs import MitigationCostModel
from repro.mitigations.indram import InDRAMSamplingTracker, measure_escape_probability
from repro.mitigations.para import PARA, para_probability_for
from repro.mitigations.srs import SRS
from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker, Tracker
from repro.mitigations.trr import TRR

__all__ = [
    "Mitigation",
    "MitigationStats",
    "MitigationCostModel",
    "Tracker",
    "MisraGriesTracker",
    "PerRowTracker",
    "CountingBloomFilter",
    "DualCBFTracker",
    "AQUA",
    "SRS",
    "Blockhammer",
    "TRR",
    "PARA",
    "para_probability_for",
    "InDRAMSamplingTracker",
    "measure_escape_probability",
]
