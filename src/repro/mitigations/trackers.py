"""Activation trackers (Section 3.1).

AQUA and SRS use a Misra-Gries frequent-item tracker; Blockhammer is
modeled with an idealized SRAM tracker holding one counter per row.
Both guarantee that any row reaching the tracker threshold is caught --
the property the security argument rests on.
"""

from __future__ import annotations

import abc
from typing import Dict


class Tracker(abc.ABC):
    """Counts row activations and flags threshold crossings."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold

    @abc.abstractmethod
    def observe(self, row_id: int) -> bool:
        """Record one activation of ``row_id``.

        Returns True when the row's count reaches the threshold; the
        row's counter is reset so the next crossing needs ``threshold``
        further activations (mitigation-and-reset semantics).
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all state (refresh-window boundary)."""


class PerRowTracker(Tracker):
    """Idealized tracker with one counter per row (Blockhammer's SRAM).

    Exact by construction; also the reference implementation the
    Misra-Gries tests compare against.
    """

    def __init__(self, threshold: int) -> None:
        super().__init__(threshold)
        self.counts: Dict[int, int] = {}

    def observe(self, row_id: int) -> bool:
        count = self.counts.get(row_id, 0) + 1
        if count >= self.threshold:
            self.counts[row_id] = 0
            return True
        self.counts[row_id] = count
        return False

    def count_of(self, row_id: int) -> int:
        """Current counter value for a row (0 if untracked)."""
        return self.counts.get(row_id, 0)

    def reset(self) -> None:
        self.counts.clear()


class MisraGriesTracker(Tracker):
    """Misra-Gries frequent-item tracker (AQUA/SRS, Section 3.1).

    Maintains ``num_counters`` (row, count) entries.  On an activation of
    an untracked row when the table is full, every counter decrements
    (the classic Misra-Gries step), guaranteeing any row with more than
    ``stream_length / (num_counters + 1)`` activations is tracked.  With
    counters sized for the threshold and window, no aggressor escapes.

    A decremented-to-zero entry frees its slot.  Counts are *lower*
    bounds, so a Misra-Gries-triggered mitigation may fire slightly late
    relative to the true count but never misses a row that exceeds
    threshold + (stream/(k+1)); the default sizing keeps that slack
    below the tracker threshold, preserving the security guarantee.
    """

    def __init__(self, threshold: int, num_counters: int = 4096) -> None:
        super().__init__(threshold)
        if num_counters < 1:
            raise ValueError(f"num_counters must be >= 1, got {num_counters}")
        self.num_counters = num_counters
        self.counts: Dict[int, int] = {}
        self.decrements = 0

    def observe(self, row_id: int) -> bool:
        count = self.counts.get(row_id)
        if count is not None:
            count += 1
            if count >= self.threshold:
                del self.counts[row_id]
                return True
            self.counts[row_id] = count
            return False
        if len(self.counts) < self.num_counters:
            self.counts[row_id] = 1
            if self.threshold == 1:
                del self.counts[row_id]
                return True
            return False
        # Table full: decrement-all (no counter is assigned).
        self.decrements += 1
        for key in [k for k, v in self.counts.items() if v <= 1]:
            del self.counts[key]
        for key in self.counts:
            self.counts[key] -= 1
        return False

    @property
    def occupancy(self) -> int:
        """Number of live counters."""
        return len(self.counts)

    def reset(self) -> None:
        self.counts.clear()


__all__ = ["Tracker", "PerRowTracker", "MisraGriesTracker"]
