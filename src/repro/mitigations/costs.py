"""Latency costs of mitigative actions (Section 2.6).

These constants drive both the detailed memory system (per-event stalls)
and the analytic performance model (aggregate mitigation time).  They
are derived from DDR4 first principles and sit where the paper places
them: a row migration ties up the channel for a few microseconds, victim
refresh costs under 100 ns, and Blockhammer's rate control delays single
accesses by up to hundreds of microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class MitigationCostModel:
    """Computes the wall-clock cost of each mitigative action.

    Args:
        config: DRAM geometry/timing the costs derive from.
        controller_overhead: Multiplier covering command scheduling gaps,
            bank-turnaround, and bookkeeping around the raw data movement
            (calibrated once; see EXPERIMENTS.md).
    """

    config: DRAMConfig
    controller_overhead: float = 2.0

    def _row_transfer_s(self) -> float:
        """Streaming one full row over the channel (read or write)."""
        t = self.config.timing
        return self.config.lines_per_row * t.t_burst

    @property
    def migration_s(self) -> float:
        """AQUA: move one row to the quarantine region.

        Read the source row and write it to the destination; the channel
        is blocked throughout (Section 2.6: 'ties up the memory bus for
        several microseconds').
        """
        t = self.config.timing
        raw = 2 * self._row_transfer_s() + 2 * t.t_rc
        return raw * self.controller_overhead

    @property
    def swap_s(self) -> float:
        """SRS: swap the aggressor row with a random row (two migrations)."""
        t = self.config.timing
        raw = 4 * self._row_transfer_s() + 3 * t.t_rc
        return raw * self.controller_overhead

    @property
    def victim_refresh_s(self) -> float:
        """TRR: refresh the two neighbour rows (<100 ns, Section 2.6)."""
        return 2 * self.config.timing.t_rc

    def blockhammer_delay_s(self, t_rh: int) -> float:
        """Per-activation delay for a blacklisted row.

        A row is blacklisted at t_rh//2 activations; the remaining
        budget of t_rh - t_rh//2 activations must stretch over the rest
        of the window, so blacklisted ACTs are spaced by
        tREFW / (t_rh - t_rh//2) -- about a millisecond at T_RH = 128,
        which is where Blockhammer's 600% slowdowns come from.
        """
        if t_rh <= 1:
            raise ValueError(f"t_rh must be > 1, got {t_rh}")
        budget = t_rh - tracker_threshold("blockhammer", t_rh)
        return self.config.timing.t_refw / budget

    def rubix_d_swap_s(self, gang_size: int) -> float:
        """Rubix-D remap episode: swap two gangs (3 ACTs + 2x reads/writes)."""
        t = self.config.timing
        return 3 * t.t_rc + 4 * gang_size * t.t_burst


def tracker_threshold(scheme: str, t_rh: int) -> int:
    """Activation threshold at which each scheme takes action.

    AQUA acts at T/2 (tracker-reset headroom), SRS at T/3 (additional
    birthday-paradox headroom), Blockhammer blacklists at T/2; TRR
    refreshes victims at T/2.
    """
    divisors = {"aqua": 2, "srs": 3, "blockhammer": 2, "trr": 2}
    if scheme not in divisors:
        raise ValueError(f"unknown scheme '{scheme}'")
    threshold = t_rh // divisors[scheme]
    if threshold < 1:
        raise ValueError(f"threshold {t_rh} too low for scheme '{scheme}'")
    return threshold


__all__ = ["MitigationCostModel", "tracker_threshold"]
