"""Counting-Bloom-filter activation tracking (Blockhammer's real tracker).

The evaluation of the paper gives Blockhammer an *idealized* one-counter-
per-row SRAM tracker (Section 3.1); the real design [Yaglikci et al.,
HPCA 2021] uses dual counting Bloom filters (CBFs): a row hashes into k
counters, its count estimate is the minimum of them, and two filters
alternate in epochs so stale counts age out.  CBFs never *under*count,
so the security guarantee holds; they can overcount under aliasing,
which throttles innocent rows -- an effect the tracker-ablation
experiment quantifies.
"""

from __future__ import annotations

from typing import List

from repro.mitigations.trackers import Tracker
from repro.utils.bitops import mask
from repro.utils.prng import SplitMix64, derive_key

_M64 = mask(64)


class CountingBloomFilter:
    """A counting Bloom filter over row ids.

    Args:
        num_counters: Counter array size (power of two preferred).
        num_hashes: Hash functions per insertion (k).
        seed: Hash-function seed.
    """

    def __init__(self, num_counters: int, num_hashes: int = 4, seed: int = 0xCBF) -> None:
        if num_counters < 1:
            raise ValueError(f"num_counters must be >= 1, got {num_counters}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self._salts = [derive_key(seed, f"cbf/{i}", 64) for i in range(num_hashes)]
        self.counters = [0] * num_counters

    def _indices(self, row_id: int) -> List[int]:
        out = []
        for salt in self._salts:
            state = (row_id ^ salt) & _M64
            # One SplitMix64 draw per hash: cheap and well mixed.
            mixed = SplitMix64(state).next()
            out.append(mixed % self.num_counters)
        return out

    def insert(self, row_id: int) -> int:
        """Count one activation; returns the row's new count estimate."""
        indices = self._indices(row_id)
        for index in indices:
            self.counters[index] += 1
        return min(self.counters[index] for index in indices)

    def estimate(self, row_id: int) -> int:
        """Count estimate (an upper bound on the true count)."""
        return min(self.counters[index] for index in self._indices(row_id))

    def clear(self) -> None:
        self.counters = [0] * self.num_counters

    @property
    def storage_bytes(self) -> int:
        """SRAM footprint at 2 bytes per counter."""
        return 2 * self.num_counters


class DualCBFTracker(Tracker):
    """Blockhammer-style dual-CBF tracker with epoch rotation.

    Two filters run side by side: both count every activation, and every
    ``epoch_activations`` insertions the older filter clears and the
    roles swap.  The *active* filter (the one at least half-filled with
    history) provides the estimate, so any row's activations over the
    last epoch are always fully covered -- estimates never undercount,
    preserving the blacklisting guarantee.
    """

    def __init__(
        self,
        threshold: int,
        *,
        num_counters: int = 4096,
        num_hashes: int = 4,
        epoch_activations: int = 1 << 16,
        seed: int = 0xB10C,
    ) -> None:
        super().__init__(threshold)
        if epoch_activations < 1:
            raise ValueError(f"epoch_activations must be >= 1, got {epoch_activations}")
        self.filters = [
            CountingBloomFilter(num_counters, num_hashes, seed=derive_key(seed, "a", 64)),
            CountingBloomFilter(num_counters, num_hashes, seed=derive_key(seed, "b", 64)),
        ]
        self.epoch_activations = epoch_activations
        self._inserted = 0
        self._active = 0
        self.rotations = 0

    def observe(self, row_id: int) -> bool:
        for cbf in self.filters:
            cbf.insert(row_id)
        estimate = self.filters[self._active].estimate(row_id)
        self._inserted += 1
        if self._inserted >= self.epoch_activations:
            # Retire the active filter; the standby one carries a full
            # half-epoch of history and takes over.
            self.filters[self._active].clear()
            self._active ^= 1
            self._inserted = 0
            self.rotations += 1
        return estimate >= self.threshold

    def estimate(self, row_id: int) -> int:
        """Current activation estimate for a row."""
        return self.filters[self._active].estimate(row_id)

    def reset(self) -> None:
        for cbf in self.filters:
            cbf.clear()
        self._inserted = 0

    @property
    def storage_bytes(self) -> int:
        return sum(cbf.storage_bytes for cbf in self.filters)


__all__ = ["CountingBloomFilter", "DualCBFTracker"]
