"""AQUA: quarantine-region row migration (Saxena et al., MICRO 2022).

When a row reaches T_RH/2 activations (tracker-reset headroom), its
content migrates to a dedicated quarantine region, breaking the spatial
connection between the aggressor and its victims.  The migration streams
the row over the channel, blocking it for a few microseconds -- cheap
when mitigations are rare, ruinous when low thresholds make thousands of
benign rows cross the threshold (the problem Rubix solves).
"""

from __future__ import annotations

from typing import Dict

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.base import Mitigation
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.mitigations.trackers import MisraGriesTracker, Tracker


class AQUA(Mitigation):
    """Aggressor-row quarantine with round-robin slot allocation.

    Args:
        config: DRAM geometry/timing.
        t_rh: Rowhammer threshold; the tracker acts at ``t_rh // 2``.
        tracker: Activation tracker (defaults to Misra-Gries, §3.1).
        costs: Mitigation latency model.
        quarantine_fraction: Fraction of physical rows reserved for the
            quarantine region (AQUA provisions a few percent).
    """

    scheme = "aqua"

    def __init__(
        self,
        config: DRAMConfig,
        t_rh: int,
        *,
        tracker: "Tracker | None" = None,
        costs: "MitigationCostModel | None" = None,
        quarantine_fraction: float = 1 / 64,
    ) -> None:
        threshold = tracker_threshold("aqua", t_rh)
        super().__init__(config, tracker or MisraGriesTracker(threshold), costs)
        if not 0.0 < quarantine_fraction < 1.0:
            raise ValueError(
                f"quarantine_fraction must be in (0, 1), got {quarantine_fraction}"
            )
        self.t_rh = t_rh
        self.quarantine_rows = max(1, int(config.total_rows * quarantine_fraction))
        self._quarantine_base = config.total_rows - self.quarantine_rows
        self._next_slot = 0
        #: logical (pre-migration) row -> quarantine row currently hosting it
        self._forward: Dict[int, int] = {}
        #: quarantine row -> logical row it hosts
        self._reverse: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def is_quarantine_row(self, row_id: int) -> bool:
        """Whether a global row id lies in the reserved quarantine region."""
        return row_id >= self._quarantine_base

    def redirect(self, coord: Coordinate) -> Coordinate:
        row_id = self.config.global_row(coord)
        target = self._forward.get(row_id)
        if target is None:
            return coord
        return self.config.coordinate_of_row(target, coord.col)

    def _allocate_slot(self) -> int:
        """Next quarantine row, evicting (returning home) the old tenant."""
        slot = self._quarantine_base + self._next_slot
        self._next_slot = (self._next_slot + 1) % self.quarantine_rows
        evicted = self._reverse.pop(slot, None)
        if evicted is not None:
            self._forward.pop(evicted, None)
            self.stats.bump("evictions")
        return slot

    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        # The activation we saw is post-redirect: a hot quarantine row
        # means its hosted logical row is being re-hammered and must move
        # to a fresh slot.
        logical = self._reverse.pop(row_id, row_id)
        self._forward.pop(logical, None)
        slot = self._allocate_slot()
        self._forward[logical] = slot
        self._reverse[slot] = logical
        self.stats.bump("migrations")
        return MitigationAction(stall_s=self.costs.migration_s, blocks_channel=True)

    @property
    def migrations(self) -> int:
        """Row migrations performed so far."""
        return self.stats.extra.get("migrations", 0)


__all__ = ["AQUA"]
