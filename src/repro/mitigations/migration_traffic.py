"""Measure mitigation data movement at command level.

The performance model charges AQUA migrations and SRS swaps with
closed-form constants (:class:`~repro.mitigations.costs.MitigationCostModel`).
This module *measures* the same operations by replaying their actual
DRAM traffic -- read a full row, write it elsewhere -- through the
command-level protocol engine, so the constants can be validated instead
of trusted (see ``tests/integration/test_migration_traffic.py``).

The (row, column) streams of each phase are built as numpy arrays
(``np.repeat`` over the rows, ``np.tile`` over the columns) and replayed
through one flat loop; the protocol engine itself is stateful per
command, so issue order -- not coordinate generation -- is the only
sequential part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.commands import CommandType, ProtocolTiming
from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.protocol import ProtocolEngine


def _count(engine: ProtocolEngine, kind: CommandType) -> int:
    return engine.counts[kind]


def _burst_streams(rows, cols_per_row: int) -> "tuple[np.ndarray, np.ndarray]":
    """(row, col) coordinate streams for full-burst row operations.

    Each row in ``rows`` contributes ``cols_per_row`` back-to-back
    column accesses: rows repeat per column, columns tile per row.
    """
    rows = np.asarray(rows, dtype=np.int64)
    row_stream = np.repeat(rows, cols_per_row)
    col_stream = np.tile(np.arange(cols_per_row, dtype=np.int64), rows.size)
    return row_stream, col_stream


def _replay(
    engine: ProtocolEngine,
    bank: int,
    row_stream: np.ndarray,
    col_stream: np.ndarray,
    start: float,
    *,
    is_write: bool,
) -> float:
    """Issue one phase's stream back-to-back; returns its finish time.

    All requests are presented at ``start`` so the engine's bus model
    pipelines the bursts (tCCD apart), as a real migration engine does.
    """
    done = start
    for row, col in zip(row_stream.tolist(), col_stream.tolist()):
        outcome = engine.access(Coordinate(0, 0, bank, row, col), start, is_write=is_write)
        done = max(done, outcome.data_ready)
    return done


@dataclass(frozen=True)
class MigrationMeasurement:
    """Command-level cost of one mitigative data movement."""

    operation: str
    duration_s: float
    activations: int
    reads: int
    writes: int


def measure_row_migration(
    config: DRAMConfig,
    *,
    source_row: int = 100,
    dest_row: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay an AQUA-style migration: stream a row to a new location.

    Reads all lines of the source row, then writes them to the
    destination row (buffered in the controller between the phases, as
    AQUA's quarantine engine does).
    """
    engine = ProtocolEngine(config, timing, max_hits=None)
    rows, cols = _burst_streams([source_row], config.lines_per_row)
    read_done = _replay(engine, bank, rows, cols, 0.0, is_write=False)
    rows, cols = _burst_streams([dest_row], config.lines_per_row)
    done = _replay(engine, bank, rows, cols, read_done, is_write=True)
    return MigrationMeasurement(
        operation="aqua-migration",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


def measure_row_swap(
    config: DRAMConfig,
    *,
    row_a: int = 100,
    row_b: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay an SRS-style swap: read both rows, write both back crossed."""
    engine = ProtocolEngine(config, timing, max_hits=None)
    rows, cols = _burst_streams([row_a, row_b], config.lines_per_row)
    read_done = _replay(engine, bank, rows, cols, 0.0, is_write=False)
    rows, cols = _burst_streams([row_b, row_a], config.lines_per_row)
    done = _replay(engine, bank, rows, cols, read_done, is_write=True)
    return MigrationMeasurement(
        operation="srs-swap",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


def measure_rubix_d_swap(
    config: DRAMConfig,
    *,
    gang_size: int = 4,
    row_a: int = 100,
    row_b: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay a Rubix-D remap episode: swap one gang between two rows."""
    engine = ProtocolEngine(config, timing, max_hits=None)
    rows, cols = _burst_streams([row_a, row_b], gang_size)
    read_done = _replay(engine, bank, rows, cols, 0.0, is_write=False)
    rows, cols = _burst_streams([row_b, row_a], gang_size)
    done = _replay(engine, bank, rows, cols, read_done, is_write=True)
    return MigrationMeasurement(
        operation="rubix-d-swap",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


__all__ = [
    "MigrationMeasurement",
    "measure_row_migration",
    "measure_row_swap",
    "measure_rubix_d_swap",
]
