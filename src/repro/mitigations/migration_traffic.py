"""Measure mitigation data movement at command level.

The performance model charges AQUA migrations and SRS swaps with
closed-form constants (:class:`~repro.mitigations.costs.MitigationCostModel`).
This module *measures* the same operations by replaying their actual
DRAM traffic -- read a full row, write it elsewhere -- through the
command-level protocol engine, so the constants can be validated instead
of trusted (see ``tests/integration/test_migration_traffic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CommandType, ProtocolTiming
from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.protocol import ProtocolEngine


def _count(engine: ProtocolEngine, kind: CommandType) -> int:
    return engine.counts[kind]


@dataclass(frozen=True)
class MigrationMeasurement:
    """Command-level cost of one mitigative data movement."""

    operation: str
    duration_s: float
    activations: int
    reads: int
    writes: int


def measure_row_migration(
    config: DRAMConfig,
    *,
    source_row: int = 100,
    dest_row: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay an AQUA-style migration: stream a row to a new location.

    Reads all lines of the source row, then writes them to the
    destination row (buffered in the controller between the phases, as
    AQUA's quarantine engine does).
    """
    engine = ProtocolEngine(config, timing, max_hits=None)
    # Issue the whole read phase back-to-back: the engine's bus model
    # pipelines the bursts (tCCD apart), as a real migration engine does.
    read_done = 0.0
    for col in range(config.lines_per_row):
        outcome = engine.access(
            Coordinate(0, 0, bank, source_row, col), 0.0, is_write=False
        )
        read_done = max(read_done, outcome.data_ready)
    done = read_done
    for col in range(config.lines_per_row):
        outcome = engine.access(
            Coordinate(0, 0, bank, dest_row, col), read_done, is_write=True
        )
        done = max(done, outcome.data_ready)
    return MigrationMeasurement(
        operation="aqua-migration",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


def measure_row_swap(
    config: DRAMConfig,
    *,
    row_a: int = 100,
    row_b: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay an SRS-style swap: read both rows, write both back crossed."""
    engine = ProtocolEngine(config, timing, max_hits=None)
    read_done = 0.0
    for row in (row_a, row_b):
        for col in range(config.lines_per_row):
            outcome = engine.access(Coordinate(0, 0, bank, row, col), 0.0)
            read_done = max(read_done, outcome.data_ready)
    done = read_done
    for row in (row_b, row_a):
        for col in range(config.lines_per_row):
            outcome = engine.access(
                Coordinate(0, 0, bank, row, col), read_done, is_write=True
            )
            done = max(done, outcome.data_ready)
    return MigrationMeasurement(
        operation="srs-swap",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


def measure_rubix_d_swap(
    config: DRAMConfig,
    *,
    gang_size: int = 4,
    row_a: int = 100,
    row_b: int = 5000,
    bank: int = 0,
    timing: "ProtocolTiming | None" = None,
) -> MigrationMeasurement:
    """Replay a Rubix-D remap episode: swap one gang between two rows."""
    engine = ProtocolEngine(config, timing, max_hits=None)
    read_done = 0.0
    for row in (row_a, row_b):
        for col in range(gang_size):
            outcome = engine.access(Coordinate(0, 0, bank, row, col), 0.0)
            read_done = max(read_done, outcome.data_ready)
    done = read_done
    for row in (row_b, row_a):
        for col in range(gang_size):
            outcome = engine.access(
                Coordinate(0, 0, bank, row, col), read_done, is_write=True
            )
            done = max(done, outcome.data_ready)
    return MigrationMeasurement(
        operation="rubix-d-swap",
        duration_s=done,
        activations=engine.activations,
        reads=_count(engine, CommandType.RD),
        writes=_count(engine, CommandType.WR),
    )


__all__ = [
    "MigrationMeasurement",
    "measure_row_migration",
    "measure_row_swap",
    "measure_rubix_d_swap",
]
