"""In-DRAM sampling trackers and their escape probability (§7.3).

DRAM vendors mitigate in-DRAM with severely area-limited trackers:
DDR4 TRR keeps a handful of entries, Samsung's DSAC adds stochastic
insert/replace, SK Hynix's PAT samples probabilistically.  The paper
cites their published escape rates (DSAC 13.9%, PAT 6.9% per mitigation
window) as the reason "in-DRAM mitigations cannot eliminate all forms of
Rowhammer attacks" (JEDEC) -- which is why the secure, controller-side
mitigations it builds on matter.

This module models that tracker class and measures escape probability
directly: the fraction of threshold-reaching aggressors that never get
tracked (and therefore whose victims are never refreshed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.mitigations.trackers import Tracker
from repro.utils.prng import SplitMix64


class InDRAMSamplingTracker(Tracker):
    """A DSAC-style stochastic tracker with a tiny entry table.

    On an activation of an untracked row, the row is inserted with
    probability ``sample_probability``; when the table is full it
    stochastically replaces the minimum-count entry (the DSAC insight:
    deterministic min-replacement is exploitable, so the replacement
    itself is randomized).

    Args:
        threshold: Activation count at which the victim refresh fires.
        num_entries: Table size (in-DRAM area limits this to a handful).
        sample_probability: Insert sampling rate.
        replace_probability: Chance a full-table insert evicts the
            current minimum entry.
        seed: Determinism seed.
    """

    def __init__(
        self,
        threshold: int,
        *,
        num_entries: int = 8,
        sample_probability: float = 0.3,
        replace_probability: float = 0.5,
        seed: int = 0xD5AC,
    ) -> None:
        super().__init__(threshold)
        if num_entries < 1:
            raise ValueError(f"num_entries must be >= 1, got {num_entries}")
        for name, value in (
            ("sample_probability", sample_probability),
            ("replace_probability", replace_probability),
        ):
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        self.num_entries = num_entries
        self.sample_probability = sample_probability
        self.replace_probability = replace_probability
        self._rng = SplitMix64(seed)
        self.counts: Dict[int, int] = {}

    def _chance(self, probability: float) -> bool:
        return self._rng.next_bits(30) / float(1 << 30) < probability

    def observe(self, row_id: int) -> bool:
        count = self.counts.get(row_id)
        if count is not None:
            count += 1
            if count >= self.threshold:
                del self.counts[row_id]
                return True
            self.counts[row_id] = count
            return False
        if not self._chance(self.sample_probability):
            return False
        if len(self.counts) < self.num_entries:
            self.counts[row_id] = 1
            return self.threshold == 1
        if self._chance(self.replace_probability):
            victim = min(self.counts, key=self.counts.get)
            del self.counts[victim]
            self.counts[row_id] = 1
            return self.threshold == 1
        return False

    def reset(self) -> None:
        self.counts.clear()


@dataclass(frozen=True)
class EscapeReport:
    """Escape measurement for one tracker under one attack shape."""

    tracker: str
    aggressors: int
    trials: int
    escaped: int

    @property
    def escape_probability(self) -> float:
        total = self.aggressors * self.trials
        return self.escaped / total if total else 0.0


def measure_escape_probability(
    tracker_factory,
    *,
    aggressors: int = 16,
    activations_per_aggressor: int = 256,
    decoy_rows: int = 64,
    trials: int = 50,
    seed: int = 0xE5CA,
) -> EscapeReport:
    """Fraction of threshold-reaching aggressors a tracker never flags.

    Each trial interleaves ``aggressors`` rows (each activated well past
    the tracker threshold) with decoy traffic -- the TRRespass shape that
    defeats small trackers.  An aggressor 'escapes' if the tracker never
    triggered on it during the trial.
    """
    rng = SplitMix64(seed)
    escaped_total = 0
    name = None
    for trial in range(trials):
        tracker = tracker_factory()
        if name is None:
            name = type(tracker).__name__
        triggered: set = set()
        schedule: List[int] = []
        for round_index in range(activations_per_aggressor):
            for aggressor in range(aggressors):
                schedule.append(aggressor)
                # One decoy between aggressor activations.
                schedule.append(aggressors + int(rng.next_below(decoy_rows)))
        for row in schedule:
            if tracker.observe(row) and row < aggressors:
                triggered.add(row)
        escaped_total += aggressors - len(triggered)
    return EscapeReport(
        tracker=name or "tracker",
        aggressors=aggressors,
        trials=trials,
        escaped=escaped_total,
    )


def compare_trackers(
    threshold: int, factories: Sequence, labels: Sequence[str], **kwargs
) -> List[EscapeReport]:
    """Escape reports for several trackers under the same attack shape."""
    if len(factories) != len(labels):
        raise ValueError("factories and labels must align")
    reports = []
    for factory, label in zip(factories, labels):
        report = measure_escape_probability(factory, **kwargs)
        reports.append(
            EscapeReport(
                tracker=label,
                aggressors=report.aggressors,
                trials=report.trials,
                escaped=report.escaped,
            )
        )
    return reports


__all__ = [
    "InDRAMSamplingTracker",
    "EscapeReport",
    "measure_escape_probability",
    "compare_trackers",
]
