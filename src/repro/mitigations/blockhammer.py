"""Blockhammer: activation-rate control (Yaglikci et al., HPCA 2021).

Rows whose activation count crosses the blacklist threshold (T_RH/2)
have further activations *delayed* so no row can reach T_RH activations
within a refresh window.  The required spacing is roughly
tREFW / T_RH -- hundreds of microseconds at low thresholds -- so benign
hot rows translate directly into massive request delays, producing the
600% slowdowns of Figure 3.

Unlike AQUA/SRS, the delay applies only to the offending request (the
channel stays usable), and the per-row counters never reset on action;
they only clear at refresh-window boundaries.
"""

from __future__ import annotations

from typing import Dict

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.base import Mitigation
from repro.mitigations.cbf import DualCBFTracker
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.mitigations.trackers import PerRowTracker


class Blockhammer(Mitigation):
    """Per-row rate limiting.

    Args:
        config: DRAM geometry/timing.
        t_rh: Rowhammer threshold; rows blacklist at ``t_rh // 2``.
        costs: Mitigation latency model.
        tracker_kind: ``"ideal"`` for the paper's one-counter-per-row
            SRAM tracker, or ``"cbf"`` for the real design's dual
            counting Bloom filters (never undercounts, may overcount
            under aliasing and throttle innocent rows).
        cbf_counters: Counter-array size per CBF (tracker_kind="cbf").
    """

    scheme = "blockhammer"

    def __init__(
        self,
        config: DRAMConfig,
        t_rh: int,
        *,
        costs: "MitigationCostModel | None" = None,
        tracker_kind: str = "ideal",
        cbf_counters: int = 4096,
    ) -> None:
        if tracker_kind not in ("ideal", "cbf"):
            raise ValueError(f"tracker_kind must be 'ideal' or 'cbf', got '{tracker_kind}'")
        self.blacklist_threshold = tracker_threshold("blockhammer", t_rh)
        # The base-class tracker is unused for counting (Blockhammer
        # counters saturate rather than reset); a PerRowTracker instance
        # satisfies the interface for window resets.
        super().__init__(config, PerRowTracker(self.blacklist_threshold), costs)
        self.t_rh = t_rh
        self.tracker_kind = tracker_kind
        self._counts: Dict[int, int] = {}
        self._cbf = (
            DualCBFTracker(self.blacklist_threshold, num_counters=cbf_counters)
            if tracker_kind == "cbf"
            else None
        )

    # ------------------------------------------------------------------
    def _observe_count(self, row_id: int) -> int:
        if self._cbf is not None:
            self._cbf.observe(row_id)
            return self._cbf.estimate(row_id)
        count = self._counts.get(row_id, 0) + 1
        self._counts[row_id] = count
        return count

    def on_activation(self, coord: Coordinate, now: float) -> MitigationAction:
        self.stats.activations_observed += 1
        row_id = self.config.global_row(coord)
        count = self._observe_count(row_id)
        if count <= self.blacklist_threshold:
            return MitigationAction()
        # Blacklisted: space activations so the row stays under t_rh
        # for the rest of the window.
        self.stats.mitigations_triggered += 1
        self.stats.bump("throttled_activations")
        delay = self.costs.blockhammer_delay_s(self.t_rh)
        self.stats.stall_s += delay
        return MitigationAction(stall_s=delay, blocks_channel=False)

    def on_refresh_window(self) -> None:
        super().on_refresh_window()
        self._counts.clear()
        if self._cbf is not None:
            self._cbf.reset()

    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        raise AssertionError("Blockhammer overrides on_activation directly")

    def count_of(self, row_id: int) -> int:
        """Current window activation count (estimate, for CBF tracking)."""
        if self._cbf is not None:
            return self._cbf.estimate(row_id)
        return self._counts.get(row_id, 0)

    @property
    def throttled_activations(self) -> int:
        return self.stats.extra.get("throttled_activations", 0)


__all__ = ["Blockhammer"]
