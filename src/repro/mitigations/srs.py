"""Scalable Row-Swap / SRS (Woo et al., HPCA 2023).

When a row reaches T_RH/3 activations (the extra headroom guards against
birthday-paradox attacks on the randomized destination), its content is
swapped with a uniformly random row.  Randomization breaks the aggressor
to victim spatial link; the swap moves two full rows over the channel,
costing roughly twice an AQUA migration.
"""

from __future__ import annotations

from typing import Dict

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.base import Mitigation
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.mitigations.trackers import MisraGriesTracker, Tracker
from repro.utils.prng import SplitMix64


class SRS(Mitigation):
    """Randomized row swap with an indirection (swap) table.

    Args:
        config: DRAM geometry/timing.
        t_rh: Rowhammer threshold; the tracker acts at ``t_rh // 3``.
        tracker: Activation tracker (defaults to Misra-Gries).
        costs: Mitigation latency model.
        seed: PRNG seed for destination selection.
    """

    scheme = "srs"

    def __init__(
        self,
        config: DRAMConfig,
        t_rh: int,
        *,
        tracker: "Tracker | None" = None,
        costs: "MitigationCostModel | None" = None,
        seed: int = 0x5125,
    ) -> None:
        threshold = tracker_threshold("srs", t_rh)
        super().__init__(config, tracker or MisraGriesTracker(threshold), costs)
        self.t_rh = t_rh
        self._rng = SplitMix64(seed)
        #: logical row -> physical row (identity entries omitted)
        self._forward: Dict[int, int] = {}
        #: physical row -> logical row (identity entries omitted)
        self._reverse: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def physical_of(self, logical_row: int) -> int:
        """Current physical location of a logical row."""
        return self._forward.get(logical_row, logical_row)

    def redirect(self, coord: Coordinate) -> Coordinate:
        row_id = self.config.global_row(coord)
        target = self._forward.get(row_id)
        if target is None:
            return coord
        return self.config.coordinate_of_row(target, coord.col)

    def _set(self, logical: int, physical: int) -> None:
        if logical == physical:
            self._forward.pop(logical, None)
            self._reverse.pop(physical, None)
        else:
            self._forward[logical] = physical
            self._reverse[physical] = logical

    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        # ``row_id`` is the hot *physical* row; swap its content with a
        # uniformly random physical row.
        hot_physical = row_id
        hot_logical = self._reverse.get(hot_physical, hot_physical)
        dest_physical = self._rng.next_below(self.config.total_rows)
        if dest_physical == hot_physical:
            dest_physical = (dest_physical + 1) % self.config.total_rows
        dest_logical = self._reverse.get(dest_physical, dest_physical)
        self._set(hot_logical, dest_physical)
        self._set(dest_logical, hot_physical)
        self.stats.bump("swaps")
        return MitigationAction(stall_s=self.costs.swap_s, blocks_channel=True)

    @property
    def swaps(self) -> int:
        """Row swaps performed so far."""
        return self.stats.extra.get("swaps", 0)


__all__ = ["SRS"]
