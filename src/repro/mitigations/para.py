"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

The original stateless Rowhammer mitigation: on every activation, with
probability ``p`` refresh the aggressor's neighbours.  No tracker at
all -- the security argument is purely probabilistic: an aggressor
hammered A times escapes with probability (1-p)^A, so p is chosen to
push the escape probability below a target for A = T_RH.

PARA is victim-focused, so (like TRR) Half-Double's refresh-side channel
applies; it is included as a baseline and for the in-DRAM escape-
probability analysis, not as a secure mitigation.
"""

from __future__ import annotations

import math
from typing import List

from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.memory_system import MitigationAction
from repro.mitigations.base import Mitigation
from repro.mitigations.costs import MitigationCostModel
from repro.mitigations.trackers import PerRowTracker
from repro.utils.prng import SplitMix64


def para_probability_for(t_rh: int, escape_target: float = 1e-15) -> float:
    """The refresh probability needed to hold a per-row escape target.

    Escape after ``t_rh`` activations is (1-p)^t_rh; solve for p.

    >>> round(para_probability_for(4800, 1e-15), 4)  # the 2014 sizing
    0.0072
    """
    if t_rh < 1:
        raise ValueError(f"t_rh must be >= 1, got {t_rh}")
    if not 0 < escape_target < 1:
        raise ValueError("escape_target must be in (0, 1)")
    return 1.0 - math.exp(math.log(escape_target) / t_rh)


class PARA(Mitigation):
    """Stateless probabilistic victim refresh.

    Args:
        config: DRAM geometry/timing.
        t_rh: Rowhammer threshold the probability is sized against.
        probability: Refresh probability per activation; derived from
            ``escape_target`` when omitted.
        escape_target: Desired per-row escape probability at t_rh
            activations.
        seed: PRNG seed (hardware uses a TRNG; we need determinism).
    """

    scheme = "para"

    def __init__(
        self,
        config: DRAMConfig,
        t_rh: int,
        *,
        probability: "float | None" = None,
        escape_target: float = 1e-15,
        costs: "MitigationCostModel | None" = None,
        seed: int = 0x9A4A,
    ) -> None:
        # The base-class tracker is unused (PARA is stateless); a
        # threshold-1 tracker satisfies the interface.
        super().__init__(config, PerRowTracker(threshold=1), costs)
        self.t_rh = t_rh
        self.probability = (
            probability if probability is not None else para_probability_for(t_rh, escape_target)
        )
        if not 0 < self.probability <= 1:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")
        self._rng = SplitMix64(seed)
        self.refreshes_issued = 0

    # ------------------------------------------------------------------
    def on_activation(self, coord: Coordinate, now: float) -> MitigationAction:
        self.stats.activations_observed += 1
        # Draw a 30-bit uniform; refresh iff below the scaled threshold.
        draw = self._rng.next_bits(30) / float(1 << 30)
        if draw >= self.probability:
            return MitigationAction()
        self.stats.mitigations_triggered += 1
        victims = self._neighbours(self.config.global_row(coord))
        self.refreshes_issued += len(victims)
        self.stats.bump("victim_refreshes", len(victims))
        stall = self.costs.victim_refresh_s
        self.stats.stall_s += stall
        return MitigationAction(stall_s=stall, blocks_channel=False)

    def _neighbours(self, row_id: int) -> List[int]:
        bank_base = (row_id // self.config.rows_per_bank) * self.config.rows_per_bank
        bank_top = bank_base + self.config.rows_per_bank
        return [r for r in (row_id - 1, row_id + 1) if bank_base <= r < bank_top]

    def _mitigate(self, row_id: int, coord: Coordinate, now: float) -> MitigationAction:
        raise AssertionError("PARA overrides on_activation directly")

    def expected_refresh_overhead(self, activations: int) -> float:
        """Expected extra victim-refresh time for a window's activations."""
        return activations * self.probability * self.costs.victim_refresh_s


__all__ = ["PARA", "para_probability_for"]
