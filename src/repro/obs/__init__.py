"""Campaign telemetry layer: metrics, spans, structured logs, manifests.

Quickstart::

    from repro import obs

    obs.configure(enabled=True, telemetry_dir="runs/today")
    manifest = obs.RunManifest.create("my-campaign", config={"scale": 0.2})

    with obs.TRACER.span("campaign.run"):
        records = campaign.run(workers=4)

    obs.write_telemetry(manifest=manifest)   # manifest.json, metrics.jsonl, ...
    print(obs.summarize_dir(obs.telemetry_dir()))

Everything is disabled by default and costs one boolean check per
instrumented call site; see docs/OBSERVABILITY.md for the metric
catalog, span hierarchy, and artifact formats.

Beyond the post-run artifacts, the layer offers a live plane:
:class:`LiveEndpoint` serves ``/metrics``, ``/healthz`` and ``/status``
over HTTP while a run is in flight; :func:`assemble_traces` /
:func:`render_trace` rebuild the distributed span trees every process
of a run contributed to; and :data:`PROFILER` samples collapsed stacks
around the hot kernels when ``REPRO_PROFILE`` is set.
"""

from repro.obs.assemble import (
    SpanNode,
    TraceTree,
    assemble_traces,
    load_span_events,
    render_trace,
    validate_traces,
)
from repro.obs.live import PROMETHEUS_CONTENT_TYPE, LiveEndpoint
from repro.obs.logs import NORMAL, QUIET, VERBOSE, StructuredLogger
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest, git_sha
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MAX_SERIES_PER_METRIC,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    filter_snapshot,
    parse_series_key,
    series_key,
    snapshot_from_jsonl,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
)
from repro.obs.profile import PROFILER, SamplingProfiler, profiling_enabled, wrap_kernel
from repro.obs.runtime import (
    LOGS,
    METRICS,
    RUN_ID_ENV,
    TELEMETRY_DIR_ENV,
    TELEMETRY_ENV,
    TRACER,
    apply_config,
    configure,
    enabled,
    export_config,
    get_logger,
    heartbeat,
    reset,
    run_id,
    telemetry_dir,
    write_telemetry,
)
from repro.obs.schema import (
    REQUIRED_CAMPAIGN_METRICS,
    SEMANTIC_PREFIXES,
    validate_manifest,
    validate_snapshot,
    validate_telemetry_dir,
)
from repro.obs.summary import summarize_dir, summarize_snapshot
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "LOGS",
    "LiveEndpoint",
    "MANIFEST_SCHEMA_VERSION",
    "MAX_SERIES_PER_METRIC",
    "METRICS",
    "MetricsRegistry",
    "NORMAL",
    "PROFILER",
    "PROMETHEUS_CONTENT_TYPE",
    "QUIET",
    "REQUIRED_CAMPAIGN_METRICS",
    "RUN_ID_ENV",
    "RunManifest",
    "SEMANTIC_PREFIXES",
    "SamplingProfiler",
    "SpanNode",
    "SpanRecord",
    "StructuredLogger",
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_ENV",
    "TRACER",
    "TraceTree",
    "Tracer",
    "VERBOSE",
    "apply_config",
    "assemble_traces",
    "configure",
    "diff_snapshots",
    "enabled",
    "export_config",
    "filter_snapshot",
    "get_logger",
    "git_sha",
    "heartbeat",
    "load_span_events",
    "parse_series_key",
    "profiling_enabled",
    "render_trace",
    "reset",
    "run_id",
    "series_key",
    "snapshot_from_jsonl",
    "snapshot_to_jsonl",
    "snapshot_to_prometheus",
    "summarize_dir",
    "summarize_snapshot",
    "telemetry_dir",
    "validate_manifest",
    "validate_snapshot",
    "validate_telemetry_dir",
    "validate_traces",
    "wrap_kernel",
]
