"""Campaign telemetry layer: metrics, spans, structured logs, manifests.

Quickstart::

    from repro import obs

    obs.configure(enabled=True, telemetry_dir="runs/today")
    manifest = obs.RunManifest.create("my-campaign", config={"scale": 0.2})

    with obs.TRACER.span("campaign.run"):
        records = campaign.run(workers=4)

    obs.write_telemetry(manifest=manifest)   # manifest.json, metrics.jsonl, ...
    print(obs.summarize_dir(obs.telemetry_dir()))

Everything is disabled by default and costs one boolean check per
instrumented call site; see docs/OBSERVABILITY.md for the metric
catalog, span hierarchy, and artifact formats.
"""

from repro.obs.logs import NORMAL, QUIET, VERBOSE, StructuredLogger
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest, git_sha
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MAX_SERIES_PER_METRIC,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    filter_snapshot,
    parse_series_key,
    series_key,
    snapshot_from_jsonl,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
)
from repro.obs.runtime import (
    LOGS,
    METRICS,
    TELEMETRY_DIR_ENV,
    TELEMETRY_ENV,
    TRACER,
    apply_config,
    configure,
    enabled,
    export_config,
    get_logger,
    heartbeat,
    reset,
    telemetry_dir,
    write_telemetry,
)
from repro.obs.schema import (
    REQUIRED_CAMPAIGN_METRICS,
    SEMANTIC_PREFIXES,
    validate_manifest,
    validate_snapshot,
    validate_telemetry_dir,
)
from repro.obs.summary import summarize_dir, summarize_snapshot
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "LOGS",
    "MANIFEST_SCHEMA_VERSION",
    "MAX_SERIES_PER_METRIC",
    "METRICS",
    "MetricsRegistry",
    "NORMAL",
    "QUIET",
    "REQUIRED_CAMPAIGN_METRICS",
    "RunManifest",
    "SEMANTIC_PREFIXES",
    "SpanRecord",
    "StructuredLogger",
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_ENV",
    "TRACER",
    "Tracer",
    "VERBOSE",
    "apply_config",
    "configure",
    "diff_snapshots",
    "enabled",
    "export_config",
    "filter_snapshot",
    "get_logger",
    "git_sha",
    "heartbeat",
    "parse_series_key",
    "reset",
    "series_key",
    "snapshot_from_jsonl",
    "snapshot_to_jsonl",
    "snapshot_to_prometheus",
    "summarize_dir",
    "summarize_snapshot",
    "telemetry_dir",
    "validate_manifest",
    "validate_snapshot",
    "validate_telemetry_dir",
    "write_telemetry",
]
