"""Structured logging: human console lines plus machine JSONL.

Replaces the ad-hoc ``print()`` calls in the experiment runner and the
suite scripts.  Every log call names an *event* and carries typed
fields; the console rendering is decoupled from the machine record:

* **console** -- prints ``message`` verbatim when one is given (which
  is how the runner's historical output stays byte-identical at the
  default verbosity), otherwise a compact ``event key=value`` line.
  ``info``/``debug`` go to stdout, ``warning``/``error`` to stderr,
  exactly like the prints they replace.
* **JSONL sink** (``--log-json PATH``) -- one JSON object per call,
  regardless of console verbosity, so ``--quiet`` terminal runs still
  produce a complete machine log.
* **telemetry event stream** -- when a telemetry directory is
  configured, log events also land in the run's ``events-<pid>.jsonl``
  alongside spans (``type: "log"``).

Verbosity: ``QUIET`` shows warnings and errors only, ``NORMAL`` (the
default) adds info, ``VERBOSE`` adds debug.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, TextIO, Union

QUIET = 0
NORMAL = 1
VERBOSE = 2

_LEVEL_RANK = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_CONSOLE_THRESHOLD = {QUIET: 30, NORMAL: 20, VERBOSE: 10}


class LogState:
    """Shared sink/verbosity state behind every :class:`StructuredLogger`."""

    def __init__(self) -> None:
        self.verbosity = NORMAL
        self.json_path: Optional[Path] = None
        self._json_file: Optional[TextIO] = None
        self._json_pid: Optional[int] = None
        #: Wired to the telemetry event stream by the runtime (or None).
        self.emit_event: Optional[Callable[[dict], None]] = None

    # ------------------------------------------------------------------
    def set_json_path(self, path: Optional[Union[str, Path]]) -> None:
        """Point the JSONL sink at a file (None closes it)."""
        self.close()
        self.json_path = Path(path) if path else None

    def _json_handle(self) -> Optional[TextIO]:
        if self.json_path is None:
            return None
        # Reopen after fork: two processes appending through one
        # inherited file object would interleave torn lines.
        pid = os.getpid()
        if self._json_file is None or self._json_pid != pid:
            self.close()
            self.json_path.parent.mkdir(parents=True, exist_ok=True)
            self._json_file = open(self.json_path, "a")
            self._json_pid = pid
        return self._json_file

    def write_json(self, record: dict) -> None:
        handle = self._json_handle()
        if handle is None:
            return
        try:
            handle.write(json.dumps(record, default=str) + "\n")
            handle.flush()
        except OSError:
            # Logging must never take the run down with it.
            pass

    def close(self) -> None:
        if self._json_file is not None:
            try:
                self._json_file.close()
            except OSError:
                pass
        self._json_file = None
        self._json_pid = None


class StructuredLogger:
    """Named logger bound to a shared :class:`LogState`.

    Args:
        name: Logger name, recorded in every machine record.
        state: Shared verbosity/sink state (the runtime's singleton).
    """

    def __init__(self, name: str, state: LogState) -> None:
        self.name = name
        self._state = state

    # ------------------------------------------------------------------
    def debug(self, event: str, message: Optional[str] = None, **fields: object) -> None:
        self._log("debug", event, message, fields)

    def info(self, event: str, message: Optional[str] = None, **fields: object) -> None:
        self._log("info", event, message, fields)

    def warning(self, event: str, message: Optional[str] = None, **fields: object) -> None:
        self._log("warning", event, message, fields)

    def error(self, event: str, message: Optional[str] = None, **fields: object) -> None:
        self._log("error", event, message, fields)

    # ------------------------------------------------------------------
    def _log(
        self,
        level: str,
        event: str,
        message: Optional[str],
        fields: Dict[str, object],
    ) -> None:
        rank = _LEVEL_RANK[level]
        state = self._state
        if rank >= _CONSOLE_THRESHOLD[state.verbosity]:
            stream = sys.stderr if rank >= 30 else sys.stdout
            print(message if message is not None else _render(event, fields), file=stream)
        record = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        if message is not None:
            record["message"] = message
        if fields:
            record.update(fields)
        state.write_json(record)
        if state.emit_event is not None:
            state.emit_event({"type": "log", **record, "pid": os.getpid()})


def _render(event: str, fields: Dict[str, object]) -> str:
    if not fields:
        return event
    packed = " ".join(f"{k}={v}" for k, v in fields.items())
    return f"{event} {packed}"


__all__ = ["QUIET", "NORMAL", "VERBOSE", "LogState", "StructuredLogger"]
