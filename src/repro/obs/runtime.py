"""Process-wide telemetry runtime: the singletons and their lifecycle.

One metrics registry, one tracer, and one log state per process, all
disabled by default.  Enable them explicitly::

    from repro import obs
    obs.configure(enabled=True, telemetry_dir="runs/today")

or implicitly through the environment -- ``REPRO_TELEMETRY_DIR=DIR``
(enable + write artifacts to DIR) or ``REPRO_TELEMETRY=1`` (enable,
in-memory only).  The environment path is how process-pool workers
inherit telemetry from a CLI run, exactly like ``REPRO_STATS_CACHE``;
programmatic pool runs instead ship :func:`export_config` through the
pool initializer (see :mod:`repro.parallel.executor`).

Artifact layout under the telemetry directory::

    manifest.json                run provenance + final metrics snapshot
    metrics.jsonl                one metric series per line
    metrics.prom                 Prometheus text-exposition snapshot
    events-<run>-<pid>.jsonl     span + log event stream, one file per
                                 process per run
    profile-<phase>-<pid>.collapsed   sampling-profiler stacks (opt-in)

Events are written per-(run, process): the run id (:func:`run_id`, an
8-hex token minted once in the parent and inherited by every worker via
``REPRO_RUN_ID`` / :func:`export_config`) keeps two runs sharing a
telemetry dir -- or a respawned worker that recycled a pid -- from
append-interleaving unrelated event streams into one file, and every
event line is stamped with it so ``validate_telemetry`` can reject a
mixed file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

from repro.obs.logs import NORMAL, LogState, StructuredLogger
from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    MetricsRegistry,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
)
from repro.obs.tracing import Tracer

#: Enable telemetry and write run artifacts to this directory.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
#: Enable telemetry without a directory ("1"/"true"/"yes"/"on").
TELEMETRY_ENV = "REPRO_TELEMETRY"
#: Run id workers inherit so their event files join the parent's run.
RUN_ID_ENV = "REPRO_RUN_ID"

_TRUTHY = {"1", "true", "yes", "on"}

_run_id: Optional[str] = None


def run_id() -> str:
    """This process tree's telemetry run id (minted once, inherited).

    The first caller in a process tree mints an 8-hex token and exports
    it through ``REPRO_RUN_ID`` so forked/spawned workers adopt the same
    one; :func:`export_config` ships it to programmatic pools the same
    way.  Event filenames and event lines are keyed by it, so two runs
    sharing a telemetry directory (or a recycled pid) can never
    interleave into one file.
    """
    global _run_id
    if _run_id is None:
        inherited = os.environ.get(RUN_ID_ENV, "").strip()
        _run_id = inherited or os.urandom(4).hex()
        os.environ[RUN_ID_ENV] = _run_id
    return _run_id


def _set_run_id(value: Optional[str]) -> None:
    global _run_id
    _run_id = value or None
    if _run_id:
        os.environ[RUN_ID_ENV] = _run_id


class _EventStream:
    """Per-(run, process) JSONL sink for span and log events."""

    def __init__(self) -> None:
        self.directory: Optional[Path] = None
        self._file: Optional[TextIO] = None
        self._pid: Optional[int] = None
        self._run: Optional[str] = None

    def emit(self, event: dict) -> None:
        if self.directory is None:
            return
        pid = os.getpid()
        run = run_id()
        if self._file is None or self._pid != pid or self._run != run:
            self.close()
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._file = open(self.directory / f"events-{run}-{pid}.jsonl", "a")
                self._pid = pid
                self._run = run
            except OSError:
                self.directory = None  # sink broken; stop trying
                return
        event.setdefault("run", run)
        try:
            self._file.write(json.dumps(event, default=str) + "\n")
            self._file.flush()
        except OSError:
            pass

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
        self._file = None
        self._pid = None
        self._run = None


# ---------------------------------------------------------------------------
# Singletons.  Object identity is stable for the life of the process;
# reset() clears them in place.
# ---------------------------------------------------------------------------
_EVENTS = _EventStream()
METRICS = MetricsRegistry()
TRACER = Tracer(METRICS, emit=_EVENTS.emit)
LOGS = LogState()
_telemetry_dir: Optional[Path] = None


def enabled() -> bool:
    """Is telemetry collection on in this process?"""
    return METRICS.enabled


def telemetry_dir() -> Optional[Path]:
    """The configured artifact directory, if any."""
    return _telemetry_dir


def configure(
    *,
    enabled: bool = True,
    telemetry_dir: Optional[Union[str, Path]] = None,
    verbosity: Optional[int] = None,
    log_json: Optional[Union[str, Path]] = None,
) -> None:
    """Turn telemetry on/off and point its sinks.

    Args:
        enabled: Master switch for metrics + spans.
        telemetry_dir: Directory for run artifacts (manifest, metrics,
            per-process event streams); None keeps telemetry in-memory.
        verbosity: Console log verbosity (``obs.QUIET`` / ``NORMAL`` /
            ``VERBOSE``); None leaves it unchanged.
        log_json: Path for the structured JSONL log sink; None leaves
            the current sink unchanged.
    """
    global _telemetry_dir
    METRICS.enabled = enabled
    if telemetry_dir is not None:
        _telemetry_dir = Path(telemetry_dir)
        _EVENTS.directory = _telemetry_dir if enabled else None
    elif not enabled:
        _EVENTS.directory = None
    LOGS.emit_event = _EVENTS.emit if (enabled and _EVENTS.directory) else None
    if verbosity is not None:
        LOGS.verbosity = verbosity
    if log_json is not None:
        LOGS.set_json_path(log_json)


def get_logger(name: str) -> StructuredLogger:
    """A named structured logger bound to the process-wide log state."""
    return StructuredLogger(name, LOGS)


def reset() -> None:
    """Restore pristine (disabled) state -- tests use this between cases."""
    global _telemetry_dir, _run_id
    METRICS.enabled = False
    METRICS.clear()
    TRACER.clear()
    _EVENTS.close()
    _EVENTS.directory = None
    _telemetry_dir = None
    _run_id = None
    os.environ.pop(RUN_ID_ENV, None)
    LOGS.verbosity = NORMAL
    LOGS.set_json_path(None)
    LOGS.emit_event = None


# ---------------------------------------------------------------------------
# Cross-process plumbing
# ---------------------------------------------------------------------------
def export_config() -> Optional[dict]:
    """Picklable config a pool worker applies to mirror this process.

    None when telemetry is disabled (workers then skip configuration
    entirely, keeping the disabled path allocation-free).
    """
    if not METRICS.enabled:
        return None
    return {
        "enabled": True,
        "telemetry_dir": str(_telemetry_dir) if _telemetry_dir else None,
        "verbosity": LOGS.verbosity,
        "run_id": run_id(),
    }


def apply_config(config: Optional[dict]) -> None:
    """Apply an :func:`export_config` payload inside a pool worker."""
    if not config:
        return
    if config.get("run_id"):
        _set_run_id(config["run_id"])
    configure(
        enabled=config.get("enabled", True),
        telemetry_dir=config.get("telemetry_dir"),
        verbosity=config.get("verbosity"),
    )


def _configure_from_env() -> None:
    directory = os.environ.get(TELEMETRY_DIR_ENV, "").strip()
    flag = os.environ.get(TELEMETRY_ENV, "").strip().lower()
    if directory:
        configure(enabled=True, telemetry_dir=directory)
    elif flag in _TRUTHY:
        configure(enabled=True)


# Environment auto-enable at import: CLI entry points set the env vars
# before building process pools, and workers (fork or spawn) pick the
# configuration up here without any explicit hand-off.
_configure_from_env()


# ---------------------------------------------------------------------------
# Artifact writing
# ---------------------------------------------------------------------------
def write_telemetry(
    directory: Optional[Union[str, Path]] = None,
    *,
    manifest: Optional[RunManifest] = None,
) -> Dict[str, Path]:
    """Write the metrics snapshot (and manifest) as run artifacts.

    Args:
        directory: Target directory; defaults to the configured
            telemetry directory.
        manifest: A run manifest to finalize (its ``metrics`` field is
            filled with the snapshot unless already set) and write.

    Returns:
        ``{artifact name: written path}``.

    Raises:
        ValueError: No directory configured and none given.
    """
    target = Path(directory) if directory is not None else _telemetry_dir
    if target is None:
        raise ValueError("no telemetry directory configured; pass directory=")
    target.mkdir(parents=True, exist_ok=True)
    snapshot = METRICS.snapshot()
    written: Dict[str, Path] = {}
    metrics_path = target / "metrics.jsonl"
    metrics_path.write_text("\n".join(snapshot_to_jsonl(snapshot)) + "\n")
    written["metrics"] = metrics_path
    prom_path = target / "metrics.prom"
    prom_path.write_text(snapshot_to_prometheus(snapshot))
    written["prometheus"] = prom_path
    if manifest is not None:
        if manifest.finished_at is None:
            manifest.finalize(metrics=snapshot)
        elif manifest.metrics is None:
            manifest.metrics = snapshot
        written["manifest"] = manifest.write(target / "manifest.json")
    from repro.obs.profile import PROFILER  # lazy: avoids an import cycle

    for path in PROFILER.write(target):
        written[path.name] = path
    return written


def heartbeat(worker: Optional[str] = None) -> None:
    """Record a worker liveness gauge (wall clock, telemetry only)."""
    METRICS.set_gauge(
        "parallel.worker_heartbeat",
        time.time(),
        worker=worker or f"p{os.getpid()}",
    )


__all__ = [
    "LOGS",
    "METRICS",
    "RUN_ID_ENV",
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_ENV",
    "TRACER",
    "apply_config",
    "configure",
    "enabled",
    "export_config",
    "get_logger",
    "heartbeat",
    "reset",
    "run_id",
    "telemetry_dir",
    "write_telemetry",
]
