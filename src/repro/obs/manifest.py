"""Run manifests: everything needed to interpret (or rerun) a campaign.

A :class:`RunManifest` records what was run (command, argv, config
grid, seeds), on what (git SHA, python/numpy versions, platform), when
(wall-clock start/finish plus a monotonic duration immune to NTP
steps), and what came out (the final metrics snapshot).  One manifest
is written per run as ``manifest.json`` inside the telemetry
directory; ``scripts/validate_telemetry.py`` checks it against the
schema in :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """HEAD commit of the checkout the package runs from, or None.

    Defaults to the package's own directory, not the process cwd -- a
    run driven from a scratch directory still records which commit of
    the repo produced it (and a pip-installed tree yields None).
    """
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {"python": _platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from repro import __version__ as repro_version

        versions["repro"] = repro_version
    except Exception:  # pragma: no cover - import cycle during bootstrap
        pass
    return versions


@dataclass
class RunManifest:
    """Provenance record for one telemetry-enabled run.

    Build one with :meth:`create` when the run starts, call
    :meth:`finalize` when it ends, then :meth:`write` it.
    """

    command: str
    run_id: str
    argv: List[str] = field(default_factory=list)
    started_at: str = ""
    finished_at: Optional[str] = None
    duration_s: Optional[float] = None
    git_sha: Optional[str] = None
    platform: str = ""
    packages: Dict[str, str] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[dict] = None
    #: Worker-process identities (campaign service / pool runs): one
    #: entry per spawned worker, ``{"worker_id", "pid", "replaces",
    #: "stats_cache_dir"}`` -- ``replaces`` names the dead worker a
    #: respawn substituted for, so the manifest records the run's whole
    #: failure/recovery history.
    workers: List[Dict[str, Any]] = field(default_factory=list)
    schema_version: int = MANIFEST_SCHEMA_VERSION
    #: Monotonic anchor for duration_s (not serialized).
    _t0: float = field(default=0.0, repr=False, compare=False)

    @classmethod
    def create(
        cls,
        command: str,
        *,
        argv: Optional[List[str]] = None,
        config: Optional[Dict[str, Any]] = None,
        seeds: Optional[Dict[str, int]] = None,
        run_id: Optional[str] = None,
    ) -> "RunManifest":
        """Start a manifest for a run beginning now."""
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        return cls(
            command=command,
            run_id=run_id or f"{command}-{stamp}-p{os.getpid()}",
            argv=list(argv if argv is not None else sys.argv),
            started_at=_utc_now(),
            git_sha=git_sha(),
            platform=_platform.platform(),
            packages=_package_versions(),
            seeds=dict(seeds or {}),
            config=dict(config or {}),
            _t0=time.perf_counter(),
        )

    # ------------------------------------------------------------------
    def finalize(self, metrics: Optional[dict] = None) -> "RunManifest":
        """Stamp the end of the run; attach the final metrics snapshot.

        ``duration_s`` is monotonic (``perf_counter`` delta since
        :meth:`create`), so a wall-clock step mid-run cannot make it
        negative or wildly wrong.
        """
        self.finished_at = _utc_now()
        if self._t0:
            self.duration_s = round(time.perf_counter() - self._t0, 6)
        if metrics is not None:
            self.metrics = metrics
        return self

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "run_id": self.run_id,
            "argv": list(self.argv),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "git_sha": self.git_sha,
            "platform": self.platform,
            "packages": dict(self.packages),
            "seeds": dict(self.seeds),
            "config": dict(self.config),
            "metrics": self.metrics,
            "workers": [dict(w) for w in self.workers],
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize to ``path`` (atomic temp + replace)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, default=str) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest back (raises ValueError on malformed files)."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or "command" not in data or "run_id" not in data:
            raise ValueError(f"{path} is not a run manifest")
        return cls(
            command=data["command"],
            run_id=data["run_id"],
            argv=list(data.get("argv", [])),
            started_at=data.get("started_at", ""),
            finished_at=data.get("finished_at"),
            duration_s=data.get("duration_s"),
            git_sha=data.get("git_sha"),
            platform=data.get("platform", ""),
            packages=dict(data.get("packages", {})),
            seeds=dict(data.get("seeds", {})),
            config=dict(data.get("config", {})),
            metrics=data.get("metrics"),
            workers=list(data.get("workers", [])),
            schema_version=int(data.get("schema_version", 0)),
        )


__all__ = ["MANIFEST_SCHEMA_VERSION", "RunManifest", "git_sha"]
