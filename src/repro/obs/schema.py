"""Telemetry schema: the metric-name catalog and validators.

Every metric the instrumented stack may emit is declared here with its
kind and allowed label keys; ``scripts/validate_telemetry.py`` (wired
into ``ci_tier1.sh``) fails a run that emits an unknown metric name, an
undeclared label key, a kind mismatch, or that is *missing* a required
metric -- so instrumentation and catalog cannot silently drift apart.

Two determinism families are distinguished (see docs/OBSERVABILITY.md):

* **semantic** -- derived from per-cell simulation results; totals are
  identical between a serial and a process-pool run of the same grid
  (``campaign.*``, ``mitigation.*``, ``resilience.*``);
* **operational** -- depend on process topology and cache locality
  (``cache.*``, ``sim.*``, ``span.*``, ``parallel.*``, ``trace.*``,
  ``runner.*``); they describe *how* the run executed, not what it
  computed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.obs.metrics import parse_series_key

#: Label key the registry substitutes past the cardinality cap; always
#: legal on any metric.
OVERFLOW_LABEL = "overflow"

#: kind is "counter" | "gauge" | "histogram"; labels are the allowed keys.
METRICS: Dict[str, dict] = {
    # -- stats cache (operational) -------------------------------------
    "cache.requests": {"kind": "counter", "labels": {"result"}},
    "cache.evictions": {"kind": "counter", "labels": set()},
    "cache.disk_bytes_written": {"kind": "counter", "labels": set()},
    "cache.disk_bytes_read": {"kind": "counter", "labels": set()},
    "cache.entries": {"kind": "gauge", "labels": set()},
    "cache.corrupt": {"kind": "counter", "labels": set()},
    # -- resilient executor (semantic) ---------------------------------
    "resilience.retries": {"kind": "counter", "labels": set()},
    "resilience.infra_retries": {"kind": "counter", "labels": set()},
    "resilience.backoff_seconds": {"kind": "counter", "labels": set()},
    "resilience.faults": {"kind": "counter", "labels": {"class"}},
    "resilience.cells": {"kind": "counter", "labels": {"status"}},
    "resilience.journal.truncated": {"kind": "counter", "labels": set()},
    # -- campaign cells (semantic) -------------------------------------
    "campaign.cells": {"kind": "counter", "labels": {"status"}},
    "campaign.activations": {"kind": "counter", "labels": set()},
    "campaign.mitigations": {"kind": "counter", "labels": {"scheme"}},
    "campaign.remap_swaps": {"kind": "counter", "labels": set()},
    # -- mitigation model (semantic) -----------------------------------
    "mitigation.invocations": {"kind": "counter", "labels": {"scheme"}},
    "mitigation.throttled_activations": {"kind": "counter", "labels": {"scheme"}},
    # -- simulator / analyzer (operational) ----------------------------
    "sim.windows": {"kind": "counter", "labels": {"mode"}},
    "sim.lines": {"kind": "counter", "labels": set()},
    "sim.activations": {"kind": "counter", "labels": set()},
    "sim.window_seconds": {"kind": "histogram", "labels": set()},
    "trace.generated": {"kind": "counter", "labels": {"workload"}},
    # -- process pool (operational) ------------------------------------
    "parallel.workers": {"kind": "gauge", "labels": set()},
    "parallel.queue_depth": {"kind": "gauge", "labels": set()},
    "parallel.completions": {"kind": "counter", "labels": set()},
    "parallel.cell_seconds": {"kind": "histogram", "labels": set()},
    "parallel.worker_heartbeat": {"kind": "gauge", "labels": {"worker"}},
    # -- campaign service (operational; completions result=committed is
    #    semantic -- it must equal the grid's cell count) ---------------
    "service.submissions": {"kind": "counter", "labels": {"result"}},
    "service.cells": {"kind": "counter", "labels": {"result"}},
    "service.completions": {"kind": "counter", "labels": {"result"}},
    "service.dispatches": {"kind": "counter", "labels": set()},
    "service.heartbeats": {"kind": "counter", "labels": set()},
    "service.lease_expiries": {"kind": "counter", "labels": set()},
    "service.requeues": {"kind": "counter", "labels": {"reason"}},
    "service.worker_restarts": {"kind": "counter", "labels": set()},
    "service.workers": {"kind": "gauge", "labels": set()},
    "service.queue_depth": {"kind": "gauge", "labels": set()},
    # -- socket transport (operational; distributed mode only) ---------
    "service.transport.connects": {"kind": "counter", "labels": {"role"}},
    "service.transport.reconnects": {"kind": "counter", "labels": set()},
    "service.transport.frame_errors": {"kind": "counter", "labels": {"kind"}},
    "service.transport.fallback": {"kind": "counter", "labels": set()},
    "service.transport.slow_workers": {"kind": "counter", "labels": set()},
    "service.transport.heartbeat_lag_s": {"kind": "gauge", "labels": {"worker"}},
    # -- chaos harness (operational, test/CI only) ---------------------
    "chaos.injections": {"kind": "counter", "labels": {"action"}},
    # -- playbook compiler / sweep fuzzer (operational) ----------------
    "playbook.compiled": {"kind": "counter", "labels": {"pattern"}},
    "fuzz.cells": {"kind": "counter", "labels": {"result"}},
    "fuzz.probes": {"kind": "counter", "labels": set()},
    # -- experiment runner (operational) -------------------------------
    "runner.experiments": {"kind": "counter", "labels": {"status"}},
    # -- live observability endpoint (operational) ---------------------
    "obs.http_requests": {"kind": "counter", "labels": {"path"}},
    # -- tracer aggregates (operational) -------------------------------
    "span.count": {"kind": "counter", "labels": {"span", "status"}},
    "span.seconds": {"kind": "histogram", "labels": {"span"}},
}

#: Metric names whose totals must be identical between serial and
#: process-pool runs of the same grid (same seed).
SEMANTIC_PREFIXES = ("campaign.", "mitigation.", "resilience.")

#: Metrics a telemetry-enabled campaign run must have emitted -- CI's
#: "did the instrumentation actually fire" floor.
REQUIRED_CAMPAIGN_METRICS = (
    "cache.requests",
    "campaign.cells",
    "mitigation.invocations",
    "resilience.cells",
    "sim.windows",
    "span.count",
    "span.seconds",
)

#: Span names the tracer may emit (the hierarchy is documented in
#: docs/OBSERVABILITY.md).
SPAN_NAMES = {
    "campaign.run",
    "campaign.cell",
    "runner.experiment",
    "sim.window",
    "sim.translate",
    "sim.analyze",
    "sim.mitigation",
    "trace.gen",
    "service.submit",
    "service.worker_session",
    "fuzz.sweep",
    "fuzz.bisect",
}

#: Required top-level keys of a run manifest.
MANIFEST_REQUIRED_KEYS = (
    "schema_version",
    "command",
    "run_id",
    "argv",
    "started_at",
    "finished_at",
    "duration_s",
    "platform",
    "packages",
    "config",
    "metrics",
)


# ---------------------------------------------------------------------------
def validate_snapshot(
    snapshot: dict, *, required: Iterable[str] = ()
) -> List[str]:
    """Check a metrics snapshot against the catalog; returns error strings.

    Flags unknown metric names, label keys not declared for the metric,
    kind mismatches, and required metrics that never fired.
    """
    errors: List[str] = []
    seen: Set[str] = set()
    for kind, section in (
        ("counter", snapshot.get("counters", {})),
        ("gauge", snapshot.get("gauges", {})),
        ("histogram", snapshot.get("histograms", {})),
    ):
        for key in section:
            name, labels = parse_series_key(key)
            seen.add(name)
            spec = METRICS.get(name)
            if spec is None:
                errors.append(f"unknown metric name '{name}' (series '{key}')")
                continue
            if spec["kind"] != kind:
                errors.append(
                    f"metric '{name}' is declared {spec['kind']} but appeared as {kind}"
                )
            allowed = spec["labels"] | {OVERFLOW_LABEL}
            for label_key in labels:
                if label_key not in allowed:
                    errors.append(
                        f"metric '{name}' has undeclared label key '{label_key}'"
                    )
    for name in required:
        if name not in METRICS:
            errors.append(f"required metric '{name}' is not in the catalog")
        elif name not in seen:
            errors.append(f"required metric '{name}' was never emitted")
    return errors


def validate_manifest(data: dict) -> List[str]:
    """Check one parsed ``manifest.json``; returns error strings."""
    errors: List[str] = []
    for key in MANIFEST_REQUIRED_KEYS:
        if key not in data:
            errors.append(f"manifest missing required key '{key}'")
    version = data.get("schema_version")
    if version is not None and version != 1:
        errors.append(f"unsupported manifest schema_version {version}")
    if data.get("finished_at") is None:
        errors.append("manifest was never finalized (finished_at is null)")
    duration = data.get("duration_s")
    if duration is not None and duration < 0:
        errors.append(f"manifest duration_s is negative ({duration})")
    metrics = data.get("metrics")
    if isinstance(metrics, dict):
        errors.extend(validate_snapshot(metrics))
    return errors


def validate_events_lines(lines: Iterable[str], *, source: str = "events") -> List[str]:
    """Check a JSONL event stream (spans + logs); returns error strings.

    One events file belongs to exactly one (run, process): events are
    stamped with the run id that keyed the filename, so two run ids in
    one file mean interleaved unrelated streams (the historic
    pid-collision bug) and fail validation.
    """
    errors: List[str] = []
    runs_seen: Set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            errors.append(f"{source}:{lineno}: not valid JSON")
            continue
        run = event.get("run")
        if run is not None:
            run = str(run)
            if runs_seen and run not in runs_seen:
                errors.append(
                    f"{source}:{lineno}: mixed run ids in one events file"
                    f" ({', '.join(sorted(runs_seen | {run}))})"
                )
            runs_seen.add(run)
        kind = event.get("type")
        if kind == "span":
            for key in ("name", "path", "duration_s", "status", "ts"):
                if key not in event:
                    errors.append(f"{source}:{lineno}: span event missing '{key}'")
            name = event.get("name")
            if name is not None and name not in SPAN_NAMES:
                errors.append(f"{source}:{lineno}: unknown span name '{name}'")
            if event.get("duration_s", 0) < 0:
                errors.append(f"{source}:{lineno}: negative span duration")
        elif kind == "log":
            for key in ("ts", "level", "logger", "event"):
                if key not in event:
                    errors.append(f"{source}:{lineno}: log event missing '{key}'")
        else:
            errors.append(f"{source}:{lineno}: unknown event type {kind!r}")
    return errors


def validate_telemetry_dir(
    directory: Union[str, Path],
    *,
    required: Optional[Iterable[str]] = REQUIRED_CAMPAIGN_METRICS,
    traces: bool = False,
) -> List[str]:
    """Validate a whole telemetry directory; returns error strings.

    Expects ``manifest.json`` and ``metrics.jsonl`` plus zero or more
    ``events-*.jsonl`` files (one per (run, process) that emitted
    events).  With ``traces=True`` the assembled trace trees are also
    checked for completeness (every non-root span's parent exists;
    exactly one root per trace) -- only sound for runs whose processes
    all exited cleanly, since a chaos-killed worker legitimately leaves
    half-open spans behind.
    """
    from repro.obs.metrics import snapshot_from_jsonl

    directory = Path(directory)
    errors: List[str] = []
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        errors.append(f"missing {manifest_path.name}")
    else:
        try:
            errors.extend(validate_manifest(json.loads(manifest_path.read_text())))
        except (json.JSONDecodeError, OSError) as error:
            errors.append(f"{manifest_path.name}: unreadable ({error})")
    metrics_path = directory / "metrics.jsonl"
    if not metrics_path.exists():
        errors.append(f"missing {metrics_path.name}")
    else:
        try:
            snapshot = snapshot_from_jsonl(metrics_path)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            errors.append(f"{metrics_path.name}: malformed ({error})")
        else:
            errors.extend(validate_snapshot(snapshot, required=tuple(required or ())))
    for events_path in sorted(directory.glob("events-*.jsonl")):
        errors.extend(
            validate_events_lines(
                events_path.read_text().splitlines(), source=events_path.name
            )
        )
    if traces:
        from repro.obs.assemble import validate_traces

        errors.extend(validate_traces(directory))
    return errors


__all__ = [
    "MANIFEST_REQUIRED_KEYS",
    "METRICS",
    "OVERFLOW_LABEL",
    "REQUIRED_CAMPAIGN_METRICS",
    "SEMANTIC_PREFIXES",
    "SPAN_NAMES",
    "validate_events_lines",
    "validate_manifest",
    "validate_snapshot",
    "validate_telemetry_dir",
]
