"""Reassemble distributed trace trees from a telemetry directory.

Every process in a run -- scheduler, Pipe workers, socket workers on
other hosts -- appends its finished spans to its own
``events-<run>-<pid>.jsonl`` file, each span stamped with the
``(trace_id, span_id, parent_span_id)`` triple minted by
:mod:`repro.obs.tracing` and propagated through cell assignments.  This
module reads all of those files back and reconstructs the causal trees:

* :func:`assemble_traces` -- every trace in the directory, as
  :class:`TraceTree` objects (roots, orphans, span index);
* :func:`render_trace` -- one tree as indented ASCII, ordered by start
  time (per-process monotonic clocks where siblings share a pid, so an
  NTP step mid-run cannot reorder them; wall clock across processes);
* :func:`validate_traces` -- the CI contract: every non-root span's
  parent exists and every trace has exactly one root.

The ``runner trace`` subcommand is a thin CLI over these.  Spans
emitted by pre-trace-context telemetry (no ``trace_id``) are skipped,
never errors -- old telemetry directories stay readable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


@dataclass
class SpanNode:
    """One span event, linked into its trace's tree."""

    name: str
    trace_id: str
    span_id: str
    parent_span_id: str
    duration_s: float
    status: str
    ts: float  #: Wall-clock end time of the span.
    ts_mono: float  #: Emitting process's monotonic clock at end time.
    pid: int
    run: str = ""
    path: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def start_ts(self) -> float:
        return self.ts - self.duration_s

    @property
    def start_mono(self) -> float:
        return self.ts_mono - self.duration_s


@dataclass
class TraceTree:
    """All spans of one trace id, linked parent -> children."""

    trace_id: str
    spans: Dict[str, SpanNode]
    roots: List[SpanNode]  #: Spans with no parent id (should be exactly 1).
    orphans: List[SpanNode]  #: Spans whose parent id resolves to no span.

    @property
    def root(self) -> Optional[SpanNode]:
        return self.roots[0] if len(self.roots) == 1 else None

    @property
    def pids(self) -> List[int]:
        return sorted({span.pid for span in self.spans.values()})

    def span_count(self) -> int:
        return len(self.spans)


def load_span_events(directory: Union[str, Path]) -> List[dict]:
    """All span events under a telemetry dir (unparseable lines skipped)."""
    events: List[dict] = []
    for path in sorted(Path(directory).glob("events-*.jsonl")):
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("type") == "span":
                events.append(event)
    return events


def _node(event: dict) -> SpanNode:
    return SpanNode(
        name=str(event.get("name", "")),
        trace_id=str(event.get("trace_id", "")),
        span_id=str(event.get("span_id", "")),
        parent_span_id=str(event.get("parent_span_id", "")),
        duration_s=float(event.get("duration_s", 0.0)),
        status=str(event.get("status", "")),
        ts=float(event.get("ts", 0.0)),
        ts_mono=float(event.get("ts_mono", 0.0)),
        pid=int(event.get("pid", 0)),
        run=str(event.get("run", "")),
        path=str(event.get("path", "")),
        attrs=event.get("attrs") or {},
    )


def _sort_siblings(siblings: List[SpanNode]) -> None:
    """Order siblings by start time, immune to NTP steps within a pid.

    Siblings all emitted by one process are comparable on that process's
    monotonic clock (``ts_mono``); mixed-process siblings fall back to
    wall clock -- the best available cross-host ordering.
    """
    if len({span.pid for span in siblings}) == 1:
        siblings.sort(key=lambda span: (span.start_mono, span.span_id))
    else:
        siblings.sort(key=lambda span: (span.start_ts, span.pid, span.span_id))


def assemble_traces(
    source: Union[str, Path, Iterable[dict]],
) -> List[TraceTree]:
    """Rebuild every trace tree from a telemetry dir (or span events).

    Duplicate span ids (a re-dispatched cell computed twice, or a
    resent completion) keep the first occurrence; spans without a trace
    id are skipped.  Trees come back ordered by their earliest span.
    """
    if isinstance(source, (str, Path)):
        events = load_span_events(source)
    else:
        events = list(source)
    by_trace: Dict[str, Dict[str, SpanNode]] = {}
    for event in events:
        node = _node(event)
        if not node.trace_id or not node.span_id:
            continue
        by_trace.setdefault(node.trace_id, {}).setdefault(node.span_id, node)
    trees: List[TraceTree] = []
    for trace_id, spans in by_trace.items():
        roots: List[SpanNode] = []
        orphans: List[SpanNode] = []
        for span in spans.values():
            if not span.parent_span_id:
                roots.append(span)
            elif span.parent_span_id in spans:
                spans[span.parent_span_id].children.append(span)
            else:
                orphans.append(span)
        for span in spans.values():
            if span.children:
                _sort_siblings(span.children)
        _sort_siblings(roots)
        _sort_siblings(orphans)
        trees.append(TraceTree(trace_id, spans, roots, orphans))
    trees.sort(
        key=lambda tree: min(
            (span.start_ts for span in tree.spans.values()), default=0.0
        )
    )
    return trees


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_span(span: SpanNode) -> str:
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    flag = "" if span.status == "ok" else f" !{span.status}"
    return (
        f"{span.name} {_fmt_duration(span.duration_s)}"
        f" pid={span.pid}{flag}" + (f" [{attrs}]" if attrs else "")
    )


def render_trace(tree: TraceTree) -> str:
    """One trace tree as indented ASCII (box-drawing connectors)."""
    lines = [
        f"trace {tree.trace_id}: {tree.span_count()} spans across"
        f" {len(tree.pids)} processes"
    ]

    def walk(span: SpanNode, prefix: str, last: bool) -> None:
        connector = "`-- " if last else "|-- "
        lines.append(prefix + connector + _fmt_span(span))
        child_prefix = prefix + ("    " if last else "|   ")
        for index, child in enumerate(span.children):
            walk(child, child_prefix, index == len(span.children) - 1)

    for index, root in enumerate(tree.roots):
        walk(root, "", index == len(tree.roots) - 1)
    for orphan in tree.orphans:
        lines.append(
            f"?-- ORPHAN (parent {orphan.parent_span_id} missing): "
            + _fmt_span(orphan)
        )
    return "\n".join(lines)


def validate_traces(source: Union[str, Path, Iterable[dict]]) -> List[str]:
    """Trace-tree completeness errors for a telemetry dir.

    The contract CI asserts: every non-root span's parent span exists in
    the same trace, and every trace has exactly one root.  Empty when
    the directory carries no trace-context spans at all (pre-context
    telemetry is not an error).
    """
    errors: List[str] = []
    for tree in assemble_traces(source):
        if len(tree.roots) != 1:
            names = ", ".join(sorted(r.name for r in tree.roots)) or "none"
            errors.append(
                f"trace {tree.trace_id} has {len(tree.roots)} roots"
                f" ({names}); expected exactly one"
            )
        for orphan in tree.orphans:
            errors.append(
                f"trace {tree.trace_id}: span '{orphan.name}'"
                f" ({orphan.span_id}, pid {orphan.pid}) references missing"
                f" parent {orphan.parent_span_id}"
            )
    return errors


__all__ = [
    "SpanNode",
    "TraceTree",
    "assemble_traces",
    "load_span_events",
    "render_trace",
    "validate_traces",
]
