"""Opt-in sampling profiler scoped around the hot kernels.

A production campaign spends almost all of its time inside the four
registered kernels (:data:`repro.perf.backends.KERNELS`).  This module
answers "*where inside them*" without instrumenting a single kernel
line: a daemon thread samples the Python stacks of threads currently
inside a profiled phase every few milliseconds via
``sys._current_frames()`` and aggregates them into collapsed-stack
counts -- the ``frame;frame;frame count`` format flamegraph tooling
consumes directly.

Opt-in and zero-overhead when off:

* enable with ``REPRO_PROFILE=1`` in the environment (workers inherit
  it like every other telemetry variable) or programmatically via
  :meth:`SamplingProfiler.enable`;
* while disabled, the only cost anywhere is
  :func:`wrap_kernel` returning its argument unchanged -- kernel
  resolution (:func:`repro.perf.backends.get_kernel`) stays
  identity-preserving, and no thread, no lock, no allocation exists;
* while enabled, entering a phase registers the calling thread with the
  sampler; samples are attributed to the innermost active phase.

Phases are scoped at two layers: :func:`wrap_kernel` wraps every
implementation resolved through
:func:`repro.perf.backends.get_kernel` (the benchmark/introspection
path), and the production hot paths scope themselves directly --
``analyze_trace`` / the chunk merge in ``repro.dram.fast_model``,
``RemapEngine.remap_steps``, and the simulator's ``translate_trace``
call sites -- so a profiled campaign attributes samples no matter how
the kernel was reached (nested same-phase scopes are harmless).

Output: one ``profile-<phase>-<pid>.collapsed`` file per profiled phase
per process, written into the telemetry directory by
:func:`repro.obs.runtime.write_telemetry` (and at interpreter exit for
worker processes, which never call ``write_telemetry`` themselves).

The thread-based sampler is deliberate over a ``signal``/``setitimer``
one: signals can only interrupt the main thread, while campaign cells
run on worker threads (heartbeat pumps, net-worker sessions) -- and a
sampler thread works identically on every platform the test suite runs
on.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Truthy values enable the profiler for the whole process tree.
PROFILE_ENV = "REPRO_PROFILE"
#: Override the sampling interval, in milliseconds (default 5).
PROFILE_INTERVAL_ENV = "REPRO_PROFILE_INTERVAL_MS"

_TRUTHY = {"1", "true", "yes", "on"}


def _collapse(frame) -> str:
    """A frame chain -> root-first ``module:function;...`` stack line."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        module = os.path.splitext(os.path.basename(code.co_filename))[0]
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class _PhaseScope:
    """Context manager marking the calling thread as inside one phase."""

    __slots__ = ("_profiler", "_phase", "_ident", "_previous")

    def __init__(self, profiler: "SamplingProfiler", phase: str) -> None:
        self._profiler = profiler
        self._phase = phase
        self._ident = 0
        self._previous: Optional[str] = None

    def __enter__(self) -> "_PhaseScope":
        self._ident = threading.get_ident()
        self._previous = self._profiler._enter(self._ident, self._phase)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._profiler._exit(self._ident, self._previous)
        return False


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class SamplingProfiler:
    """Collapsed-stack sampling profiler for phase-scoped hot sections.

    Args:
        interval_s: Wall-clock spacing between stack samples.  5 ms
            keeps the sampler under ~1% of a busy core while resolving
            phases tens of milliseconds long.
    """

    def __init__(self, interval_s: float = 0.005) -> None:
        self.interval_s = interval_s
        self.enabled = False
        self._lock = threading.Lock()
        #: phase -> Counter[collapsed stack] -> sample count.
        self._samples: Dict[str, Counter] = {}
        #: thread ident -> innermost active phase name.
        self._active: Dict[int, str] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def enable(self, interval_s: Optional[float] = None) -> None:
        """Start sampling phases entered from now on (idempotent)."""
        if interval_s is not None:
            self.interval_s = interval_s
        if self.enabled:
            return
        self.enabled = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def disable(self) -> None:
        """Stop the sampler thread; collected samples are retained."""
        self.enabled = False
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def clear(self) -> None:
        """Drop collected samples and phase registrations (tests)."""
        with self._lock:
            self._samples.clear()
            self._active.clear()

    # -- phase scoping -------------------------------------------------
    def phase(self, name: str):
        """Context manager attributing the calling thread's samples to
        ``name`` for its duration (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SCOPE
        return _PhaseScope(self, name)

    def _enter(self, ident: int, phase: str) -> Optional[str]:
        with self._lock:
            previous = self._active.get(ident)
            self._active[ident] = phase
        return previous

    def _exit(self, ident: int, previous: Optional[str]) -> None:
        with self._lock:
            if previous is None:
                self._active.pop(ident, None)
            else:
                self._active[ident] = previous

    # -- sampling ------------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            with self._lock:
                if not self._active:
                    continue
                active = dict(self._active)
            frames = sys._current_frames()
            collapsed = {
                ident: _collapse(frame)
                for ident, frame in frames.items()
                if ident in active
            }
            with self._lock:
                for ident, stack in collapsed.items():
                    phase = self._active.get(ident)
                    if phase is None:
                        continue  # phase exited between snapshot and here
                    self._samples.setdefault(phase, Counter())[stack] += 1

    # -- output --------------------------------------------------------
    def samples(self) -> Dict[str, Counter]:
        """A copy of the collected per-phase stack counters."""
        with self._lock:
            return {phase: Counter(c) for phase, c in self._samples.items()}

    def write(self, directory: Union[str, Path]) -> List[Path]:
        """Write one ``profile-<phase>-<pid>.collapsed`` file per phase.

        Returns the written paths (empty when nothing was sampled).
        Counts accumulate across calls within one process; rewriting is
        idempotent because files are keyed by phase and pid.
        """
        snapshot = self.samples()
        if not snapshot:
            return []
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        pid = os.getpid()
        written: List[Path] = []
        for phase, counts in sorted(snapshot.items()):
            safe = phase.replace("/", "_").replace(" ", "_")
            path = target / f"profile-{safe}-{pid}.collapsed"
            lines = [f"{stack} {count}" for stack, count in sorted(counts.items())]
            path.write_text("\n".join(lines) + "\n")
            written.append(path)
        return written


#: Process-wide profiler instance (mirrors the METRICS/TRACER singletons).
PROFILER = SamplingProfiler()


def profiling_enabled() -> bool:
    """Is the process-wide sampling profiler collecting?"""
    return PROFILER.enabled


def wrap_kernel(name: str, fn):
    """Scope ``fn`` under a profiler phase named after its kernel.

    The backend registry (:func:`repro.perf.backends.get_kernel`) routes
    every resolved kernel through here; with the profiler disabled this
    returns ``fn`` unchanged, preserving function identity and adding
    zero call overhead.
    """
    if not PROFILER.enabled:
        return fn

    def profiled(*args, **kwargs):
        with PROFILER.phase(name):
            return fn(*args, **kwargs)

    profiled.__name__ = getattr(fn, "__name__", name)
    profiled.__wrapped__ = fn
    return profiled


def _write_at_exit() -> None:
    """Worker processes never call ``write_telemetry``; flush here."""
    if not PROFILER.samples():
        return
    from repro.obs import runtime

    directory = runtime.telemetry_dir()
    if directory is not None:
        try:
            PROFILER.write(directory)
        except OSError:
            pass


def _configure_from_env() -> None:
    flag = os.environ.get(PROFILE_ENV, "").strip().lower()
    if flag not in _TRUTHY:
        return
    interval_ms = os.environ.get(PROFILE_INTERVAL_ENV, "").strip()
    try:
        interval_s = float(interval_ms) / 1000.0 if interval_ms else None
    except ValueError:
        interval_s = None
    PROFILER.enable(interval_s)
    atexit.register(_write_at_exit)


_configure_from_env()


__all__ = [
    "PROFILE_ENV",
    "PROFILE_INTERVAL_ENV",
    "PROFILER",
    "SamplingProfiler",
    "profiling_enabled",
    "wrap_kernel",
]
