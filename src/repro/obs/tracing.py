"""Span-based tracer for the simulation stack.

Spans nest -- campaign -> cell -> phase (trace-gen / translate /
analyze / mitigation) -- via an explicit per-thread stack::

    with tracer.span("campaign.cell", workload="gcc", scheme="aqua"):
        with tracer.span("sim.translate"):
            ...

Each finished span is recorded three ways:

* the metrics registry gets ``span.count{span=..., status=...}`` and a
  ``span.seconds{span=...}`` histogram observation,
* the telemetry event stream (when configured) gets one JSON line with
  the span's full nesting ``path``, duration, and attributes,
* a bounded in-memory ring (:attr:`Tracer.finished`) keeps the most
  recent records for tests and ad-hoc inspection.

**Distributed trace context.**  Every live span carries a
``(trace_id, span_id, parent_span_id)`` triple.  The first span opened
on a thread with no active context mints a fresh ``trace_id`` and
becomes the root of a trace; nested spans inherit the trace and parent
off the thread's stack.  The context crosses process (and host)
boundaries as a compact token -- :meth:`Tracer.current_context` yields
``"<trace_id>:<span_id>"``, and :meth:`Tracer.attach` installs such a
token as the parent of whatever spans a worker opens next -- so a cell
computed by a socket worker on another machine still hangs off the
scheduler's ``service.submit`` span in the assembled tree
(:mod:`repro.obs.assemble`).

Durations come from ``time.perf_counter()`` -- monotonic, so an NTP
step during a run can never produce a negative span.  Span events also
carry ``ts_mono`` (the emitting process's monotonic clock) alongside
the wall-clock ``ts``: within one process the assembler orders siblings
by the monotonic clock, so a wall-clock (NTP) adjustment mid-run cannot
reorder the tree.  With telemetry disabled, :meth:`Tracer.span` returns
a shared no-op context manager: the hot path pays one boolean check and
no allocation.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry


def new_id() -> str:
    """A fresh 64-bit hex id for a trace or span (collision-negligible)."""
    return os.urandom(8).hex()


def make_context(trace_id: str, span_id: str) -> str:
    """Pack a ``(trace_id, span_id)`` pair into its wire token."""
    return f"{trace_id}:{span_id}"


def parse_context(token: str) -> Optional[tuple]:
    """``"trace:span"`` -> ``(trace_id, span_id)``; None when malformed."""
    if not token or ":" not in token:
        return None
    trace_id, _, span_id = token.partition(":")
    if not trace_id or not span_id:
        return None
    return trace_id, span_id


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    path: str  #: Slash-joined ancestry, e.g. ``campaign.run/campaign.cell``.
    duration_s: float
    status: str  #: ``ok`` or ``error`` (an exception escaped the span).
    attrs: Dict[str, object] = field(default_factory=dict)
    trace_id: str = ""  #: Trace this span belongs to.
    span_id: str = ""  #: This span's own id.
    parent_span_id: str = ""  #: Empty for a trace root.

    def to_event(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": self.attrs,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "ts": time.time(),
            "ts_mono": time.monotonic(),
            "pid": os.getpid(),
        }


class _NullSpan:
    """Shared no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("_tracer", "name", "attrs", "_t0", "_path", "_ids")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._path = ""
        self._t0 = 0.0
        self._ids = ("", "", "")  # (trace_id, span_id, parent_span_id)

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        if stack:
            _, parent_id, trace_id = stack[-1]
        else:
            parent_id, trace_id = "", new_id()
        span_id = new_id()
        self._ids = (trace_id, span_id, parent_id)
        stack.append((self.name, span_id, trace_id))
        self._path = "/".join(frame[0] for frame in stack if frame[0])
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1][1] == self._ids[1]:
            stack.pop()
        trace_id, span_id, parent_id = self._ids
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                path=self._path,
                duration_s=duration,
                status="error" if exc_type is not None else "ok",
                attrs=self.attrs,
                trace_id=trace_id,
                span_id=span_id,
                parent_span_id=parent_id,
            )
        )
        return False


class _AttachedContext:
    """Installs a remote parent context on the current thread's stack.

    The frame has no name, so it contributes nothing to span ``path``s;
    it only donates its trace id and span id to child spans.
    """

    __slots__ = ("_tracer", "_trace_id", "_span_id")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._span_id = span_id

    def __enter__(self) -> "_AttachedContext":
        self._tracer._stack().append((None, self._span_id, self._trace_id))
        return self

    def __exit__(self, *exc_info: object) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1][0] is None and stack[-1][1] == self._span_id:
            stack.pop()
        return False


class Tracer:
    """Produces nested spans; aggregates them into a metrics registry.

    Args:
        registry: Metrics registry span aggregates land in (its
            ``enabled`` flag also gates the tracer).
        emit: Optional sink for span events (one dict per finished
            span); the runtime wires this to the JSONL event stream.
        keep: Ring-buffer size for :attr:`finished`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        emit: Optional[Callable[[dict], None]] = None,
        keep: int = 4096,
    ) -> None:
        self.registry = registry
        self.emit = emit
        self.finished: "deque[SpanRecord]" = deque(maxlen=keep)
        self._local = threading.local()

    def _stack(self) -> list:
        # Frames are (name, span_id, trace_id); name is None for
        # attached remote contexts (excluded from paths).
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Context manager timing one nested phase (no-op when disabled)."""
        if not self.registry.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def add(self, name: str, duration_s: float, **attrs: object) -> None:
        """Record a synthetic span from an externally-measured duration.

        Used where a phase's time is accumulated across loop iterations
        (e.g. per-chunk translate time inside a dynamic window) and a
        ``with`` block per iteration would be needless overhead.
        """
        if not self.registry.enabled:
            return
        stack = self._stack()
        names = [frame[0] for frame in stack if frame[0]]
        path = "/".join(names + [name]) if names else name
        if stack:
            _, parent_id, trace_id = stack[-1]
        else:
            parent_id, trace_id = "", new_id()
        self._finish(
            SpanRecord(
                name=name,
                path=path,
                duration_s=duration_s,
                status="ok",
                attrs=attrs,
                trace_id=trace_id,
                span_id=new_id(),
                parent_span_id=parent_id,
            )
        )

    def attach(self, context: Optional[str]):
        """Adopt a remote ``"trace:span"`` token as the current parent.

        Spans opened inside the returned context manager join the remote
        trace as children of the remote span -- this is how a worker
        process hangs its ``campaign.cell`` span off the scheduler's
        ``service.submit``.  A falsy or malformed token (or disabled
        telemetry) yields the shared no-op.
        """
        if not self.registry.enabled or not context:
            return _NULL_SPAN
        parsed = parse_context(context)
        if parsed is None:
            return _NULL_SPAN
        return _AttachedContext(self, parsed[0], parsed[1])

    def current_context(self) -> Optional[str]:
        """The active ``"trace:span"`` token (None outside any span)."""
        if not self.registry.enabled:
            return None
        stack = self._stack()
        if not stack:
            return None
        _, span_id, trace_id = stack[-1]
        return make_context(trace_id, span_id)

    def current_path(self) -> str:
        """The active span ancestry (empty string outside any span)."""
        return "/".join(frame[0] for frame in self._stack() if frame[0])

    def clear(self) -> None:
        """Drop recorded spans (the registry is cleared separately)."""
        self.finished.clear()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _finish(self, record: SpanRecord) -> None:
        self.finished.append(record)
        self.registry.inc("span.count", span=record.name, status=record.status)
        self.registry.observe("span.seconds", record.duration_s, span=record.name)
        if self.emit is not None:
            self.emit(record.to_event())


__all__ = [
    "SpanRecord",
    "Tracer",
    "make_context",
    "new_id",
    "parse_context",
]
