"""Span-based tracer for the simulation stack.

Spans nest -- campaign -> cell -> phase (trace-gen / translate /
analyze / mitigation) -- via an explicit per-thread stack::

    with tracer.span("campaign.cell", workload="gcc", scheme="aqua"):
        with tracer.span("sim.translate"):
            ...

Each finished span is recorded three ways:

* the metrics registry gets ``span.count{span=..., status=...}`` and a
  ``span.seconds{span=...}`` histogram observation,
* the telemetry event stream (when configured) gets one JSON line with
  the span's full nesting ``path``, duration, and attributes,
* a bounded in-memory ring (:attr:`Tracer.finished`) keeps the most
  recent records for tests and ad-hoc inspection.

Durations come from ``time.perf_counter()`` -- monotonic, so an NTP
step during a run can never produce a negative span.  With telemetry
disabled, :meth:`Tracer.span` returns a shared no-op context manager:
the hot path pays one boolean check and no allocation.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    path: str  #: Slash-joined ancestry, e.g. ``campaign.run/campaign.cell``.
    duration_s: float
    status: str  #: ``ok`` or ``error`` (an exception escaped the span).
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_event(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": self.attrs,
            "ts": time.time(),
            "pid": os.getpid(),
        }


class _NullSpan:
    """Shared no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("_tracer", "name", "attrs", "_t0", "_path")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._path = ""
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                path=self._path,
                duration_s=duration,
                status="error" if exc_type is not None else "ok",
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Produces nested spans; aggregates them into a metrics registry.

    Args:
        registry: Metrics registry span aggregates land in (its
            ``enabled`` flag also gates the tracer).
        emit: Optional sink for span events (one dict per finished
            span); the runtime wires this to the JSONL event stream.
        keep: Ring-buffer size for :attr:`finished`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        emit: Optional[Callable[[dict], None]] = None,
        keep: int = 4096,
    ) -> None:
        self.registry = registry
        self.emit = emit
        self.finished: "deque[SpanRecord]" = deque(maxlen=keep)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Context manager timing one nested phase (no-op when disabled)."""
        if not self.registry.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def add(self, name: str, duration_s: float, **attrs: object) -> None:
        """Record a synthetic span from an externally-measured duration.

        Used where a phase's time is accumulated across loop iterations
        (e.g. per-chunk translate time inside a dynamic window) and a
        ``with`` block per iteration would be needless overhead.
        """
        if not self.registry.enabled:
            return
        stack = self._stack()
        path = "/".join(stack + [name]) if stack else name
        self._finish(
            SpanRecord(
                name=name, path=path, duration_s=duration_s, status="ok", attrs=attrs
            )
        )

    def current_path(self) -> str:
        """The active span ancestry (empty string outside any span)."""
        return "/".join(self._stack())

    def clear(self) -> None:
        """Drop recorded spans (the registry is cleared separately)."""
        self.finished.clear()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _finish(self, record: SpanRecord) -> None:
        self.finished.append(record)
        self.registry.inc("span.count", span=record.name, status=record.status)
        self.registry.observe("span.seconds", record.duration_s, span=record.name)
        if self.emit is not None:
            self.emit(record.to_event())


__all__ = ["SpanRecord", "Tracer"]
