"""Human-readable telemetry summaries (``report --telemetry DIR``).

Turns a telemetry directory's manifest + metrics snapshot into the
terse operational overview an engineer actually wants after a run:
where the time went (span table), whether the caches worked (hit
rates), whether the run struggled (retries, faults, degraded cells),
and the paper-facing mitigation counters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import parse_series_key, snapshot_from_jsonl


def _counters_by_name(snapshot: dict) -> Dict[str, Dict[str, float]]:
    """``{metric name: {series key: value}}`` for all counters."""
    grouped: Dict[str, Dict[str, float]] = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_series_key(key)
        label = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
        grouped.setdefault(name, {})[label] = value
    return grouped


def _span_table(snapshot: dict) -> List[str]:
    rows = []
    for key, data in snapshot.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        if name != "span.seconds" or "span" not in labels:
            continue
        count = data["count"]
        total = data["sum"]
        mean = total / count if count else 0.0
        rows.append((total, labels["span"], count, mean))
    if not rows:
        return ["  (no spans recorded)"]
    rows.sort(reverse=True)
    lines = [f"  {'span':<20} {'count':>8} {'total s':>10} {'mean s':>10}"]
    for total, span, count, mean in rows:
        lines.append(f"  {span:<20} {count:>8} {total:>10.3f} {mean:>10.4f}")
    return lines


def summarize_snapshot(snapshot: dict, *, manifest: Optional[RunManifest] = None) -> str:
    """Render one metrics snapshot (optionally with its manifest)."""
    lines: List[str] = []
    if manifest is not None:
        lines.append(f"run {manifest.run_id}  ({manifest.command})")
        duration = (
            f"{manifest.duration_s:.1f}s" if manifest.duration_s is not None else "?"
        )
        lines.append(
            f"  started {manifest.started_at}  duration {duration}"
            f"  git {manifest.git_sha or 'n/a'}"
        )
        packages = ", ".join(f"{k} {v}" for k, v in sorted(manifest.packages.items()))
        if packages:
            lines.append(f"  {packages}")
        lines.append("")
    counters = _counters_by_name(snapshot)

    def total(name: str) -> float:
        return sum(counters.get(name, {}).values())

    cells = counters.get("campaign.cells", {})
    if cells:
        packed = "  ".join(f"{label}={int(v)}" for label, v in sorted(cells.items()))
        lines.append(f"campaign cells: {packed}")
    experiments = counters.get("runner.experiments", {})
    if experiments:
        packed = "  ".join(
            f"{label}={int(v)}" for label, v in sorted(experiments.items())
        )
        lines.append(f"experiments: {packed}")
    hits = counters.get("cache.requests", {})
    if hits:
        requests = sum(hits.values())
        in_memory = hits.get("result=hit", 0)
        disk = hits.get("result=disk_hit", 0)
        rate = (in_memory + disk) / requests if requests else 0.0
        lines.append(
            f"stats cache: {int(requests)} requests, hit rate {rate:.1%}"
            f" (memory {int(in_memory)}, disk {int(disk)},"
            f" misses {int(hits.get('result=miss', 0))})"
        )
    retries = total("resilience.retries")
    faults = counters.get("resilience.faults", {})
    if retries or faults:
        packed = (
            "  ".join(f"{label}={int(v)}" for label, v in sorted(faults.items()))
            or "none"
        )
        lines.append(
            f"resilience: {int(retries)} retries,"
            f" {total('resilience.backoff_seconds'):.2f}s backoff, faults: {packed}"
        )
    mitigations = counters.get("mitigation.invocations", {})
    if mitigations:
        packed = "  ".join(
            f"{label.removeprefix('scheme=')}={int(v)}"
            for label, v in sorted(mitigations.items())
        )
        lines.append(f"mitigation invocations: {packed}")
    swaps = total("campaign.remap_swaps")
    if swaps:
        lines.append(f"rubix-d remap swaps: {int(swaps)}")
    sim_lines = total("sim.lines")
    window_hist = snapshot.get("histograms", {}).get("sim.window_seconds")
    if sim_lines and window_hist and window_hist["sum"] > 0:
        lines.append(
            f"analyzer: {int(total('sim.windows'))} windows, {int(sim_lines):,} lines"
            f" ({sim_lines / window_hist['sum'] / 1e6:.1f} Mlines/s analyzed)"
        )
    lines.append("")
    lines.append("where the time went:")
    lines.extend(_span_table(snapshot))
    return "\n".join(lines)


def summarize_dir(directory: Union[str, Path]) -> str:
    """Summarize a telemetry directory (manifest.json + metrics.jsonl).

    Raises:
        FileNotFoundError: ``metrics.jsonl`` is absent.
    """
    directory = Path(directory)
    metrics_path = directory / "metrics.jsonl"
    if not metrics_path.exists():
        raise FileNotFoundError(f"no metrics.jsonl in {directory}")
    snapshot = snapshot_from_jsonl(metrics_path)
    manifest = None
    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        try:
            manifest = RunManifest.load(manifest_path)
        except ValueError:
            manifest = None
    return summarize_snapshot(snapshot, manifest=manifest)


__all__ = ["summarize_dir", "summarize_snapshot"]
