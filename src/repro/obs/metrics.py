"""Near-zero-overhead metrics registry: counters, gauges, histograms.

Design constraints, in priority order:

1. **Disabled means free.**  Every mutation checks one boolean before
   doing anything; with telemetry off, an instrumented hot path pays a
   method call and an attribute load, nothing else.  The fast-tier
   kernels are instrumented at window/chunk granularity, so even that
   cost is amortized over millions of trace lines.
2. **Mergeable.**  A parallel campaign accumulates metrics in worker
   processes; each completion ships a *delta snapshot* back and the
   parent folds it in with :meth:`MetricsRegistry.merge`.  Counter and
   histogram totals therefore come out identical between a serial run
   and a process-pool run of the same cells (gauges are last-write-wins
   by nature).
3. **Bounded.**  Labelled series are capped per metric name
   (:data:`MAX_SERIES_PER_METRIC`); overflow folds into a single
   ``overflow="true"`` series instead of growing without limit, so a
   bug that labels a metric with, say, raw addresses cannot exhaust
   memory.

Snapshots are plain JSON-safe dicts, exported either as JSONL (one
metric series per line, the format ``scripts/validate_telemetry.py``
checks) or as a Prometheus text snapshot.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Hard cap on distinct label combinations per metric name.
MAX_SERIES_PER_METRIC = 512

#: Default histogram buckets, tuned for span/window durations (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_LABEL_SEP = "|"


def series_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical flat key for one labelled series (stable ordering)."""
    if not labels:
        return name
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{_LABEL_SEP}{parts}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key` (label values come back as strings)."""
    if _LABEL_SEP not in key:
        return key, {}
    name, _, packed = key.partition(_LABEL_SEP)
    labels: Dict[str, str] = {}
    for part in packed.split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


@dataclass
class Histogram:
    """Fixed-bucket histogram (cumulative export, Prometheus-style).

    ``counts`` has ``len(buckets) + 1`` slots; the last one is the
    overflow (``+Inf``) bucket.  Only bucket counts, the value sum, and
    the observation count are kept -- exactly the parts that merge and
    diff cleanly across processes.
    """

    buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        if len(self.counts) != len(self.buckets) + 1:
            raise ValueError("histogram counts must have len(buckets) + 1 slots")

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(
            buckets=tuple(data["buckets"]),
            counts=list(data["counts"]),
            sum=float(data["sum"]),
            count=int(data["count"]),
        )


class MetricsRegistry:
    """Process-local registry of counters, gauges, and histograms.

    Args:
        enabled: Initial state; the runtime singleton starts disabled
            and is flipped by :func:`repro.obs.configure`.

    All mutating calls are no-ops while :attr:`enabled` is False -- that
    single boolean is the telemetry layer's entire disabled-mode cost.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series_per_name: Dict[str, int] = {}
        self._hist_buckets: Dict[str, Tuple[float, ...]] = {}
        self.series_dropped = 0

    # -- mutation ------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to a counter series (created at 0 on first use)."""
        if not self.enabled:
            return
        key = self._admit(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to ``value`` (last write wins)."""
        if not self.enabled:
            return
        key = self._admit(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into a histogram series."""
        if not self.enabled:
            return
        key = self._admit(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                buckets = self._hist_buckets.get(name, DEFAULT_TIME_BUCKETS)
                hist = self._histograms[key] = Histogram(buckets=buckets)
            hist.observe(value)

    def declare_histogram(self, name: str, buckets: Sequence[float]) -> None:
        """Pick non-default buckets for a histogram name (before first use)."""
        self._hist_buckets[name] = tuple(sorted(buckets))

    def _admit(self, name: str, labels: Dict[str, object]) -> str:
        """Series key for (name, labels), enforcing the cardinality cap."""
        if not labels:
            return name
        key = series_key(name, labels)
        with self._lock:
            seen = self._series_per_name.setdefault(name, 0)
            if (
                key not in self._counters
                and key not in self._gauges
                and key not in self._histograms
            ):
                if seen >= MAX_SERIES_PER_METRIC:
                    self.series_dropped += 1
                    return series_key(name, {"overflow": "true"})
                self._series_per_name[name] = seen + 1
        return key

    # -- introspection -------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0 when absent)."""
        return self._counters.get(series_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of one gauge series (None when absent)."""
        return self._gauges.get(series_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        """One histogram series (None when absent)."""
        return self._histograms.get(series_key(name, labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label series."""
        return sum(
            v for k, v in self._counters.items() if parse_series_key(k)[0] == name
        )

    # -- snapshot / merge / diff ---------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe copy of the full registry state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.to_dict() for k, h in self._histograms.items()},
            }

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold another process's snapshot (or delta) into this registry.

        Counters and histogram bucket counts add; gauges overwrite.
        Ignores the :attr:`enabled` flag -- merging completions into a
        just-disabled parent must not silently drop them.
        """
        if not snapshot:
            return
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in snapshot.get("gauges", {}).items():
                self._gauges[key] = value
            for key, data in snapshot.get("histograms", {}).items():
                incoming = Histogram.from_dict(data)
                current = self._histograms.get(key)
                if current is None:
                    self._histograms[key] = incoming
                    continue
                if current.buckets != incoming.buckets:
                    raise ValueError(
                        f"histogram bucket mismatch while merging '{key}'"
                    )
                for i, c in enumerate(incoming.counts):
                    current.counts[i] += c
                current.sum += incoming.sum
                current.count += incoming.count

    def clear(self) -> None:
        """Drop all series (the enabled flag is left untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._series_per_name.clear()
            self.series_dropped = 0


def diff_snapshots(after: dict, before: dict) -> dict:
    """The delta snapshot ``after - before`` (what one cell contributed).

    Counters and histogram counts subtract (series absent from
    ``before`` pass through); gauges take their ``after`` values.  Used
    by pool workers to ship per-cell metric contributions to the parent
    without double-counting state inherited across ``fork``.
    """
    counters = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0)
        if delta:
            counters[key] = delta
    histograms = {}
    for key, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(key)
        if prior is None:
            histograms[key] = data
            continue
        counts = [a - b for a, b in zip(data["counts"], prior["counts"])]
        if any(counts):
            histograms[key] = {
                "buckets": list(data["buckets"]),
                "counts": counts,
                "sum": data["sum"] - prior["sum"],
                "count": data["count"] - prior["count"],
            }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def snapshot_to_jsonl(snapshot: dict) -> List[str]:
    """One JSON line per metric series, sorted for stable output."""
    lines: List[str] = []
    for key in sorted(snapshot.get("counters", {})):
        name, labels = parse_series_key(key)
        lines.append(
            json.dumps(
                {
                    "kind": "counter",
                    "name": name,
                    "labels": labels,
                    "value": snapshot["counters"][key],
                },
                sort_keys=True,
            )
        )
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = parse_series_key(key)
        lines.append(
            json.dumps(
                {
                    "kind": "gauge",
                    "name": name,
                    "labels": labels,
                    "value": snapshot["gauges"][key],
                },
                sort_keys=True,
            )
        )
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = parse_series_key(key)
        entry = {"kind": "histogram", "name": name, "labels": labels}
        entry.update(snapshot["histograms"][key])
        lines.append(json.dumps(entry, sort_keys=True))
    return lines


def snapshot_from_jsonl(path: Union[str, Path]) -> dict:
    """Rebuild a snapshot dict from a ``metrics.jsonl`` file."""
    snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        key = series_key(entry["name"], entry.get("labels", {}))
        kind = entry.get("kind")
        if kind == "counter":
            snapshot["counters"][key] = entry["value"]
        elif kind == "gauge":
            snapshot["gauges"][key] = entry["value"]
        elif kind == "histogram":
            snapshot["histograms"][key] = {
                "buckets": entry["buckets"],
                "counts": entry["counts"],
                "sum": entry["sum"],
                "count": entry["count"],
            }
        else:
            raise ValueError(f"unknown metric kind {kind!r} in {path}")
    return snapshot


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text-exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping -- an unescaped one silently truncates or
    corrupts the series on the scraper side.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Prometheus text-exposition rendering of a snapshot."""
    out: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            out.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for key in sorted(snapshot.get("counters", {})):
        name, labels = parse_series_key(key)
        prom = _prom_name(name) + "_total"
        type_line(prom, "counter")
        out.append(f"{prom}{_prom_labels(labels)} {snapshot['counters'][key]}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = parse_series_key(key)
        prom = _prom_name(name)
        type_line(prom, "gauge")
        out.append(f"{prom}{_prom_labels(labels)} {snapshot['gauges'][key]}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = parse_series_key(key)
        prom = _prom_name(name)
        type_line(prom, "histogram")
        data = snapshot["histograms"][key]
        cumulative = 0
        for upper, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            out.append(
                f"{prom}_bucket{_prom_labels(labels, {'le': repr(float(upper))})}"
                f" {cumulative}"
            )
        out.append(
            f"{prom}_bucket{_prom_labels(labels, {'le': '+Inf'})} {data['count']}"
        )
        out.append(f"{prom}_sum{_prom_labels(labels)} {data['sum']}")
        out.append(f"{prom}_count{_prom_labels(labels)} {data['count']}")
    return "\n".join(out) + "\n"


def filter_snapshot(snapshot: dict, prefixes: Iterable[str]) -> dict:
    """Subset of a snapshot whose metric names start with any prefix.

    The serial-vs-parallel equality contract holds for *semantic*
    counter families (``campaign.*``, ``mitigation.*``, ...); this is
    the helper tests use to compare exactly those.
    """
    prefixes = tuple(prefixes)

    def keep(section: Dict[str, object]) -> dict:
        return {
            k: v
            for k, v in section.items()
            if parse_series_key(k)[0].startswith(prefixes)
        }

    return {
        "counters": keep(snapshot.get("counters", {})),
        "gauges": keep(snapshot.get("gauges", {})),
        "histograms": keep(snapshot.get("histograms", {})),
    }


__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "MAX_SERIES_PER_METRIC",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "filter_snapshot",
    "parse_series_key",
    "series_key",
    "snapshot_from_jsonl",
    "snapshot_to_jsonl",
    "snapshot_to_prometheus",
]
