"""Live observability endpoint: /metrics, /healthz, /status over HTTP.

A tiny read-only introspection server built on the stdlib
``http.server`` -- no new dependencies, no write paths, and zero
presence unless explicitly started (the scheduler starts one when
``ServiceConfig.status_listen`` is set; ``runner run --serve-metrics``
starts one for plain runs).  Three routes:

* ``GET /metrics`` -- the process's current metrics snapshot in
  Prometheus text-exposition format (the same
  :func:`~repro.obs.metrics.snapshot_to_prometheus` rendering the
  post-run ``metrics.prom`` artifact uses, served live);
* ``GET /healthz`` -- machine-checkable liveness JSON from the owner's
  health provider; HTTP 200 while ``status`` is ``"ok"``, 503 once the
  owner reports itself degraded (so a load balancer or the CI smoke can
  gate on the status code alone);
* ``GET /status`` -- a richer JSON document from the owner's status
  provider (the scheduler publishes per-worker heartbeat lag,
  slow-worker flags, leases in flight, cache hit rate, and cell
  progress).

Providers are plain zero-argument callables returning JSON-serializable
dicts.  The scheduler rebuilds its published snapshot once per loop
tick and swaps the reference atomically, so handler threads never read
half-mutated scheduler state.  Handler threads are daemonized and the
server socket closes with :meth:`LiveEndpoint.close`; nothing here ever
blocks the owning process's shutdown.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.metrics import snapshot_to_prometheus
from repro.obs.runtime import METRICS

#: Content type Prometheus scrapers expect from a text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Provider = Callable[[], Dict[str, object]]


def _default_health() -> Dict[str, object]:
    return {"status": "ok", "telemetry_enabled": METRICS.enabled}


def _default_status() -> Dict[str, object]:
    return {"telemetry_enabled": METRICS.enabled}


class _Handler(BaseHTTPRequestHandler):
    """One GET router; the endpoint instance rides on the server."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        endpoint = self.server.endpoint
        if METRICS.enabled:
            METRICS.inc("obs.http_requests", path=path)
        if path == "/metrics":
            body = snapshot_to_prometheus(METRICS.snapshot()).encode()
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = endpoint._call(endpoint.health_provider, _default_health)
            code = 200 if payload.get("status") == "ok" else 503
            self._reply_json(code, payload)
        elif path == "/status":
            payload = endpoint._call(endpoint.status_provider, _default_status)
            self._reply_json(200, payload)
        else:
            self._reply_json(404, {"error": f"unknown path {path!r}"})

    def _reply_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, default=str, indent=2).encode() + b"\n"
        self._reply(code, "application/json", body)

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # quiet: observability must not spam the observed run's logs


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    endpoint: "LiveEndpoint"


class LiveEndpoint:
    """One read-only HTTP introspection server on a background thread.

    Args:
        listen: ``"host:port"`` to bind (port 0 binds an ephemeral port;
            the resolved address is :attr:`address` after :meth:`start`).
        status_provider: Zero-arg callable for ``/status`` payloads.
        health_provider: Zero-arg callable for ``/healthz`` payloads; it
            must include a ``"status"`` key (``"ok"`` -> HTTP 200,
            anything else -> 503).
    """

    def __init__(
        self,
        listen: str = "127.0.0.1:0",
        *,
        status_provider: Optional[Provider] = None,
        health_provider: Optional[Provider] = None,
    ) -> None:
        host, _, port = listen.rpartition(":")
        if not host or not port.lstrip("-").isdigit():
            raise ValueError(f"listen must be 'host:port', got {listen!r}")
        self._bind = (host, int(port))
        self.status_provider = status_provider
        self.health_provider = health_provider
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[str] = None

    def _call(self, provider: Optional[Provider], default: Provider) -> dict:
        try:
            payload = provider() if provider is not None else default()
        except Exception as error:  # a provider bug must not kill the server
            return {"status": "error", "error": str(error)}
        return payload if isinstance(payload, dict) else {"value": payload}

    def start(self) -> str:
        """Bind and serve on a daemon thread; returns the bound address."""
        if self._server is not None:
            return self.address
        server = _Server(self._bind, _Handler)
        server.endpoint = self
        self._server = server
        host, port = server.server_address[:2]
        self.address = f"{host}:{port}"
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-live-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "LiveEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["LiveEndpoint", "PROMETHEUS_CONTENT_TYPE"]
