"""Rubix-D: dynamic randomized line-to-row mapping (Section 5).

Rubix-D splits the line address into three fields::

    [ row-address (r bits) | gang-in-row (p bits) | line-in-gang (k bits) ]

The k+p low bits pass through unchanged; only the global row address is
randomized.  The p bits select one of 2^p *vertical groups* (same gang
position across all rows), and each v-group owns an independent xor
remap circuit (currKey, nextKey, Ptr).  Because every gang position in a
row uses a different key, the gangs that co-reside in a baseline row are
scattered to unrelated rows -- this is the vertical remapping that fixes
the xor-linearity pitfall of Section 5.2.

Remapping advances with ~1% probability per activation (modeled
deterministically via fractional accumulation so runs are reproducible);
each episode that actually swaps costs 3 ACTs plus 2x gang-size reads
and writes (Section 5.4), which the performance and power models charge.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.gangs import GangSplitter
from repro.core.remap_engine import XorRemapEngine, gather_translate, snapshot_engines
from repro.dram.config import Coordinate, DRAMConfig
from repro.mapping.base import AddressMapping, MappedTrace
from repro.perf.backends import register, resolve_backend
from repro.utils.bitops import bit_length_for, is_power_of_two, mask
from repro.utils.prng import derive_key


class RubixDMapping(AddressMapping):
    """Rubix-D with per-vertical-group xor remap circuits.

    Args:
        config: DRAM geometry.
        gang_size: Lines per gang (k = log2(gang_size) bits pass through).
        seed: Boot-time seed; per-v-group keys derive from it.
        remap_rate: Probability of a remap episode per activation
            (paper default 1%). Zero disables dynamic remapping, which
            is exactly the static keyed-xor design of Section 6.2.
        segments: Number of v-segments per v-group (Section 5.4); each
            segment gets its own remap circuit, shortening the remap
            period at proportional SRAM cost.  Must divide the row space.
    """

    def __init__(
        self,
        config: DRAMConfig,
        *,
        gang_size: int = 4,
        seed: int = 0xD1CE,
        remap_rate: float = 0.01,
        segments: int = 1,
    ) -> None:
        super().__init__(config)
        if not 0.0 <= remap_rate <= 1.0:
            raise ValueError(f"remap_rate must be in [0, 1], got {remap_rate}")
        if not is_power_of_two(segments):
            raise ValueError(f"segments must be a power of two, got {segments}")
        self.gang_size = gang_size
        self.remap_rate = remap_rate
        self.segments = segments
        self._seed = seed
        self.splitter = GangSplitter(config.line_addr_bits, gang_size)
        self.k_bits = self.splitter.k_bits
        self.p_bits = config.col_bits - self.k_bits
        if self.p_bits < 0:
            raise ValueError("gang size exceeds the row size")
        self.row_addr_bits = config.line_addr_bits - config.col_bits
        self.segment_bits = bit_length_for(segments)
        if self.segment_bits >= self.row_addr_bits:
            raise ValueError(
                f"{segments} segments need more row bits than the {self.row_addr_bits}"
                " available"
            )
        self.vgroups = 1 << self.p_bits
        self.engines: List[XorRemapEngine] = [
            XorRemapEngine(
                nbits=self.row_addr_bits - self.segment_bits,
                seed=derive_key(seed, f"rubix-d/vg{vg}/seg{seg}", 64),
            )
            for vg in range(self.vgroups)
            for seg in range(segments)
        ]
        self._pending_steps: np.ndarray = np.zeros(len(self.engines), dtype=np.float64)
        self.total_swaps = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        suffix = "" if self.remap_rate > 0 else ", static"
        return f"Rubix-D (GS{self.gang_size}{suffix})"

    @property
    def cache_key(self) -> str:
        return (
            f"{self.name}/seed={self._seed:x}/rate={self.remap_rate}"
            f"/segments={self.segments}"
        )

    @property
    def storage_bytes(self) -> int:
        """Total SRAM across all remap circuits (512 B at GS4, §5.3)."""
        # The paper budgets 16 B per circuit (two keys + pointer with
        # alignment); engines report their raw register bytes.
        return sum(max(16, engine.storage_bytes) for engine in self.engines)

    def _engine_index(self, vgroup: int, segment: int) -> int:
        return vgroup * self.segments + segment

    # --- address translation ----------------------------------------------
    def _split_fields(self, line_addr):
        """Return (row_addr, vgroup, line_in_gang) fields."""
        k, p = self.k_bits, self.p_bits
        if isinstance(line_addr, np.ndarray):
            v = line_addr.astype(np.uint64)
            row_addr = v >> np.uint64(k + p)
            vgroup = (v >> np.uint64(k)) & np.uint64(mask(p))
            line_in_gang = v & np.uint64(mask(k))
            return row_addr, vgroup, line_in_gang
        row_addr = line_addr >> (k + p)
        vgroup = (line_addr >> k) & mask(p)
        line_in_gang = line_addr & mask(k)
        return row_addr, vgroup, line_in_gang

    def _decode(self, remapped_row: int, vgroup: int, line_in_gang: int) -> Coordinate:
        """Decode the remapped global row address into a coordinate.

        The remapped row bits are consumed LSB-first as bank, rank,
        channel, then row -- xor remapping randomizes all bits, so this
        order only fixes which physical resources a given id means.
        """
        c = self.config
        bank = remapped_row & mask(c.bank_bits)
        rank = (remapped_row >> c.bank_bits) & mask(c.rank_bits)
        channel = (remapped_row >> (c.bank_bits + c.rank_bits)) & mask(c.channel_bits)
        row = remapped_row >> (c.bank_bits + c.rank_bits + c.channel_bits)
        col = (vgroup << self.k_bits) | line_in_gang
        return Coordinate(channel=channel, rank=rank, bank=bank, row=row, col=col)

    def remap_row_addr(self, row_addr: int, vgroup: int) -> int:
        """Translate one global row address within its v-group."""
        segment = row_addr & mask(self.segment_bits)
        upper = row_addr >> self.segment_bits
        engine = self.engines[self._engine_index(vgroup, segment)]
        return (engine.translate(upper) << self.segment_bits) | segment

    def translate(self, line_addr: int) -> Coordinate:
        self._check_line(line_addr)
        row_addr, vgroup, line_in_gang = self._split_fields(line_addr)
        remapped = self.remap_row_addr(row_addr, vgroup)
        return self._decode(remapped, vgroup, line_in_gang)

    def translate_trace(
        self, lines: np.ndarray, *, validate: bool = True, backend: Optional[str] = None
    ) -> MappedTrace:
        """Translate a whole chunk in one vectorized gather pass.

        Per-access engine ids (``vgroup * segments + segment``) index
        snapshot arrays of every circuit's registers, so the chunk
        translates in a handful of elementwise passes instead of a
        ``vgroups x segments`` Python loop of masked sub-translations.
        Domain validation is one max-scan per chunk (skippable via
        ``validate=False`` when the caller already checked the window);
        the intermediate math runs in uint32 whenever the line address
        fits, halving memory traffic.  Output is bit-identical to
        per-element :meth:`translate` on every backend tier:
        ``backend`` picks ``"reference"`` (masked per-engine loop),
        ``"numpy"`` (this gather pass), or ``"numba"`` (one fused jit
        loop); None resolves via ``REPRO_KERNEL_BACKEND`` then numpy.
        """
        resolved = resolve_backend(backend)
        if resolved == "reference":
            mapped = self._translate_trace_loop(lines, validate=validate)
            # The loop computes in uint64; narrow to the numpy tier's
            # output dtype so every tier is bit-identical, dtype included.
            out = np.uint32 if self.config.line_addr_bits <= 32 else np.uint64
            return MappedTrace(
                flat_bank=np.asarray(mapped.flat_bank).astype(out, copy=False),
                row=np.asarray(mapped.row).astype(out, copy=False),
                col=np.asarray(mapped.col).astype(out, copy=False),
                rows_per_bank=mapped.rows_per_bank,
            )
        if resolved == "numba":
            from repro.perf.numba_kernels import translate_trace_numba

            return translate_trace_numba(self, lines, validate=validate)
        lines = np.asarray(lines, dtype=np.uint64)
        if validate and lines.size and int(lines.max()) >= self.config.total_lines:
            raise ValueError(
                f"line addresses exceed the {self.config.capacity_bytes} byte memory"
            )
        dtype = np.uint32 if self.config.line_addr_bits <= 32 else np.uint64
        dt = dtype  # numpy scalar-type constructor
        v = lines.astype(dtype, copy=False)
        k, p, sb = self.k_bits, self.p_bits, self.segment_bits
        row_addr = v >> dt(k + p)
        vgroup = (v >> dt(k)) & dt(mask(p))
        line_in_gang = v & dt(mask(k))
        if sb:
            segment = row_addr & dt(mask(sb))
            upper = row_addr >> dt(sb)
            engine_idx = (vgroup << dt(sb)) | segment
        else:
            segment = None
            upper = row_addr
            engine_idx = vgroup
        curr, nxt, ptr = snapshot_engines(self.engines, dtype=dtype)
        remapped = gather_translate(upper, engine_idx, curr, nxt, ptr)
        if sb:
            remapped = (remapped << dt(sb)) | segment
        return self._decode_trace(remapped, vgroup, line_in_gang)

    def _translate_trace_loop(
        self, lines: np.ndarray, *, validate: bool = True
    ) -> MappedTrace:
        """Pre-vectorization reference: one masked pass per remap engine.

        Kept for the equivalence property tests, as the registry's
        ``"reference"`` backend, and as the baseline
        ``scripts/bench_hotpath.py`` measures the other tiers against.
        """
        lines = np.asarray(lines, dtype=np.uint64)
        row_addr, vgroup, line_in_gang = self._split_fields(lines)
        remapped = np.empty_like(row_addr)
        seg_mask = np.uint64(mask(self.segment_bits))
        seg_shift = np.uint64(self.segment_bits)
        segment = row_addr & seg_mask
        upper = row_addr >> seg_shift
        for vg in range(self.vgroups):
            vg_sel = vgroup == np.uint64(vg)
            if not vg_sel.any():
                continue
            for seg in range(self.segments):
                sel = vg_sel & (segment == np.uint64(seg)) if self.segments > 1 else vg_sel
                if not sel.any():
                    continue
                engine = self.engines[self._engine_index(vg, seg)]
                remapped[sel] = (
                    engine.translate(upper[sel], validate=validate) << seg_shift
                ) | np.uint64(seg)
        return self._decode_trace(remapped, vgroup, line_in_gang)

    def _decode_trace(
        self, remapped_row: np.ndarray, vgroup: np.ndarray, line_in_gang: np.ndarray
    ) -> MappedTrace:
        c = self.config
        dt = remapped_row.dtype.type
        bank = remapped_row & dt(mask(c.bank_bits))
        row = remapped_row >> dt(c.bank_bits + c.rank_bits + c.channel_bits)
        col = (vgroup << dt(self.k_bits)) | line_in_gang
        if c.ranks == 1 and c.channels == 1:
            # Single-rank, single-channel geometries (the Table 1
            # baseline): the flat bank id IS the bank field.
            flat = bank
        else:
            rank = (remapped_row >> dt(c.bank_bits)) & dt(mask(c.rank_bits))
            channel = (remapped_row >> dt(c.bank_bits + c.rank_bits)) & dt(
                mask(c.channel_bits)
            )
            flat = (channel * dt(c.ranks) + rank) * dt(c.banks) + bank
        return MappedTrace(flat_bank=flat, row=row, col=col, rows_per_bank=c.rows_per_bank)

    # --- dynamic remapping --------------------------------------------------
    def record_activations(
        self, counts_per_vgroup: np.ndarray, *, backend: Optional[str] = None
    ) -> int:
        """Advance remap circuits for observed activations.

        Args:
            counts_per_vgroup: Activation count attributed to each
                v-group (length ``self.vgroups``); with segments, counts
                are split evenly across a v-group's segments (the
                probabilistic trigger has no per-segment preference).
            backend: Kernel tier for the sweep advancement (see
                :meth:`XorRemapEngine.remap_steps`); all tiers leave the
                circuits in bit-identical states.

        Returns:
            Number of swap operations performed (for cost accounting).
        """
        counts = np.asarray(counts_per_vgroup, dtype=np.float64)
        if counts.shape != (self.vgroups,):
            raise ValueError(
                f"expected {self.vgroups} v-group counts, got shape {counts.shape}"
            )
        if self.remap_rate == 0.0:
            return 0
        swaps = 0
        per_engine = np.repeat(counts / self.segments, self.segments)
        self._pending_steps += per_engine * self.remap_rate
        whole = np.floor(self._pending_steps).astype(np.int64)
        self._pending_steps -= whole
        for index, steps in enumerate(whole):
            if steps > 0:
                swaps += self.engines[index].remap_steps(int(steps), backend=backend)
        self.total_swaps += swaps
        return swaps

    def swap_cost_commands(self) -> "dict[str, int]":
        """DRAM commands per swap at this gang size (§5.4)."""
        return {
            "activations": 3,
            "reads": 2 * self.gang_size,
            "writes": 2 * self.gang_size,
        }

    @property
    def remap_period_activations(self) -> float:
        """Activations to sweep one full v-segment (Section 5.4)."""
        space = 1 << (self.row_addr_bits - self.segment_bits)
        if self.remap_rate == 0.0:
            return float("inf")
        # A v-group sees ~1/vgroups of all activations; each episode
        # advances its pointer by one of `space` positions.
        return space / self.remap_rate


# ---------------------------------------------------------------------------
# Backend registry entries (see repro.perf.backends): uniform
# ``fn(mapping, lines, *, validate)`` callables over the same mapping.
# ---------------------------------------------------------------------------
@register("translate_trace", "reference")
def _translate_trace_reference_entry(mapping, lines, *, validate=True):
    return mapping._translate_trace_loop(lines, validate=validate)


@register("translate_trace", "numpy")
def _translate_trace_numpy_entry(mapping, lines, *, validate=True):
    return mapping.translate_trace(lines, validate=validate, backend="numpy")


__all__ = ["RubixDMapping"]
