"""Rubix-S: static randomized line-to-row mapping (Section 4).

On every memory access the controller encrypts the gang address with a
programmable-width cipher and accesses memory with the encrypted line
address.  The k line-in-gang bits pass through so each gang co-resides
in a row; everything above is scattered uniformly, breaking the spatial
correlation that creates hot rows.

The decode of the *encrypted* address into (channel, rank, bank, row,
col) uses a plain linear layout by default: because the encrypted bits
are uniformly random, the decode choice has no statistical effect, and
linear keeps the gang's lines adjacent in the row buffer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crypto.kcipher import KCipher
from repro.dram.config import Coordinate, DRAMConfig
from repro.mapping.base import AddressMapping, MappedTrace
from repro.mapping.linear import LinearMapping
from repro.utils.prng import derive_key


class RubixSMapping(AddressMapping):
    """Rubix-S with a gang size of 1-4 lines (GS1/GS2/GS4 in the paper).

    Args:
        config: DRAM geometry (16 GB baseline -> 28-bit line address).
        gang_size: Lines per encrypted gang (1, 2, or 4 in the paper;
            any power of two up to the row size is accepted).
        seed: Boot-time PRNG seed the 96-bit cipher key derives from.
        rounds: Cipher rounds (even; default 6).
        base_decode: Decode applied to the encrypted address (defaults
            to :class:`~repro.mapping.linear.LinearMapping`).
    """

    def __init__(
        self,
        config: DRAMConfig,
        *,
        gang_size: int = 4,
        seed: int = 0xC0FFEE,
        rounds: int = 6,
        base_decode: Optional[AddressMapping] = None,
    ) -> None:
        super().__init__(config)
        from repro.core.gangs import GangSplitter  # local to avoid cycle in docs

        self.gang_size = gang_size
        self.splitter = GangSplitter(config.line_addr_bits, gang_size)
        key = derive_key(seed, f"rubix-s/gs{gang_size}", 96)
        self._rounds = rounds
        self.cipher = KCipher(width=self.splitter.gang_bits, key=key, rounds=rounds)
        self.decode = base_decode or LinearMapping(config)

    @property
    def name(self) -> str:
        return f"Rubix-S (GS{self.gang_size})"

    @property
    def cache_key(self) -> str:
        return f"{self.name}/key={self.cipher.key:x}/rounds={self._rounds}"

    @property
    def storage_bytes(self) -> int:
        """Controller SRAM: just the cipher key/configuration (~16 B)."""
        return self.cipher.storage_bytes

    # ------------------------------------------------------------------
    def encrypt_line(self, line_addr: int) -> int:
        """The encrypted line address actually sent to DRAM."""
        self._check_line(line_addr)
        gang, offset = self.splitter.split(line_addr)
        return self.splitter.merge(self.cipher.encrypt(gang), offset)

    def decrypt_line(self, encrypted_addr: int) -> int:
        """Invert :meth:`encrypt_line` (controller-side reverse lookup)."""
        self._check_line(encrypted_addr)
        gang, offset = self.splitter.split(encrypted_addr)
        return self.splitter.merge(self.cipher.decrypt(gang), offset)

    def translate(self, line_addr: int) -> Coordinate:
        return self.decode.translate(self.encrypt_line(line_addr))

    def translate_trace(self, lines: np.ndarray, *, validate: bool = True) -> MappedTrace:
        lines = np.asarray(lines, dtype=np.uint64)
        # One domain scan for the whole chunk; the cipher and the decode
        # stage then skip their own per-call validation (the encrypted
        # address is in range by bijectivity).
        if validate and lines.size and int(lines.max()) >= self.config.total_lines:
            raise ValueError(
                f"line addresses exceed the {self.config.capacity_bytes} byte memory"
            )
        gang, offset = self.splitter.split(lines)
        encrypted = self.splitter.merge(self.cipher.encrypt(gang, validate=False), offset)
        return self.decode.translate_trace(encrypted, validate=False)

    def inverse(self, coord: Coordinate) -> int:
        return self.decrypt_line(self.decode.inverse(coord))


__all__ = ["RubixSMapping"]
