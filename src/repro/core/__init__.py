"""Rubix: randomized line-to-row mapping (the paper's contribution).

* :class:`repro.core.rubix_s.RubixSMapping` -- static randomization via a
  programmable-width cipher over the gang address (Section 4).
* :class:`repro.core.rubix_d.RubixDMapping` -- dynamic randomization via
  per-vertical-group xor remap circuits (Section 5).
* :class:`repro.core.rubix_keyed_xor.KeyedXorMapping` -- the static
  keyed-xor variant of Section 6.2 (Rubix-D without remapping).
"""

from repro.core.gangs import GangSplitter
from repro.core.remap_engine import XorRemapEngine
from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_keyed_xor import KeyedXorMapping
from repro.core.rubix_s import RubixSMapping

__all__ = [
    "GangSplitter",
    "XorRemapEngine",
    "RubixSMapping",
    "RubixDMapping",
    "KeyedXorMapping",
]
