"""Static keyed-xor randomization (Section 6.2).

Rubix-D's per-v-group xor circuits already randomize the line-to-row
mapping even if the dynamic sweep never runs: each gang-in-row position
xors its row address with an independent random key, so the gangs of a
baseline row scatter to unrelated rows.  Skipping the sweep avoids the
swap bandwidth/energy entirely; the mapping then stays fixed until
reboot, like Rubix-S, and the paper measures 0.9%-2.6% slowdown for this
variant with secure mitigations.
"""

from __future__ import annotations

from repro.core.rubix_d import RubixDMapping
from repro.dram.config import DRAMConfig


class KeyedXorMapping(RubixDMapping):
    """Rubix-D hardware with dynamic remapping disabled."""

    def __init__(self, config: DRAMConfig, *, gang_size: int = 4, seed: int = 0x5EED) -> None:
        super().__init__(config, gang_size=gang_size, seed=seed, remap_rate=0.0, segments=1)

    @property
    def name(self) -> str:
        return f"Keyed-Xor (GS{self.gang_size})"


__all__ = ["KeyedXorMapping"]
