"""Xor-based dynamic remap engine (Section 5.1, Figure 10).

One engine remaps an n-bit address space with three registers:

* ``currKey`` -- the key fully-remapped addresses use,
* ``nextKey`` -- the incremental xor the current sweep is applying,
* ``Ptr``    -- sweep position: physical locations below Ptr have already
  been remapped to the next key.

Translation of logical address L (two checks, one cycle in hardware):

1. ``L' = L xor currKey``
2. if ``L' < Ptr`` or ``(L' xor nextKey) < Ptr``: ``L' = L' xor nextKey``

A remap episode swaps the contents of physical location ``Ptr`` with
``Ptr xor nextKey`` (skipped when that partner was already visited, i.e.
``Ptr xor nextKey < Ptr``), then increments Ptr.  When Ptr wraps, the
epoch ends: ``currKey <- currKey xor nextKey`` and a fresh nextKey is
drawn -- exactly the walk shown in Figure 10.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.crypto.keys import KeySchedule
from repro.obs.profile import PROFILER
from repro.perf.backends import register, resolve_backend

IntOrArray = Union[int, np.ndarray]


class RemapSnapshot(NamedTuple):
    """The three architectural registers of one remap circuit."""

    curr_key: int
    next_key: int
    ptr: int


def snapshot_engines(
    engines: Sequence["XorRemapEngine"], dtype=np.uint64
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Stack the registers of many engines into gatherable arrays.

    Returns ``(curr_keys, next_keys, ptrs)``, each of length
    ``len(engines)`` in the given dtype -- the lookup tables
    :func:`gather_translate` indexes with a per-access engine id.
    """
    curr = np.fromiter((e.keys.curr_key for e in engines), dtype, count=len(engines))
    nxt = np.fromiter((e.keys.next_key for e in engines), dtype, count=len(engines))
    ptr = np.fromiter((e.ptr for e in engines), dtype, count=len(engines))
    return curr, nxt, ptr


def gather_translate(
    addr: np.ndarray,
    engine_idx: np.ndarray,
    curr_keys: np.ndarray,
    next_keys: np.ndarray,
    ptrs: np.ndarray,
) -> np.ndarray:
    """Translate a whole chunk through many engines in one pass.

    ``engine_idx`` selects each access's remap circuit; the circuit
    registers are gathered from the snapshot arrays and the two-check
    translation of :meth:`XorRemapEngine.translate` is applied to every
    element at once.  Domain validation is the caller's job (one check
    per chunk, not per engine -- see ``RubixDMapping.translate_trace``).
    """
    curr = curr_keys[engine_idx]
    nxt = next_keys[engine_idx]
    ptr = ptrs[engine_idx]
    translated = addr ^ curr
    partner = translated ^ nxt
    remapped = (translated < ptr) | (partner < ptr)
    return np.where(remapped, partner, translated)


class XorRemapEngine:
    """Remap circuit for one vertical group (or segment) of Rubix-D."""

    def __init__(self, nbits: int, seed: int) -> None:
        if nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {nbits}")
        self.nbits = nbits
        self.space = 1 << nbits
        self.keys = KeySchedule(nbits=nbits, seed=seed)
        self.ptr = 0
        self.swaps_performed = 0
        self.swaps_skipped = 0
        self.epochs_completed = 0

    # ------------------------------------------------------------------
    @property
    def curr_key(self) -> int:
        return self.keys.curr_key

    @property
    def next_key(self) -> int:
        return self.keys.next_key

    @property
    def storage_bytes(self) -> int:
        """SRAM for currKey + nextKey + Ptr (<= 8 B per circuit, §5.3)."""
        return 3 * ((self.nbits + 7) // 8)

    def snapshot(self) -> RemapSnapshot:
        """The circuit's architectural state (currKey, nextKey, Ptr)."""
        return RemapSnapshot(self.keys.curr_key, self.keys.next_key, self.ptr)

    # ------------------------------------------------------------------
    def translate(self, addr: IntOrArray, *, validate: bool = True) -> IntOrArray:
        """Logical -> physical translation under the in-progress sweep.

        Args:
            addr: Address or array of addresses in ``[0, 2^nbits)``.
            validate: Check the array path's domain (an O(n) max scan).
                Batch callers that already validated the chunk once pass
                ``False`` so hot loops stop paying per-engine scans; the
                scalar path always validates (it is O(1)).
        """
        if isinstance(addr, np.ndarray):
            v = addr.astype(np.uint64)
            if validate and v.size and int(v.max()) >= self.space:
                raise ValueError(f"address out of [0, 2^{self.nbits}) domain")
            curr = np.uint64(self.keys.curr_key)
            nxt = np.uint64(self.keys.next_key)
            ptr = np.uint64(self.ptr)
            translated = v ^ curr
            remapped = (translated < ptr) | ((translated ^ nxt) < ptr)
            return np.where(remapped, translated ^ nxt, translated)
        if not 0 <= addr < self.space:
            raise ValueError(f"address {addr} out of [0, 2^{self.nbits}) domain")
        translated = addr ^ self.keys.curr_key
        if translated < self.ptr or (translated ^ self.keys.next_key) < self.ptr:
            translated ^= self.keys.next_key
        return translated

    def remap_step(self) -> bool:
        """Perform one remap episode; returns True if a swap occurred.

        A swap moves the gang at physical location Ptr to Ptr xor nextKey
        (and vice versa); the caller charges the data-movement cost
        (3 ACTs + 2x gang-size CAS reads and writes at GS4, §5.4).
        """
        partner = self.ptr ^ self.keys.next_key
        swapped = partner > self.ptr
        if swapped:
            self.swaps_performed += 1
        else:
            self.swaps_skipped += 1
        self.ptr += 1
        if self.ptr == self.space:
            self.keys.advance_epoch()
            self.ptr = 0
            self.epochs_completed += 1
        return swapped

    def remap_steps(self, count: int, *, backend: Optional[str] = None) -> int:
        """Perform ``count`` episodes; returns the number of actual swaps.

        Closed form instead of walking episodes one by one: within an
        epoch the key is fixed, and position ``p`` swaps iff its partner
        ``p ^ nextKey`` is above it -- i.e. iff bit ``msb(nextKey)`` of
        ``p`` is clear, since xor-ing flips exactly nextKey's bits and
        the highest flipped bit decides the comparison.  The number of
        such positions in ``[Ptr, Ptr+take)`` is a two-term bit-count
        formula, so a call costs O(epochs crossed) regardless of count
        (the 1%-of-activations sweep used to pay a Python loop per
        episode on large windows).  Epoch wrap-around is exact: keys
        rotate and the pointer resets mid-count just as the stepwise
        walk would.

        ``backend="reference"`` (directly or via
        ``REPRO_KERNEL_BACKEND``) routes through the stepwise walk; the
        numpy and numba tiers are this closed form -- scalar math a JIT
        cannot improve.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        with PROFILER.phase("remap_steps"):
            if resolve_backend(backend) == "reference":
                return self._remap_steps_loop(count)
            total = 0
            remaining = count
            while remaining > 0:
                take = min(remaining, self.space - self.ptr)
                swapped = _swaps_in_range(self.ptr, self.ptr + take, self.keys.next_key)
                self.swaps_performed += swapped
                self.swaps_skipped += take - swapped
                self.ptr += take
                total += swapped
                remaining -= take
                if self.ptr == self.space:
                    self.keys.advance_epoch()
                    self.ptr = 0
                    self.epochs_completed += 1
            return total

    def _remap_steps_loop(self, count: int, *, backend: Optional[str] = None) -> int:
        """Stepwise reference for :meth:`remap_steps` (tests/benchmarks).

        Walks ``count`` episodes through :meth:`remap_step` exactly as
        the pre-closed-form implementation did; counters, pointer, and
        the key schedule end in the same state as :meth:`remap_steps`.
        ``backend`` is accepted (and ignored -- this *is* the reference
        tier) so harnesses can swap this in for :meth:`remap_steps`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return sum(1 for _ in range(count) if self.remap_step())

    # ------------------------------------------------------------------
    def physical_layout(self) -> np.ndarray:
        """Full logical->physical table (tests/small spaces only)."""
        if self.nbits > 20:
            raise ValueError("layout dump limited to 20-bit spaces")
        return np.asarray(
            self.translate(np.arange(self.space, dtype=np.uint64)), dtype=np.uint64
        )

    def __repr__(self) -> str:
        return (
            f"XorRemapEngine(nbits={self.nbits}, curr={self.curr_key:#x}, "
            f"next={self.next_key:#x}, ptr={self.ptr})"
        )


def _swaps_in_range(lo: int, hi: int, next_key: int) -> int:
    """Count positions ``p`` in ``[lo, hi)`` with ``p ^ next_key > p``.

    That holds iff bit ``h = msb(next_key)`` of ``p`` is clear.  Counting
    integers below ``m`` with bit ``h`` clear is ``2^h`` per full
    ``2^(h+1)`` period plus a clamped remainder; the range count is the
    difference of two such prefix counts.  ``next_key`` is nonzero by
    construction (:class:`~repro.crypto.keys.KeySchedule` redraws zero).
    """
    h = next_key.bit_length() - 1
    half = 1 << h
    period = half << 1

    def below(m: int) -> int:
        return (m >> (h + 1)) * half + min(m & (period - 1), half)

    return below(hi) - below(lo)


# ---------------------------------------------------------------------------
# Backend registry entries (see repro.perf.backends): uniform
# ``fn(engine, count)`` callables mutating the engine's sweep state.
# ---------------------------------------------------------------------------
@register("remap_steps", "reference")
def _remap_steps_reference_entry(engine: XorRemapEngine, count: int) -> int:
    return engine._remap_steps_loop(count)


@register("remap_steps", "numpy")
def _remap_steps_numpy_entry(engine: XorRemapEngine, count: int) -> int:
    return engine.remap_steps(count, backend="numpy")


__all__ = [
    "XorRemapEngine",
    "RemapSnapshot",
    "snapshot_engines",
    "gather_translate",
]
