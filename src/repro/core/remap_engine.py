"""Xor-based dynamic remap engine (Section 5.1, Figure 10).

One engine remaps an n-bit address space with three registers:

* ``currKey`` -- the key fully-remapped addresses use,
* ``nextKey`` -- the incremental xor the current sweep is applying,
* ``Ptr``    -- sweep position: physical locations below Ptr have already
  been remapped to the next key.

Translation of logical address L (two checks, one cycle in hardware):

1. ``L' = L xor currKey``
2. if ``L' < Ptr`` or ``(L' xor nextKey) < Ptr``: ``L' = L' xor nextKey``

A remap episode swaps the contents of physical location ``Ptr`` with
``Ptr xor nextKey`` (skipped when that partner was already visited, i.e.
``Ptr xor nextKey < Ptr``), then increments Ptr.  When Ptr wraps, the
epoch ends: ``currKey <- currKey xor nextKey`` and a fresh nextKey is
drawn -- exactly the walk shown in Figure 10.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.crypto.keys import KeySchedule

IntOrArray = Union[int, np.ndarray]


class XorRemapEngine:
    """Remap circuit for one vertical group (or segment) of Rubix-D."""

    def __init__(self, nbits: int, seed: int) -> None:
        if nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {nbits}")
        self.nbits = nbits
        self.space = 1 << nbits
        self.keys = KeySchedule(nbits=nbits, seed=seed)
        self.ptr = 0
        self.swaps_performed = 0
        self.swaps_skipped = 0
        self.epochs_completed = 0

    # ------------------------------------------------------------------
    @property
    def curr_key(self) -> int:
        return self.keys.curr_key

    @property
    def next_key(self) -> int:
        return self.keys.next_key

    @property
    def storage_bytes(self) -> int:
        """SRAM for currKey + nextKey + Ptr (<= 8 B per circuit, §5.3)."""
        return 3 * ((self.nbits + 7) // 8)

    # ------------------------------------------------------------------
    def translate(self, addr: IntOrArray) -> IntOrArray:
        """Logical -> physical translation under the in-progress sweep."""
        if isinstance(addr, np.ndarray):
            v = addr.astype(np.uint64)
            if v.size and int(v.max()) >= self.space:
                raise ValueError(f"address out of [0, 2^{self.nbits}) domain")
            curr = np.uint64(self.keys.curr_key)
            nxt = np.uint64(self.keys.next_key)
            ptr = np.uint64(self.ptr)
            translated = v ^ curr
            remapped = (translated < ptr) | ((translated ^ nxt) < ptr)
            return np.where(remapped, translated ^ nxt, translated)
        if not 0 <= addr < self.space:
            raise ValueError(f"address {addr} out of [0, 2^{self.nbits}) domain")
        translated = addr ^ self.keys.curr_key
        if translated < self.ptr or (translated ^ self.keys.next_key) < self.ptr:
            translated ^= self.keys.next_key
        return translated

    def remap_step(self) -> bool:
        """Perform one remap episode; returns True if a swap occurred.

        A swap moves the gang at physical location Ptr to Ptr xor nextKey
        (and vice versa); the caller charges the data-movement cost
        (3 ACTs + 2x gang-size CAS reads and writes at GS4, §5.4).
        """
        partner = self.ptr ^ self.keys.next_key
        swapped = partner > self.ptr
        if swapped:
            self.swaps_performed += 1
        else:
            self.swaps_skipped += 1
        self.ptr += 1
        if self.ptr == self.space:
            self.keys.advance_epoch()
            self.ptr = 0
            self.epochs_completed += 1
        return swapped

    def remap_steps(self, count: int) -> int:
        """Perform ``count`` episodes; returns the number of actual swaps.

        The skip pattern depends on Ptr and nextKey, so episodes are
        walked individually; count is bounded by the remapping rate
        (about 1% of chunk activations), keeping this loop cheap.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return sum(1 for _ in range(count) if self.remap_step())

    # ------------------------------------------------------------------
    def physical_layout(self) -> np.ndarray:
        """Full logical->physical table (tests/small spaces only)."""
        if self.nbits > 20:
            raise ValueError("layout dump limited to 20-bit spaces")
        return np.asarray(
            self.translate(np.arange(self.space, dtype=np.uint64)), dtype=np.uint64
        )

    def __repr__(self) -> str:
        return (
            f"XorRemapEngine(nbits={self.nbits}, curr={self.curr_key:#x}, "
            f"next={self.next_key:#x}, ptr={self.ptr})"
        )


__all__ = ["XorRemapEngine"]
