"""Gang addressing (Section 4.4).

Line-level address encryption eliminates hot rows but also row-buffer
hits.  Rubix therefore randomizes *gangs* of 1-4 contiguous lines: the k
low line-address bits (the line-in-gang) pass through unchanged and only
the remaining gang address is randomized, so lines of a gang co-reside in
a row and provide temporal locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.utils.bitops import bit_length_for, is_power_of_two, mask

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class GangSplitter:
    """Splits an n-bit line address into (gang address, line-in-gang).

    Args:
        line_addr_bits: Total line-address width n.
        gang_size: Lines per gang (power of two, >= 1).  Gang size 1
            (k = 0) degenerates to line-level randomization.
    """

    line_addr_bits: int
    gang_size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.gang_size):
            raise ValueError(f"gang_size must be a power of two, got {self.gang_size}")
        if self.k_bits >= self.line_addr_bits:
            raise ValueError(
                f"gang of {self.gang_size} lines leaves no gang-address bits "
                f"in a {self.line_addr_bits}-bit address"
            )

    @property
    def k_bits(self) -> int:
        """Line-in-gang bits (k in the paper's Figure 6)."""
        return bit_length_for(self.gang_size)

    @property
    def gang_bits(self) -> int:
        """Gang-address width (n - k); this is the cipher width."""
        return self.line_addr_bits - self.k_bits

    def split(self, line_addr: IntOrArray) -> Tuple[IntOrArray, IntOrArray]:
        """Return ``(gang_address, line_in_gang)``."""
        k = self.k_bits
        if isinstance(line_addr, np.ndarray):
            v = line_addr.astype(np.uint64)
            return v >> np.uint64(k), v & np.uint64(mask(k))
        return line_addr >> k, line_addr & mask(k)

    def merge(self, gang_addr: IntOrArray, line_in_gang: IntOrArray) -> IntOrArray:
        """Reassemble a line address from its parts."""
        k = self.k_bits
        if isinstance(gang_addr, np.ndarray):
            return (gang_addr.astype(np.uint64) << np.uint64(k)) | line_in_gang
        return (gang_addr << k) | line_in_gang


__all__ = ["GangSplitter"]
