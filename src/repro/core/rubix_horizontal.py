"""Horizontal xor remapping: the Section 5.2 pitfall, made concrete.

A single xor key over the whole line address *does* randomize where each
row's content lives -- but xor is linear, so the 128 lines that shared a
row under the baseline mapping still share a row afterwards (their high
address bits are identical, so one key moves them together).  Hot rows
survive untouched.

This mapping exists to demonstrate that pitfall in tests, experiments,
and the ablation study; Rubix-D fixes it by remapping *vertically* with
an independent key per gang-in-row position.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.config import Coordinate, DRAMConfig
from repro.mapping.base import AddressMapping, MappedTrace
from repro.mapping.intel import CoffeeLakeMapping
from repro.utils.bitops import mask
from repro.utils.prng import derive_key


class HorizontalXorMapping(AddressMapping):
    """Whole-address xor with one key, decoded like Coffee Lake.

    Args:
        config: DRAM geometry.
        seed: Key seed (a fresh key per boot, like Rubix-D's epochs).
        base_decode: Decode applied to the xored address (Coffee Lake by
            default, so the co-residency structure is the baseline's).
    """

    def __init__(
        self,
        config: DRAMConfig,
        *,
        seed: int = 0x0123,
        base_decode: Optional[AddressMapping] = None,
    ) -> None:
        super().__init__(config)
        self.key = derive_key(seed, "horizontal-xor", config.line_addr_bits)
        self.decode = base_decode or CoffeeLakeMapping(config)

    @property
    def name(self) -> str:
        return "Horizontal-Xor"

    @property
    def cache_key(self) -> str:
        return f"{self.name}/key={self.key:x}"

    def translate(self, line_addr: int) -> Coordinate:
        self._check_line(line_addr)
        return self.decode.translate(line_addr ^ self.key)

    def translate_trace(self, lines: np.ndarray, *, validate: bool = True) -> MappedTrace:
        lines = np.asarray(lines, dtype=np.uint64)
        # The xored address stays in range iff the input does, so the
        # decode stage's own scan is redundant either way.
        if validate and lines.size and int(lines.max()) >= self.config.total_lines:
            raise ValueError(
                f"line addresses exceed the {self.config.capacity_bytes} byte memory"
            )
        return self.decode.translate_trace(lines ^ np.uint64(self.key), validate=False)

    def inverse(self, coord: Coordinate) -> int:
        return self.decode.inverse(coord) ^ self.key

    def lines_stay_together(self) -> bool:
        """The linearity property: row-mates remain row-mates.

        True by construction -- kept as an executable statement of the
        pitfall for documentation and tests.
        """
        row_mask = ~mask(self.config.col_bits) & mask(self.config.line_addr_bits)
        base = 0x137 << self.config.col_bits
        rows = {
            self.config.global_row(self.translate((base | c) & mask(self.config.line_addr_bits)))
            for c in range(self.config.lines_per_row)
        }
        return len(rows) == 1 and bool(row_mask)


__all__ = ["HorizontalXorMapping"]
