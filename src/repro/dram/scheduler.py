"""Memory-controller scheduling policies.

The baseline system uses first-ready FCFS (FR-FCFS): among queued
requests, prefer the oldest one that hits an open row; otherwise issue
the oldest request.  Plain FCFS is provided for comparison and testing.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from repro.dram.bank import Bank
from repro.dram.config import Coordinate, DRAMConfig


class Scheduler(abc.ABC):
    """Selects the next queued request index to issue."""

    @abc.abstractmethod
    def select(
        self,
        queue: Sequence["QueuedRequest"],
        banks: Dict[int, Bank],
        config: DRAMConfig,
    ) -> Optional[int]:
        """Return the index into ``queue`` to issue next, or None if empty."""


class QueuedRequest:
    """A request waiting in the controller queue.

    Attributes:
        coord: Decoded DRAM coordinate.
        arrival: Arrival time at the controller (seconds).
        request_id: Monotonic id preserving program order.
    """

    __slots__ = ("coord", "arrival", "request_id")

    def __init__(self, coord: Coordinate, arrival: float, request_id: int) -> None:
        self.coord = coord
        self.arrival = arrival
        self.request_id = request_id


class FCFSScheduler(Scheduler):
    """Strictly issue the oldest request."""

    def select(
        self,
        queue: Sequence[QueuedRequest],
        banks: Dict[int, Bank],
        config: DRAMConfig,
    ) -> Optional[int]:
        return 0 if queue else None


class FRFCFSScheduler(Scheduler):
    """First-ready FCFS: oldest row-buffer hit first, else oldest request.

    This is the Table-1 baseline policy; it maximizes row-buffer hits and
    so *minimizes* activations, which makes it the conservative choice for
    evaluating activation-driven Rowhammer mitigations.
    """

    def select(
        self,
        queue: Sequence[QueuedRequest],
        banks: Dict[int, Bank],
        config: DRAMConfig,
    ) -> Optional[int]:
        if not queue:
            return None
        for index, request in enumerate(queue):
            flat = config.flat_bank(request.coord)
            bank = banks.get(flat)
            if bank is not None and bank.state.open_row == request.coord.row:
                return index
        return 0


__all__ = ["Scheduler", "QueuedRequest", "FCFSScheduler", "FRFCFSScheduler"]
