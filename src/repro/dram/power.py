"""DDR4 DRAM power model (Micron power-calculator style).

The paper reports DRAM power deltas computed with Micron's system power
calculator; the dominant effect of Rubix is *extra activations* from the
reduced row-buffer hit rate.  This model computes the same components
from first principles:

* background power (precharged/active standby, from IDD2N/IDD3N),
* activate/precharge energy per ACT (from IDD0 over tRC),
* read/write burst power (from IDD4R/IDD4W, scaled by bus utilization),
* refresh power, and
* a fixed rail/termination overhead (VPP, ODT) calibrated so the baseline
  DIMM lands near the paper's ~2.8 W operating point.

Default currents follow a Micron 8 Gb DDR4-2400 x4 datasheet
(MT40A2G4-style); a rank is 16 such devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import NS


@dataclass(frozen=True)
class DDR4PowerParams:
    """Electrical parameters of one rank of DDR4 devices."""

    vdd: float = 1.2
    idd0_a: float = 0.055    # one-bank activate-precharge current
    idd2n_a: float = 0.034   # precharged standby
    idd3n_a: float = 0.042   # active standby
    idd4r_a: float = 0.150   # burst read
    idd4w_a: float = 0.145   # burst write
    idd5b_a: float = 0.040   # burst refresh average contribution
    devices_per_rank: int = 16
    t_rc: float = 45.0 * NS
    t_burst: float = 64 / (2400e6 * 8)
    #: Fixed VPP + termination/ODT overhead per rank (calibration term).
    p_overhead_w: float = 1.5

    @property
    def activate_energy_j(self) -> float:
        """Energy of one ACT/PRE pair across the rank."""
        return (self.idd0_a - self.idd3n_a) * self.vdd * self.t_rc * self.devices_per_rank

    @property
    def background_power_w(self) -> float:
        """Standby power of the rank (even split active/precharged)."""
        avg_idd = 0.5 * (self.idd2n_a + self.idd3n_a)
        return avg_idd * self.vdd * self.devices_per_rank

    @property
    def refresh_power_w(self) -> float:
        """Average refresh power of the rank."""
        return (self.idd5b_a - self.idd3n_a) * self.vdd * self.devices_per_rank * 0.05


@dataclass(frozen=True)
class PowerBreakdown:
    """DRAM power decomposition in watts."""

    background_w: float
    activate_w: float
    io_w: float
    refresh_w: float
    overhead_w: float

    @property
    def total_w(self) -> float:
        return (
            self.background_w
            + self.activate_w
            + self.io_w
            + self.refresh_w
            + self.overhead_w
        )

    def delta_mw(self, other: "PowerBreakdown") -> float:
        """Milliwatt difference ``self - other``."""
        return (self.total_w - other.total_w) * 1e3

    def percent_increase_over(self, other: "PowerBreakdown") -> float:
        """Percent increase of self's total over ``other``'s."""
        if other.total_w == 0:
            raise ValueError("baseline power is zero")
        return 100.0 * (self.total_w - other.total_w) / other.total_w


class DDR4PowerModel:
    """Computes rank power from activity counts over a time window."""

    def __init__(self, params: DDR4PowerParams = DDR4PowerParams()) -> None:
        self.params = params

    def compute(
        self,
        *,
        activations: int,
        reads: int,
        writes: int,
        window_s: float,
        ranks: int = 1,
    ) -> PowerBreakdown:
        """Return the power breakdown for the given activity.

        Args:
            activations: ACT commands in the window.
            reads: Read bursts (64 B) in the window.
            writes: Write bursts in the window.
            window_s: Window duration in seconds.
            ranks: Number of ranks (power scales linearly).
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        for name, value in (("activations", activations), ("reads", reads), ("writes", writes)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        p = self.params
        act_power = activations * p.activate_energy_j / window_s
        read_util = reads * p.t_burst / window_s
        write_util = writes * p.t_burst / window_s
        if read_util + write_util > ranks + 1e-9:
            raise ValueError(
                f"bus over-subscribed: utilization {read_util + write_util:.2f} "
                f"exceeds {ranks} channel(s)"
            )
        io_power = (
            (p.idd4r_a - p.idd3n_a) * p.vdd * p.devices_per_rank * read_util
            + (p.idd4w_a - p.idd3n_a) * p.vdd * p.devices_per_rank * write_util
        )
        # Activity counts are system totals, so ACT/IO power already covers
        # every rank; standby, refresh, and rail overhead scale per rank.
        return PowerBreakdown(
            background_w=p.background_power_w * ranks,
            activate_w=act_power,
            io_w=io_power,
            refresh_w=p.refresh_power_w * ranks,
            overhead_w=p.p_overhead_w * ranks,
        )


__all__ = ["DDR4PowerParams", "PowerBreakdown", "DDR4PowerModel"]
