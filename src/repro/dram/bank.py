"""Per-bank row-buffer state for the detailed memory-system model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.config import DRAMTiming


class AccessKind(enum.Enum):
    """Classification of an access against the bank's row-buffer state."""

    HIT = "hit"          # requested row already open
    CLOSED = "closed"    # bank precharged, row must be activated
    CONFLICT = "conflict"  # another row open: precharge + activate


@dataclass
class BankState:
    """Mutable state of one DRAM bank.

    Attributes:
        open_row: Row currently latched in the row buffer, or None if the
            bank is precharged.
        hits_since_activation: Accesses served from the current open row,
            used by the open-adaptive policy (close after 16).
        ready_at: Earliest time the bank can accept a new command.
        last_activation_at: Time of the most recent ACT, enforcing tRC.
        activations: Lifetime ACT count (statistics).
    """

    open_row: Optional[int] = None
    hits_since_activation: int = 0
    ready_at: float = 0.0
    last_activation_at: float = float("-inf")
    activations: int = 0


@dataclass
class Bank:
    """One DRAM bank: classifies accesses and tracks row-buffer state.

    The detailed :class:`repro.dram.memory_system.MemorySystem` owns a
    Bank per (channel, rank, bank) triple and calls :meth:`access` for
    every scheduled request, receiving the access latency and whether an
    activation occurred.
    """

    timing: DRAMTiming
    state: BankState = field(default_factory=BankState)

    def classify(self, row: int) -> AccessKind:
        """Classify an access to ``row`` against the current buffer state."""
        if self.state.open_row is None:
            return AccessKind.CLOSED
        if self.state.open_row == row:
            return AccessKind.HIT
        return AccessKind.CONFLICT

    def access(self, row: int, now: float, *, max_hits: Optional[int] = None) -> "tuple[float, bool]":
        """Perform an access to ``row`` at time ``now``.

        Args:
            row: Row index within this bank.
            now: Current time in seconds (must be >= the bank's ready_at;
                the scheduler is responsible for not issuing early).
            max_hits: If set, the open-adaptive limit -- the row is treated
                as closed once it has served this many accesses.

        Returns:
            ``(completion_time, activated)`` where ``activated`` is True
            iff this access issued an ACT command (a Rowhammer-relevant
            activation of ``row``).
        """
        start = max(now, self.state.ready_at)
        kind = self.classify(row)
        if kind is AccessKind.HIT and max_hits is not None and self.state.hits_since_activation >= max_hits:
            # Open-adaptive policy closed the row after max_hits accesses;
            # the next access pays a full activate even for the same row.
            kind = AccessKind.CLOSED
            self.state.open_row = None

        if kind is AccessKind.HIT:
            latency = self.timing.row_hit_latency
            activated = False
            self.state.hits_since_activation += 1
        else:
            if kind is AccessKind.CLOSED:
                latency = self.timing.row_closed_latency
            else:
                latency = self.timing.row_conflict_latency
            # Enforce minimum activate-to-activate spacing (tRC).
            earliest_act = self.state.last_activation_at + self.timing.t_rc
            start = max(start, earliest_act)
            activated = True
            self.state.open_row = row
            self.state.hits_since_activation = 1
            self.state.last_activation_at = start
            self.state.activations += 1

        completion = start + latency
        self.state.ready_at = completion
        return completion, activated

    def precharge(self, now: float) -> None:
        """Close the open row (explicit precharge)."""
        if self.state.open_row is not None:
            self.state.open_row = None
            self.state.hits_since_activation = 0
            self.state.ready_at = max(self.state.ready_at, now) + self.timing.t_rp


__all__ = ["AccessKind", "BankState", "Bank"]
