"""DDR command vocabulary and the full timing-parameter set.

The simple detailed model (:mod:`repro.dram.memory_system`) charges
aggregate latencies per access; the protocol engine
(:mod:`repro.dram.protocol`) issues explicit commands under the full
DDR4 constraint set defined here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.units import NS


class CommandType(enum.Enum):
    """DDR commands the protocol engine issues."""

    ACT = "ACT"      # activate a row into the row buffer
    PRE = "PRE"      # precharge (close) the bank
    RD = "RD"        # column read burst
    WR = "WR"        # column write burst
    REF = "REF"      # all-bank refresh


@dataclass(frozen=True)
class Command:
    """One issued DDR command (fully decoded)."""

    kind: CommandType
    channel: int
    rank: int
    bank: int
    row: int = 0
    col: int = 0
    issue_time: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.kind.value}@{self.issue_time * 1e9:.1f}ns "
            f"ch{self.channel}/rk{self.rank}/bk{self.bank}/r{self.row}/c{self.col}"
        )


@dataclass(frozen=True)
class ProtocolTiming:
    """Full DDR4-2400 timing constraint set (seconds).

    Values follow a Micron 8 Gb DDR4-2400 part (MT40A-series); the core
    latencies match Table 1 of the paper (tRCD = tCL = tRP = 14.2 ns,
    tRC = 45 ns).
    """

    t_rcd: float = 14.2 * NS    # ACT -> RD/WR same bank
    t_cl: float = 14.2 * NS     # RD -> first data
    t_cwl: float = 12.5 * NS    # WR -> first data
    t_rp: float = 14.2 * NS     # PRE -> ACT same bank
    t_ras: float = 32.0 * NS    # ACT -> PRE same bank (min row open)
    t_rc: float = 45.0 * NS     # ACT -> ACT same bank
    t_rrd: float = 4.9 * NS     # ACT -> ACT different banks, same rank
    t_faw: float = 21.0 * NS    # four-ACT window per rank
    t_wr: float = 15.0 * NS     # write recovery (last data -> PRE)
    t_rtp: float = 7.5 * NS     # RD -> PRE
    t_ccd: float = 3.33 * NS    # column-to-column (burst gap)
    t_burst: float = 64 / (2400e6 * 8)  # one 64 B burst on the bus
    t_rfc: float = 350.0 * NS   # refresh cycle (8 Gb device)
    t_refi: float = 7.8e-6      # average refresh interval
    t_refw: float = 64e-3       # refresh window (tREFW)

    def validate(self) -> None:
        """Sanity-check internal consistency of the parameter set."""
        if self.t_ras + self.t_rp > self.t_rc + 1.5 * NS:
            raise ValueError("tRAS + tRP must not exceed tRC (plus slack)")
        if self.t_faw < self.t_rrd:
            raise ValueError("tFAW cannot be below tRRD")
        for name in (
            "t_rcd",
            "t_cl",
            "t_cwl",
            "t_rp",
            "t_ras",
            "t_rc",
            "t_rrd",
            "t_faw",
            "t_wr",
            "t_rtp",
            "t_ccd",
            "t_burst",
            "t_rfc",
            "t_refi",
            "t_refw",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


__all__ = ["CommandType", "Command", "ProtocolTiming"]
