"""Command-level DDR4 protocol engine.

Where :mod:`repro.dram.memory_system` charges per-access latencies, this
engine issues explicit ACT/PRE/RD/WR/REF commands and enforces the full
constraint set: tRCD/tCL/tRP per bank, tRAS minimum row-open time, tRC
activate-to-activate, tRRD and the four-activate window (tFAW) per rank,
read/write-to-precharge recovery (tRTP/tWR), column-to-column spacing
(tCCD), a shared data bus, and periodic refresh (tREFI/tRFC).

It is the highest-fidelity tier in the repository -- used to validate
the cheaper tiers (activations must agree; latencies can only grow once
real constraints apply) and available to users who want command traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.dram.commands import Command, CommandType, ProtocolTiming
from repro.dram.config import Coordinate, DRAMConfig


@dataclass
class _BankState:
    open_row: Optional[int] = None
    last_act: float = float("-inf")
    precharged_at: float = 0.0        # earliest time an ACT may issue (after tRP)
    earliest_pre: float = 0.0         # tRAS / tRTP / tWR recovery
    hits_since_act: int = 0


@dataclass
class _RankState:
    act_times: Deque[float] = field(default_factory=lambda: deque(maxlen=4))
    last_act: float = float("-inf")
    next_refresh_due: float = 0.0
    refresh_until: float = 0.0
    refreshes: int = 0


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one serviced request at command level."""

    commands: Tuple[Command, ...]
    start: float
    data_ready: float
    activated: bool

    @property
    def latency(self) -> float:
        return self.data_ready - self.start


class ProtocolEngine:
    """Issues legal DDR command sequences for a stream of requests.

    Requests are serviced in order (FCFS); the engine computes the
    earliest legal issue time for every command it emits.  Use
    ``collect_commands=False`` (default) to skip storing command objects
    on long runs.

    Args:
        config: Geometry (channels/ranks/banks/rows).
        timing: Full constraint set (validated on construction).
        max_hits: Open-adaptive row-buffer budget (16, per Table 1).
        collect_commands: Keep every issued Command for inspection.
    """

    def __init__(
        self,
        config: DRAMConfig,
        timing: Optional[ProtocolTiming] = None,
        *,
        max_hits: Optional[int] = 16,
        collect_commands: bool = False,
    ) -> None:
        self.config = config
        self.timing = timing or ProtocolTiming()
        self.timing.validate()
        self.max_hits = max_hits
        self.collect_commands = collect_commands
        self._banks: Dict[Tuple[int, int, int], _BankState] = {}
        self._ranks: Dict[Tuple[int, int], _RankState] = {}
        self._bus_free: Dict[int, float] = {}
        self.commands: List[Command] = []
        self.counts: Dict[CommandType, int] = {kind: 0 for kind in CommandType}

    # ------------------------------------------------------------------
    def _bank(self, coord: Coordinate) -> _BankState:
        key = (coord.channel, coord.rank, coord.bank)
        state = self._banks.get(key)
        if state is None:
            state = _BankState()
            self._banks[key] = state
        return state

    def _rank(self, coord: Coordinate) -> _RankState:
        key = (coord.channel, coord.rank)
        state = self._ranks.get(key)
        if state is None:
            state = _RankState(next_refresh_due=self.timing.t_refi)
            self._ranks[key] = state
        return state

    def _emit(self, kind: CommandType, coord: Coordinate, when: float) -> None:
        self.counts[kind] += 1
        if self.collect_commands:
            self.commands.append(
                Command(
                    kind=kind,
                    channel=coord.channel,
                    rank=coord.rank,
                    bank=coord.bank,
                    row=coord.row,
                    col=coord.col,
                    issue_time=when,
                )
            )

    # ------------------------------------------------------------------
    def _maybe_refresh(self, coord: Coordinate, now: float) -> float:
        """Issue due refreshes for the rank; returns when it is usable."""
        rank = self._rank(coord)
        t = self.timing
        while now >= rank.next_refresh_due:
            start = max(rank.next_refresh_due, rank.refresh_until)
            # All banks of the rank must be precharged: wait out any
            # in-flight row (approximated by the latest earliest_pre).
            rank.refresh_until = start + t.t_rfc
            rank.next_refresh_due += t.t_refi
            rank.refreshes += 1
            self._emit(CommandType.REF, coord, start)
            # Refresh closes every row in the rank.
            for (ch, rk, _), bank in self._banks.items():
                if ch == coord.channel and rk == coord.rank:
                    bank.open_row = None
                    bank.precharged_at = max(bank.precharged_at, rank.refresh_until)
        return max(now, rank.refresh_until)

    def _earliest_act(self, coord: Coordinate, now: float) -> float:
        bank = self._bank(coord)
        rank = self._rank(coord)
        t = self.timing
        earliest = max(now, bank.precharged_at, bank.last_act + t.t_rc)
        earliest = max(earliest, rank.last_act + t.t_rrd)
        if len(rank.act_times) == rank.act_times.maxlen:
            earliest = max(earliest, rank.act_times[0] + t.t_faw)
        return earliest

    def _bus_slot(self, channel: int, earliest: float) -> float:
        free = self._bus_free.get(channel, 0.0)
        slot = max(earliest, free)
        self._bus_free[channel] = slot + max(self.timing.t_burst, self.timing.t_ccd)
        return slot

    # ------------------------------------------------------------------
    def access(self, coord: Coordinate, now: float, *, is_write: bool = False) -> AccessOutcome:
        """Service one request; returns the command-level outcome."""
        self.config.validate_coordinate(coord)
        t = self.timing
        start = self._maybe_refresh(coord, now)
        bank = self._bank(coord)
        rank = self._rank(coord)
        commands: List[Command] = []
        activated = False

        row_open = bank.open_row == coord.row
        budget_ok = self.max_hits is None or bank.hits_since_act < self.max_hits
        if not (row_open and budget_ok):
            if bank.open_row is not None or (row_open and not budget_ok):
                # Close the current row first (explicit PRE).
                pre_time = max(start, bank.earliest_pre)
                self._emit(CommandType.PRE, coord, pre_time)
                bank.open_row = None
                bank.precharged_at = pre_time + t.t_rp
            act_time = self._earliest_act(coord, max(start, bank.precharged_at))
            self._emit(CommandType.ACT, coord, act_time)
            activated = True
            bank.open_row = coord.row
            bank.last_act = act_time
            bank.hits_since_act = 0
            bank.earliest_pre = act_time + t.t_ras
            rank.last_act = act_time
            rank.act_times.append(act_time)
            column_ready = act_time + t.t_rcd
        else:
            column_ready = start

        kind = CommandType.WR if is_write else CommandType.RD
        column_time = self._bus_slot(coord.channel, column_ready)
        self._emit(kind, coord, column_time)
        bank.hits_since_act += 1
        if is_write:
            data_ready = column_time + t.t_cwl + t.t_burst
            bank.earliest_pre = max(bank.earliest_pre, data_ready + t.t_wr)
        else:
            data_ready = column_time + t.t_cl + t.t_burst
            bank.earliest_pre = max(bank.earliest_pre, column_time + t.t_rtp)

        if self.collect_commands:
            commands = self.commands[-3:]
        return AccessOutcome(
            commands=tuple(commands),
            start=start,
            data_ready=data_ready,
            activated=activated,
        )

    # ------------------------------------------------------------------
    @property
    def activations(self) -> int:
        return self.counts[CommandType.ACT]

    @property
    def refreshes(self) -> int:
        return self.counts[CommandType.REF]

    def run_trace(
        self,
        mapping,
        lines,
        *,
        inter_arrival_s: float = 10e-9,
        write_every: int = 0,
    ) -> "ProtocolStats":
        """Run a line-address trace in order through the engine.

        Args:
            mapping: Address mapping (``translate``, and ideally
                ``translate_trace`` -- see below).
            lines: Iterable of line addresses.
            inter_arrival_s: Request spacing at the controller.
            write_every: Every Nth request is a write (0 = all reads).

        When the mapping provides ``translate_trace`` and ``lines`` is a
        materialized sequence, the whole batch is translated in one
        vectorized pass and the per-request loop iterates decoded
        coordinates -- for cipher- or engine-backed mappings that is the
        difference between one vector pass and one full scalar
        translation per line.  Command sequencing is unchanged.
        """
        coords = None
        if hasattr(mapping, "translate_trace") and isinstance(
            lines, (np.ndarray, list, tuple)
        ):
            mapped = mapping.translate_trace(np.asarray(lines, dtype=np.uint64))
            coords = mapped.iter_coordinates(self.config)
        if coords is None:
            coords = (mapping.translate(int(line)) for line in lines)
        total_latency = 0.0
        n = 0
        last_ready = 0.0
        for index, coord in enumerate(coords):
            now = max(index * inter_arrival_s, 0.0)
            is_write = write_every > 0 and index % write_every == 0
            outcome = self.access(coord, now, is_write=is_write)
            total_latency += outcome.latency
            last_ready = max(last_ready, outcome.data_ready)
            n += 1
        return ProtocolStats(
            accesses=n,
            activations=self.activations,
            precharges=self.counts[CommandType.PRE],
            reads=self.counts[CommandType.RD],
            writes=self.counts[CommandType.WR],
            refreshes=self.refreshes,
            avg_latency_s=total_latency / n if n else 0.0,
            makespan_s=last_ready,
        )


@dataclass(frozen=True)
class ProtocolStats:
    """Aggregate command-level statistics for a run."""

    accesses: int
    activations: int
    precharges: int
    reads: int
    writes: int
    refreshes: int
    avg_latency_s: float
    makespan_s: float

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.activations / self.accesses


__all__ = ["ProtocolEngine", "AccessOutcome", "ProtocolStats"]
