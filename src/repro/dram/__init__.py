"""DRAM substrate: geometry, timing, banks, scheduling, power.

Two simulation tiers share this package:

* :mod:`repro.dram.memory_system` -- a detailed event-driven model with
  per-bank row-buffer state, FR-FCFS scheduling, and the open-adaptive
  page policy.  Exact, used by tests and examples.
* :mod:`repro.dram.fast_model` -- a vectorized (numpy) single-pass trace
  analyzer producing the same aggregate statistics (activations, row
  buffer hits, per-row activation histograms) for multi-million access
  traces.  Used by the experiment harness.
"""

from repro.dram.config import (
    DRAMConfig,
    DRAMTiming,
    Coordinate,
    baseline_config,
    multichannel_config,
)
from repro.dram.bank import Bank, BankState
from repro.dram.page_policy import (
    ClosedPagePolicy,
    OpenAdaptivePolicy,
    OpenPagePolicy,
    PagePolicy,
)
from repro.dram.commands import Command, CommandType, ProtocolTiming
from repro.dram.fast_model import TraceStats, analyze_trace
from repro.dram.memory_system import MemorySystem, Request, RequestResult
from repro.dram.power import DDR4PowerModel, PowerBreakdown
from repro.dram.protocol import AccessOutcome, ProtocolEngine, ProtocolStats
from repro.dram.protocol_system import ProtocolMemorySystem
from repro.dram.refresh import RefreshWindow

__all__ = [
    "DRAMConfig",
    "DRAMTiming",
    "Coordinate",
    "baseline_config",
    "multichannel_config",
    "Bank",
    "BankState",
    "PagePolicy",
    "OpenPagePolicy",
    "ClosedPagePolicy",
    "OpenAdaptivePolicy",
    "TraceStats",
    "analyze_trace",
    "MemorySystem",
    "Request",
    "RequestResult",
    "Command",
    "CommandType",
    "ProtocolTiming",
    "ProtocolEngine",
    "ProtocolStats",
    "ProtocolMemorySystem",
    "AccessOutcome",
    "DDR4PowerModel",
    "PowerBreakdown",
    "RefreshWindow",
]
