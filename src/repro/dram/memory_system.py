"""Detailed event-driven memory-system model.

This tier models each request's journey through the controller: FR-FCFS
selection from a finite queue, per-bank row-buffer state with the
open-adaptive policy, channel blocking during mitigative row migrations,
and per-activation mitigation hooks (tracking + action).

It is exact but Python-speed; the experiment harness uses the vectorized
:mod:`repro.dram.fast_model` tier instead and the test suite verifies the
two tiers agree on their shared statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from repro.dram.bank import Bank
from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.page_policy import DEFAULT_POLICY, PagePolicy
from repro.dram.refresh import RefreshWindow
from repro.dram.scheduler import FRFCFSScheduler, QueuedRequest, Scheduler


@dataclass(frozen=True)
class MitigationAction:
    """What a mitigation asks the controller to do after an activation.

    Attributes:
        stall_s: Extra seconds charged to this request.
        blocks_channel: If True the stall also blocks the whole channel
            (row migrations tie up the bus); if False only this request
            waits (Blockhammer's per-row throttling).
    """

    stall_s: float = 0.0
    blocks_channel: bool = False


class MitigationHook(Protocol):
    """The contract between the memory system and a Rowhammer mitigation.

    Implementations live in :mod:`repro.mitigations`; the memory system
    only needs these three methods.
    """

    def redirect(self, coord: Coordinate) -> Coordinate:
        """Translate a coordinate through any row-indirection (migrations)."""

    def on_activation(self, coord: Coordinate, now: float) -> MitigationAction:
        """Record an activation; return the action the controller must take."""

    def on_refresh_window(self) -> None:
        """Reset per-window tracker state (called at tREFW boundaries)."""


@dataclass(frozen=True)
class Request:
    """A memory request entering the controller."""

    line_addr: int
    arrival: float


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one serviced request."""

    line_addr: int
    coord: Coordinate
    arrival: float
    start: float
    completion: float
    activated: bool
    mitigation_stall: float

    @property
    def latency(self) -> float:
        """End-to-end latency including queueing and mitigation stalls."""
        return self.completion - self.arrival


@dataclass
class MemorySystemStats:
    """Counters accumulated over a run."""

    accesses: int = 0
    activations: int = 0
    hits: int = 0
    mitigation_stall_s: float = 0.0
    busy_until: float = 0.0
    acts_per_row: Dict[int, int] = field(default_factory=dict)
    window_acts_per_row: Dict[int, int] = field(default_factory=dict)
    peak_window_row_acts: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def hot_rows(self, threshold: int) -> int:
        """Rows whose activation count reached ``threshold``."""
        return sum(1 for count in self.acts_per_row.values() if count >= threshold)

    def max_row_activations(self) -> int:
        """Peak activations of any row *within a single refresh window*.

        This is the security metric: the threat model counts activations
        per tREFW, so the histogram folds at window boundaries.
        """
        current = max(self.window_acts_per_row.values(), default=0)
        return max(self.peak_window_row_acts, current)

    def fold_window(self) -> None:
        """Close the current refresh window (counters restart)."""
        current = max(self.window_acts_per_row.values(), default=0)
        self.peak_window_row_acts = max(self.peak_window_row_acts, current)
        self.window_acts_per_row.clear()


class MemorySystem:
    """Event-driven DRAM memory system with mitigation hooks.

    Args:
        config: Geometry and timing.
        mapping: Object with ``translate(line_addr) -> Coordinate`` (any
            mapping from :mod:`repro.mapping` or :mod:`repro.core`).
        scheduler: Request-selection policy (default FR-FCFS).
        page_policy: Row-buffer management policy (default open-adaptive 16).
        mitigation: Optional Rowhammer mitigation hook.
        queue_depth: Controller queue lookahead for FR-FCFS.
    """

    def __init__(
        self,
        config: DRAMConfig,
        mapping,
        *,
        scheduler: Optional[Scheduler] = None,
        page_policy: PagePolicy = DEFAULT_POLICY,
        mitigation: Optional[MitigationHook] = None,
        queue_depth: int = 32,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.config = config
        self.mapping = mapping
        self.scheduler = scheduler or FRFCFSScheduler()
        self.page_policy = page_policy
        self.mitigation = mitigation
        self.queue_depth = queue_depth
        self.banks: Dict[int, Bank] = {}
        self.stats = MemorySystemStats()
        self.refresh = RefreshWindow()
        self._channel_blocked_until: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _bank(self, flat: int) -> Bank:
        bank = self.banks.get(flat)
        if bank is None:
            bank = Bank(self.config.timing)
            self.banks[flat] = bank
        return bank

    def _service(self, coord: Coordinate, arrival: float, now: float) -> RequestResult:
        """Issue one request at time ``now`` and update all state."""
        if self.mitigation is not None:
            coord = self.mitigation.redirect(coord)
        self.config.validate_coordinate(coord)
        flat = self.config.flat_bank(coord)
        blocked = self._channel_blocked_until.get(coord.channel, 0.0)
        start = max(now, blocked)
        completion, activated = self._bank(flat).access(
            coord.row, start, max_hits=self.page_policy.max_hits()
        )

        stall = 0.0
        if activated:
            self.stats.activations += 1
            if self.refresh.advance(completion):
                self.stats.fold_window()
                if self.mitigation is not None:
                    self.mitigation.on_refresh_window()
            row_id = self.config.global_row(coord)
            self.stats.acts_per_row[row_id] = self.stats.acts_per_row.get(row_id, 0) + 1
            self.stats.window_acts_per_row[row_id] = (
                self.stats.window_acts_per_row.get(row_id, 0) + 1
            )
            if self.mitigation is not None:
                action = self.mitigation.on_activation(coord, completion)
                stall = action.stall_s
                if stall > 0.0:
                    self.stats.mitigation_stall_s += stall
                    completion += stall
                    if action.blocks_channel:
                        self._channel_blocked_until[coord.channel] = completion
        else:
            self.stats.hits += 1

        self.stats.accesses += 1
        self.stats.busy_until = max(self.stats.busy_until, completion)
        return RequestResult(
            line_addr=-1,
            coord=coord,
            arrival=arrival,
            start=start,
            completion=completion,
            activated=activated,
            mitigation_stall=stall,
        )

    # ------------------------------------------------------------------
    def access(self, line_addr: int, now: float) -> RequestResult:
        """Service a single request immediately (no queueing).

        Convenient for unit tests and micro-examples that need full
        control over issue times.
        """
        coord = self.mapping.translate(line_addr)
        result = self._service(coord, now, now)
        return RequestResult(
            line_addr=line_addr,
            coord=result.coord,
            arrival=result.arrival,
            start=result.start,
            completion=result.completion,
            activated=result.activated,
            mitigation_stall=result.mitigation_stall,
        )

    def run_trace(
        self,
        requests: Iterable[Request],
        *,
        collect_results: bool = False,
    ) -> List[RequestResult]:
        """Run a trace through the queued FR-FCFS front end.

        Requests enter the queue at their arrival times (the queue admits
        up to ``queue_depth`` future requests); the scheduler repeatedly
        selects one to issue.  Time advances to the later of the selected
        request's arrival and the current clock.

        Returns the per-request results when ``collect_results`` is set
        (kept optional to avoid holding large traces in memory).
        """
        pending: List[Request] = list(requests)
        pending.sort(key=lambda r: r.arrival)
        queue: List[QueuedRequest] = []
        results: List[RequestResult] = []
        now = 0.0
        next_index = 0
        request_id = 0
        line_addr_of: Dict[int, int] = {}

        while next_index < len(pending) or queue:
            # Admit arrived (or imminently needed) requests up to depth.
            while next_index < len(pending) and len(queue) < self.queue_depth:
                req = pending[next_index]
                if req.arrival <= now or not queue:
                    coord = self.mapping.translate(req.line_addr)
                    queue.append(QueuedRequest(coord, req.arrival, request_id))
                    line_addr_of[request_id] = req.line_addr
                    request_id += 1
                    next_index += 1
                else:
                    break

            choice = self.scheduler.select(queue, self.banks, self.config)
            if choice is None:
                if next_index < len(pending):
                    now = max(now, pending[next_index].arrival)
                    continue
                break
            selected = queue.pop(choice)
            now = max(now, selected.arrival)
            result = self._service(selected.coord, selected.arrival, now)
            now = result.completion
            if collect_results:
                results.append(
                    RequestResult(
                        line_addr=line_addr_of.pop(selected.request_id),
                        coord=result.coord,
                        arrival=result.arrival,
                        start=result.start,
                        completion=result.completion,
                        activated=result.activated,
                        mitigation_stall=result.mitigation_stall,
                    )
                )
        return results


__all__ = [
    "MitigationAction",
    "MitigationHook",
    "Request",
    "RequestResult",
    "MemorySystemStats",
    "MemorySystem",
]
