"""Vectorized single-pass DRAM trace analyzer.

Given a mapped trace -- per-access flat bank ids and row indices in
program order -- this module computes, without per-access Python loops:

* the number of activations (ACT commands) and row-buffer hits under the
  open-adaptive page policy,
* the per-physical-row activation histogram (the input to hot-row and
  mitigation-invocation analysis), and
* optionally the (row, column) pairs of every activation, for the
  line-contribution analysis of Table 3.

The model corresponds to an in-order, per-bank stream: each bank serves
its requests in program order, a request hits iff it targets the row left
open by the previous request to that bank and the open-adaptive budget
(16 accesses by default) is not exhausted.  FR-FCFS reordering in the
detailed model only strengthens row locality; the cross-validation test
in ``tests/integration/test_tier_agreement.py`` bounds the difference.

Two kernels are provided for the same computation.  ``method="count"``
(the default) groups accesses by bank with an O(n) counting sort over
the narrow bank-id domain and builds the per-row activation histogram
with ``np.bincount`` + ``np.flatnonzero`` instead of sorting; it is the
hot path for 10M-100M-line windows.  ``method="sort"`` is the original
``np.argsort``/``np.unique`` implementation, kept as the reference the
equivalence tests and ``scripts/bench_hotpath.py`` compare against.
Both produce bit-identical :class:`TraceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.obs.profile import PROFILER
from repro.perf.backends import register, resolve_backend


@dataclass
class TraceStats:
    """Aggregate statistics of one analyzed trace window.

    Attributes:
        n_accesses: Total memory requests analyzed.
        n_activations: ACT commands issued.
        n_hits: Row-buffer hits.
        row_ids: Global physical-row ids with at least one activation
            (sorted, unique).
        acts_per_row: Activation count aligned with ``row_ids``.
        unique_rows_touched: Number of distinct physical rows accessed.
        act_rows: If detail was kept, the global row id of every ACT.
        act_cols: If detail was kept, the column of every ACT.
    """

    n_accesses: int
    n_activations: int
    n_hits: int
    row_ids: np.ndarray
    acts_per_row: np.ndarray
    unique_rows_touched: int
    act_rows: Optional[np.ndarray] = None
    act_cols: Optional[np.ndarray] = None

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate in [0, 1]."""
        if self.n_accesses == 0:
            return 0.0
        return self.n_hits / self.n_accesses

    def hot_rows(self, threshold: int) -> int:
        """Number of rows with at least ``threshold`` activations."""
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        return int(np.count_nonzero(self.acts_per_row >= threshold))

    def max_row_activations(self) -> int:
        """Highest activation count of any single row (security metric)."""
        if self.acts_per_row.size == 0:
            return 0
        return int(self.acts_per_row.max())

    def threshold_crossings(self, threshold: int) -> int:
        """Total times any row's count crosses a multiple of ``threshold``.

        This is the number of mitigations an ideal tracker with reset-on-
        mitigation triggers: a row with A activations crosses floor(A/t)
        times.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        return int((self.acts_per_row // threshold).sum())

    def excess_activations(self, threshold: int) -> int:
        """Total activations beyond ``threshold`` summed over rows.

        Blockhammer throttles exactly these activations.
        """
        excess = self.acts_per_row.astype(np.int64) - threshold
        return int(excess[excess > 0].sum())

    @classmethod
    def merge(cls, parts: Sequence["TraceStats"]) -> "TraceStats":
        """Merge chunk-wise statistics into one window-level result.

        Per-row histograms are summed by row id.  The detail arrays are
        kept *atomically*: ``act_rows`` (and ``act_cols``) appear in the
        merged result only when every part agrees on what detail it
        kept.  Parts that disagree on column detail drop both arrays --
        a merged ``act_rows`` spanning all activations next to an
        ``act_cols`` covering only some chunks would silently misalign
        downstream (row, col) analyses.
        """
        if not parts:
            return cls(0, 0, 0, np.empty(0, np.int64), np.empty(0, np.int64), 0)
        all_rows = np.concatenate([p.row_ids for p in parts])
        all_acts = np.concatenate([p.acts_per_row for p in parts])
        row_ids, inverse = np.unique(all_rows, return_inverse=True)
        acts = np.zeros(row_ids.size, dtype=np.int64)
        np.add.at(acts, inverse, all_acts)
        rows_kept = [p.act_rows is not None for p in parts]
        cols_kept = [p.act_cols is not None for p in parts]
        keep_detail = all(rows_kept) and (all(cols_kept) or not any(cols_kept))
        act_rows = np.concatenate([p.act_rows for p in parts]) if keep_detail else None
        act_cols = (
            np.concatenate([p.act_cols for p in parts])
            if keep_detail and all(cols_kept)
            else None
        )
        # Unique rows touched can only be summed approximately across
        # chunks; parts produced by chunked analysis pass the true value
        # via merge_unique_rows() instead.
        unique_touched = max(int(row_ids.size), max(p.unique_rows_touched for p in parts))
        return cls(
            n_accesses=sum(p.n_accesses for p in parts),
            n_activations=sum(p.n_activations for p in parts),
            n_hits=sum(p.n_hits for p in parts),
            row_ids=row_ids,
            acts_per_row=acts,
            unique_rows_touched=unique_touched,
            act_rows=act_rows,
            act_cols=act_cols,
        )


def _grouping_order(flat_bank: np.ndarray, n_bank_ids: int) -> np.ndarray:
    """Stable permutation that groups accesses by bank in O(n).

    This is a counting sort over the flat-bank-id domain: bucket sizes
    come from a bincount of the ids, bucket offsets from their cumsum,
    and indices scatter into their buckets in program order.  Numpy's
    stable sort on 8/16-bit unsigned keys is exactly that counting pass
    (one histogram + prefix sum + stable scatter per key byte, all in C),
    so the ids are narrowed to the smallest width that holds them; bank
    counts beyond 2^16 -- no modeled geometry comes close -- fall back to
    the generic stable sort.
    """
    if n_bank_ids <= 1 << 8:
        key = flat_bank.astype(np.uint8)
    elif n_bank_ids <= 1 << 16:
        key = flat_bank.astype(np.uint16)
    else:
        key = flat_bank
    return np.argsort(key, kind="stable")


def _histogram_domain_ok(domain: int, n: int) -> bool:
    """Whether a dense ``np.bincount`` over ``domain`` row ids is sane.

    The dense histogram is O(n + domain) time and 8*domain bytes; beyond
    a few multiples of the trace length the allocation would dwarf the
    sorting it replaces, so larger domains use ``np.unique`` instead.
    """
    return domain <= max(1 << 22, 2 * n)


def _unique_counts(values: np.ndarray, domain: int) -> "tuple[np.ndarray, np.ndarray]":
    """Sorted unique values and their counts (``np.unique`` equivalent)."""
    if _histogram_domain_ok(domain, values.size):
        hist = np.bincount(values, minlength=0)
        ids = np.flatnonzero(hist)
        return ids.astype(np.int64, copy=False), hist[ids]
    ids, counts = np.unique(values, return_counts=True)
    return ids.astype(np.int64, copy=False), counts.astype(np.int64, copy=False)


def _grown(current: Optional[np.ndarray], size: int, dtype) -> np.ndarray:
    """A zeroed array of at least ``size``, preserving ``current``'s prefix."""
    grown = np.zeros(size, dtype=dtype)
    if current is not None:
        grown[: current.size] = current
    return grown


#: Shared empty placeholder for slimmed per-chunk stats (never mutated).
_EMPTY_ROW_IDS = np.empty(0, dtype=np.int64)


def unique_row_ids(global_row: np.ndarray, domain: Optional[int] = None) -> np.ndarray:
    """Sorted unique global row ids, via dense histogram when feasible.

    ``domain`` is an exclusive upper bound on the ids (computed from the
    array when omitted); it decides between the O(n + domain) bincount
    path and the O(n log n) ``np.unique`` fallback.
    """
    if global_row.size == 0:
        return np.empty(0, np.int64)
    if domain is None:
        domain = int(global_row.max()) + 1
    if _histogram_domain_ok(domain, global_row.size):
        return np.flatnonzero(np.bincount(global_row, minlength=0)).astype(
            np.int64, copy=False
        )
    return np.unique(global_row).astype(np.int64, copy=False)


def _analysis_backend(method: str, backend: Optional[str]) -> str:
    """Resolve the (legacy ``method``, ``backend``) pair to one tier.

    ``backend`` wins when given; otherwise ``method="sort"`` pins the
    reference tier (the pre-backend spelling every existing caller and
    test uses) and ``method="count"`` resolves through the environment
    (``REPRO_KERNEL_BACKEND``) with the numpy tier as default.
    """
    if method not in ("count", "sort"):
        raise ValueError(f"method must be 'count' or 'sort', got {method!r}")
    if backend is not None:
        return resolve_backend(backend)
    if method == "sort":
        return "reference"
    return resolve_backend(None)


def analyze_trace(
    flat_bank: np.ndarray,
    row: np.ndarray,
    *,
    rows_per_bank: int,
    max_hits: Optional[int] = 16,
    col: Optional[np.ndarray] = None,
    keep_detail: bool = False,
    method: str = "count",
    backend: Optional[str] = None,
) -> TraceStats:
    """Analyze one trace window under the open-adaptive page policy.

    Args:
        flat_bank: Flat bank id per access, program order.
        row: Row index within the bank per access.
        rows_per_bank: Rows per bank (to form global row ids).
        max_hits: Open-adaptive budget; ``None`` models pure open-page.
        col: Optional column (line-in-row) per access; required when
            ``keep_detail`` is set and Table-3-style analysis is wanted.
        keep_detail: Keep per-activation (row, col) arrays.
        method: ``"count"`` for the vectorized kernels (default) or
            ``"sort"`` for the argsort/np.unique reference path -- the
            legacy alias for ``backend="reference"``.
        backend: Kernel tier: ``"reference"``, ``"numpy"``, or
            ``"numba"`` (see :mod:`repro.perf.backends`); None resolves
            via ``REPRO_KERNEL_BACKEND`` then the numpy default.  All
            tiers return bit-identical statistics.

    Returns:
        A :class:`TraceStats` for the window.
    """
    with PROFILER.phase("analyze_trace"):
        return _analyze_trace_impl(
            flat_bank,
            row,
            rows_per_bank=rows_per_bank,
            max_hits=max_hits,
            col=col,
            keep_detail=keep_detail,
            method=method,
            backend=backend,
        )


def _analyze_trace_impl(
    flat_bank: np.ndarray,
    row: np.ndarray,
    *,
    rows_per_bank: int,
    max_hits: Optional[int] = 16,
    col: Optional[np.ndarray] = None,
    keep_detail: bool = False,
    method: str = "count",
    backend: Optional[str] = None,
) -> TraceStats:
    resolved = _analysis_backend(method, backend)
    flat_bank = np.asarray(flat_bank)
    row = np.asarray(row)
    if flat_bank.shape != row.shape or flat_bank.ndim != 1:
        raise ValueError("flat_bank and row must be 1-D arrays of equal length")
    n = flat_bank.size
    if n == 0:
        return TraceStats(0, 0, 0, np.empty(0, np.int64), np.empty(0, np.int64), 0)
    if max_hits is not None and max_hits < 1:
        raise ValueError(f"max_hits must be >= 1 or None, got {max_hits}")
    if resolved == "reference":
        return _analyze_trace_sorted(
            flat_bank,
            row,
            rows_per_bank=rows_per_bank,
            max_hits=max_hits,
            col=col,
            keep_detail=keep_detail,
        )
    if resolved == "numba":
        from repro.perf.numba_kernels import analyze_trace_numba

        stats = analyze_trace_numba(
            flat_bank,
            row,
            rows_per_bank=rows_per_bank,
            max_hits=max_hits,
            col=col,
            keep_detail=keep_detail,
        )
        if stats is not None:
            return stats
        # Domain past the dense budget: the numpy tier has the sparse
        # np.unique path for exactly this case.

    n_bank_ids = int(flat_bank.max()) + 1
    # Exclusive upper bound on the global row ids; when it fits in 32
    # bits the whole kernel runs on half the memory bandwidth (the ids
    # themselves stay exact either way).  Derived from the observed row
    # maximum so even out-of-spec row indices stay in domain.
    domain = (n_bank_ids - 1) * rows_per_bank + int(row.max()) + 1
    work_dtype = np.int32 if domain <= np.iinfo(np.int32).max else np.int64
    global_row = flat_bank.astype(work_dtype) * work_dtype(rows_per_bank) + row.astype(
        work_dtype
    )

    # Group accesses by bank while preserving program order inside each bank.
    order = _grouping_order(flat_bank, n_bank_ids)
    g = global_row[order]

    # An access continues the current run iff it targets the same global
    # row as its predecessor within the same bank.  Because global row ids
    # embed the bank id, comparing them also compares banks -- except that
    # the first access of each bank group must start a new run even if the
    # previous bank's last row id coincides; embedding makes collision
    # impossible (row ids of different banks never match).
    same = np.empty(n, dtype=bool)
    same[0] = False
    np.equal(g[1:], g[:-1], out=same[1:])
    new_run = ~same

    if max_hits is None:
        act_mask = new_run
    else:
        run_starts = np.flatnonzero(new_run)
        run_id = np.cumsum(new_run)
        run_id -= 1
        pos_in_run = np.arange(n, dtype=np.int64)
        pos_in_run -= run_starts[run_id]
        if max_hits & (max_hits - 1) == 0:
            act_mask = (pos_in_run & (max_hits - 1)) == 0
        else:
            act_mask = (pos_in_run % max_hits) == 0

    act_rows = g[act_mask]
    n_act = int(act_rows.size)
    row_ids, acts_per_row = _unique_counts(act_rows, domain)
    unique_rows = int(unique_row_ids(global_row, domain).size)

    detail_rows = act_rows.astype(np.int64, copy=False) if keep_detail else None
    detail_cols = None
    if keep_detail and col is not None:
        detail_cols = np.asarray(col)[order][act_mask]

    return TraceStats(
        n_accesses=n,
        n_activations=n_act,
        n_hits=n - n_act,
        row_ids=row_ids,
        acts_per_row=acts_per_row.astype(np.int64, copy=False),
        unique_rows_touched=unique_rows,
        act_rows=detail_rows,
        act_cols=detail_cols,
    )


def _analyze_trace_sorted(
    flat_bank: np.ndarray,
    row: np.ndarray,
    *,
    rows_per_bank: int,
    max_hits: Optional[int],
    col: Optional[np.ndarray],
    keep_detail: bool,
) -> TraceStats:
    """The original argsort/np.unique kernel (reference implementation).

    Kept verbatim as the baseline the property tests and the hot-path
    benchmark compare the counting kernels against; inputs are assumed
    validated and non-empty by :func:`analyze_trace`.
    """
    n = flat_bank.size
    global_row = flat_bank.astype(np.int64) * np.int64(rows_per_bank) + row.astype(np.int64)

    order = np.argsort(flat_bank, kind="stable")
    g = global_row[order]

    same = np.empty(n, dtype=bool)
    same[0] = False
    same[1:] = g[1:] == g[:-1]

    run_starts = np.flatnonzero(~same)
    run_id = np.cumsum(~same) - 1
    pos_in_run = np.arange(n, dtype=np.int64) - run_starts[run_id]

    if max_hits is None:
        act_mask = ~same
    else:
        act_mask = (pos_in_run % max_hits) == 0

    n_act = int(np.count_nonzero(act_mask))
    act_rows = g[act_mask]
    row_ids, acts_per_row = np.unique(act_rows, return_counts=True)
    unique_rows = int(np.unique(g).size)

    detail_rows = act_rows if keep_detail else None
    detail_cols = None
    if keep_detail and col is not None:
        detail_cols = np.asarray(col)[order][act_mask]

    return TraceStats(
        n_accesses=n,
        n_activations=n_act,
        n_hits=n - n_act,
        row_ids=row_ids,
        acts_per_row=acts_per_row.astype(np.int64),
        unique_rows_touched=unique_rows,
        act_rows=detail_rows,
        act_cols=detail_cols,
    )


@dataclass
class ChunkedAnalyzer:
    """Incremental analyzer for traces mapped chunk-by-chunk.

    Rubix-D changes the mapping *during* a window, so the simulator maps
    and analyzes the trace in chunks, feeding each chunk's activation
    count back into the remap engine.  This class accumulates the chunk
    statistics and produces a merged window result; the row buffer is
    conservatively assumed cold at each chunk boundary (a <0.1% activation
    overcount at the default chunk size).
    """

    rows_per_bank: int
    max_hits: Optional[int] = 16
    keep_detail: bool = False
    method: str = "count"
    #: Kernel tier for the per-chunk analysis and the dense cross-chunk
    #: accumulation; None resolves method/env as in :func:`analyze_trace`.
    backend: Optional[str] = None
    _parts: List[TraceStats] = field(default_factory=list)
    _touched: List[np.ndarray] = field(default_factory=list)
    #: Dense accumulators for ``method="count"``: per-row activation
    #: histogram and touched-row bitmap over the global-row domain.
    #: They replace the sort-heavy cross-chunk merge (concatenate +
    #: np.unique over every chunk's ids) with O(n) scatters; if a chunk
    #: ever pushes the domain past the dense-histogram budget, the
    #: accumulated state converts to the list-based form and the merge
    #: falls back to the reference path.
    _hist: Optional[np.ndarray] = None
    _seen: Optional[np.ndarray] = None
    _dense: bool = True
    _fed: int = 0

    def resolved_backend(self) -> str:
        """The kernel tier this analyzer's chunks run on."""
        return _analysis_backend(self.method, self.backend)

    def feed(
        self,
        flat_bank: np.ndarray,
        row: np.ndarray,
        col: Optional[np.ndarray] = None,
    ) -> TraceStats:
        """Analyze one chunk; returns the chunk's own stats."""
        backend = self.resolved_backend()
        stats = analyze_trace(
            flat_bank,
            row,
            rows_per_bank=self.rows_per_bank,
            max_hits=self.max_hits,
            col=col,
            keep_detail=self.keep_detail,
            backend=backend,
        )
        self._parts.append(stats)
        flat = np.asarray(flat_bank)
        rows = np.asarray(row)
        if flat.size == 0:
            return stats
        domain = int(flat.max()) * self.rows_per_bank + int(rows.max()) + 1
        work_dtype = np.int32 if domain <= np.iinfo(np.int32).max else np.int64
        global_row = flat.astype(work_dtype) * work_dtype(self.rows_per_bank) + rows.astype(
            work_dtype
        )
        self._fed += int(flat.size)
        use_dense = (
            backend != "reference"
            and self._dense
            and _histogram_domain_ok(domain, self._fed)
        )
        if use_dense:
            if self._hist is None or self._hist.size < domain:
                self._hist = _grown(self._hist, domain, np.int64)
                self._seen = _grown(self._seen, domain, bool)
            if backend == "numba":
                from repro.perf.numba_kernels import merge_chunk_numba

                with PROFILER.phase("chunk_merge"):
                    merge_chunk_numba(
                        self._hist, self._seen, global_row, stats.row_ids, stats.acts_per_row
                    )
            else:
                with PROFILER.phase("chunk_merge"):
                    _merge_chunk_numpy(
                        self._hist, self._seen, global_row, stats.row_ids, stats.acts_per_row
                    )
            if not self.keep_detail:
                # The chunk's per-row arrays now live in the dense
                # accumulators; retaining them per part as well made a
                # long streamed window hold every chunk's histogram at
                # once (gigabytes over a 100M-line trace).  Keep only
                # the scalar tallies the merged result needs.
                self._parts[-1] = TraceStats(
                    n_accesses=stats.n_accesses,
                    n_activations=stats.n_activations,
                    n_hits=stats.n_hits,
                    row_ids=_EMPTY_ROW_IDS,
                    acts_per_row=_EMPTY_ROW_IDS,
                    unique_rows_touched=stats.unique_rows_touched,
                )
        else:
            if self._seen is not None:
                # Domain outgrew the dense budget mid-stream: fold the
                # bitmap into the list form and continue sort-merged.
                self._touched.append(np.flatnonzero(self._seen).astype(np.int64))
                if not self.keep_detail and len(self._parts) > 1:
                    # The dense-era parts were slimmed to scalars, so
                    # the histogram is the only copy of their per-row
                    # counts: collapse it into one synthetic part the
                    # sort-based merge can consume.
                    prefix = self._parts[:-1]
                    ids = np.flatnonzero(self._hist)
                    folded = TraceStats(
                        n_accesses=sum(p.n_accesses for p in prefix),
                        n_activations=sum(p.n_activations for p in prefix),
                        n_hits=sum(p.n_hits for p in prefix),
                        row_ids=ids,
                        acts_per_row=self._hist[ids],
                        unique_rows_touched=int(ids.size),
                    )
                    self._parts = [folded, self._parts[-1]]
                self._hist = self._seen = None
            self._dense = False
            if backend == "reference":
                self._touched.append(np.unique(global_row))
            else:
                self._touched.append(unique_row_ids(global_row, domain))
        return stats

    def result(self) -> TraceStats:
        """Merged statistics across all chunks fed so far."""
        if self._hist is not None and not self._touched:
            return self._dense_result()
        merged = TraceStats.merge(self._parts)
        if self._touched:
            merged.unique_rows_touched = int(np.unique(np.concatenate(self._touched)).size)
        return merged

    def _dense_result(self) -> TraceStats:
        """Window merge from the dense accumulators (count method only).

        Same contract as :meth:`TraceStats.merge` plus the exact
        touched-row count -- row ids come out of ``np.flatnonzero``
        sorted, counts from the histogram, details concatenated in chunk
        order, all bit-identical to the reference merge.
        """
        parts = self._parts
        row_ids = np.flatnonzero(self._hist)
        rows_kept = [p.act_rows is not None for p in parts]
        cols_kept = [p.act_cols is not None for p in parts]
        keep = bool(parts) and all(rows_kept) and (all(cols_kept) or not any(cols_kept))
        return TraceStats(
            n_accesses=sum(p.n_accesses for p in parts),
            n_activations=sum(p.n_activations for p in parts),
            n_hits=sum(p.n_hits for p in parts),
            row_ids=row_ids,
            acts_per_row=self._hist[row_ids],
            unique_rows_touched=int(np.count_nonzero(self._seen)),
            act_rows=np.concatenate([p.act_rows for p in parts]) if keep else None,
            act_cols=(
                np.concatenate([p.act_cols for p in parts])
                if keep and all(cols_kept)
                else None
            ),
        )


def _merge_chunk_numpy(
    hist: np.ndarray,
    seen: np.ndarray,
    global_row: np.ndarray,
    row_ids: np.ndarray,
    acts_per_row: np.ndarray,
) -> None:
    """Numpy-tier cross-chunk accumulation: two vectorized scatters.

    ``row_ids`` are unique within a chunk, so the histogram scatter
    needs no ``np.add.at``; the bitmap scatter tolerates duplicates.
    """
    seen[global_row] = True
    hist[row_ids] += acts_per_row


# ---------------------------------------------------------------------------
# Backend registry entries (see repro.perf.backends).  The reference and
# numpy analysis tiers are thin dispatches back through analyze_trace so
# registry consumers (the benchmark harness, introspection) call the
# exact code path production uses.
# ---------------------------------------------------------------------------
@register("analyze_trace", "reference")
def _analyze_trace_reference_entry(flat_bank, row, **kwargs):
    return analyze_trace(flat_bank, row, backend="reference", **kwargs)


@register("analyze_trace", "numpy")
def _analyze_trace_numpy_entry(flat_bank, row, **kwargs):
    return analyze_trace(flat_bank, row, backend="numpy", **kwargs)


register("chunk_merge", "numpy")(_merge_chunk_numpy)


__all__ = ["TraceStats", "analyze_trace", "ChunkedAnalyzer", "unique_row_ids"]
