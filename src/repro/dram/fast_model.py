"""Vectorized single-pass DRAM trace analyzer.

Given a mapped trace -- per-access flat bank ids and row indices in
program order -- this module computes, without per-access Python loops:

* the number of activations (ACT commands) and row-buffer hits under the
  open-adaptive page policy,
* the per-physical-row activation histogram (the input to hot-row and
  mitigation-invocation analysis), and
* optionally the (row, column) pairs of every activation, for the
  line-contribution analysis of Table 3.

The model corresponds to an in-order, per-bank stream: each bank serves
its requests in program order, a request hits iff it targets the row left
open by the previous request to that bank and the open-adaptive budget
(16 accesses by default) is not exhausted.  FR-FCFS reordering in the
detailed model only strengthens row locality; the cross-validation test
in ``tests/integration/test_tier_agreement.py`` bounds the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class TraceStats:
    """Aggregate statistics of one analyzed trace window.

    Attributes:
        n_accesses: Total memory requests analyzed.
        n_activations: ACT commands issued.
        n_hits: Row-buffer hits.
        row_ids: Global physical-row ids with at least one activation
            (sorted, unique).
        acts_per_row: Activation count aligned with ``row_ids``.
        unique_rows_touched: Number of distinct physical rows accessed.
        act_rows: If detail was kept, the global row id of every ACT.
        act_cols: If detail was kept, the column of every ACT.
    """

    n_accesses: int
    n_activations: int
    n_hits: int
    row_ids: np.ndarray
    acts_per_row: np.ndarray
    unique_rows_touched: int
    act_rows: Optional[np.ndarray] = None
    act_cols: Optional[np.ndarray] = None

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate in [0, 1]."""
        if self.n_accesses == 0:
            return 0.0
        return self.n_hits / self.n_accesses

    def hot_rows(self, threshold: int) -> int:
        """Number of rows with at least ``threshold`` activations."""
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        return int(np.count_nonzero(self.acts_per_row >= threshold))

    def max_row_activations(self) -> int:
        """Highest activation count of any single row (security metric)."""
        if self.acts_per_row.size == 0:
            return 0
        return int(self.acts_per_row.max())

    def threshold_crossings(self, threshold: int) -> int:
        """Total times any row's count crosses a multiple of ``threshold``.

        This is the number of mitigations an ideal tracker with reset-on-
        mitigation triggers: a row with A activations crosses floor(A/t)
        times.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        return int((self.acts_per_row // threshold).sum())

    def excess_activations(self, threshold: int) -> int:
        """Total activations beyond ``threshold`` summed over rows.

        Blockhammer throttles exactly these activations.
        """
        excess = self.acts_per_row.astype(np.int64) - threshold
        return int(excess[excess > 0].sum())

    @classmethod
    def merge(cls, parts: Sequence["TraceStats"]) -> "TraceStats":
        """Merge chunk-wise statistics into one window-level result.

        Per-row histograms are summed by row id.  The detail arrays are
        kept *atomically*: ``act_rows`` (and ``act_cols``) appear in the
        merged result only when every part agrees on what detail it
        kept.  Parts that disagree on column detail drop both arrays --
        a merged ``act_rows`` spanning all activations next to an
        ``act_cols`` covering only some chunks would silently misalign
        downstream (row, col) analyses.
        """
        if not parts:
            return cls(0, 0, 0, np.empty(0, np.int64), np.empty(0, np.int64), 0)
        all_rows = np.concatenate([p.row_ids for p in parts])
        all_acts = np.concatenate([p.acts_per_row for p in parts])
        row_ids, inverse = np.unique(all_rows, return_inverse=True)
        acts = np.zeros(row_ids.size, dtype=np.int64)
        np.add.at(acts, inverse, all_acts)
        rows_kept = [p.act_rows is not None for p in parts]
        cols_kept = [p.act_cols is not None for p in parts]
        keep_detail = all(rows_kept) and (all(cols_kept) or not any(cols_kept))
        act_rows = np.concatenate([p.act_rows for p in parts]) if keep_detail else None
        act_cols = (
            np.concatenate([p.act_cols for p in parts])
            if keep_detail and all(cols_kept)
            else None
        )
        # Unique rows touched can only be summed approximately across
        # chunks; parts produced by chunked analysis pass the true value
        # via merge_unique_rows() instead.
        unique_touched = max(int(row_ids.size), max(p.unique_rows_touched for p in parts))
        return cls(
            n_accesses=sum(p.n_accesses for p in parts),
            n_activations=sum(p.n_activations for p in parts),
            n_hits=sum(p.n_hits for p in parts),
            row_ids=row_ids,
            acts_per_row=acts,
            unique_rows_touched=unique_touched,
            act_rows=act_rows,
            act_cols=act_cols,
        )


def analyze_trace(
    flat_bank: np.ndarray,
    row: np.ndarray,
    *,
    rows_per_bank: int,
    max_hits: Optional[int] = 16,
    col: Optional[np.ndarray] = None,
    keep_detail: bool = False,
) -> TraceStats:
    """Analyze one trace window under the open-adaptive page policy.

    Args:
        flat_bank: Flat bank id per access, program order.
        row: Row index within the bank per access.
        rows_per_bank: Rows per bank (to form global row ids).
        max_hits: Open-adaptive budget; ``None`` models pure open-page.
        col: Optional column (line-in-row) per access; required when
            ``keep_detail`` is set and Table-3-style analysis is wanted.
        keep_detail: Keep per-activation (row, col) arrays.

    Returns:
        A :class:`TraceStats` for the window.
    """
    flat_bank = np.asarray(flat_bank)
    row = np.asarray(row)
    if flat_bank.shape != row.shape or flat_bank.ndim != 1:
        raise ValueError("flat_bank and row must be 1-D arrays of equal length")
    n = flat_bank.size
    if n == 0:
        return TraceStats(0, 0, 0, np.empty(0, np.int64), np.empty(0, np.int64), 0)
    if max_hits is not None and max_hits < 1:
        raise ValueError(f"max_hits must be >= 1 or None, got {max_hits}")

    global_row = flat_bank.astype(np.int64) * np.int64(rows_per_bank) + row.astype(np.int64)

    # Group accesses by bank while preserving program order inside each bank.
    order = np.argsort(flat_bank, kind="stable")
    g = global_row[order]

    # An access continues the current run iff it targets the same global
    # row as its predecessor within the same bank.  Because global row ids
    # embed the bank id, comparing them also compares banks -- except that
    # the first access of each bank group must start a new run even if the
    # previous bank's last row id coincides; embedding makes collision
    # impossible (row ids of different banks never match).
    same = np.empty(n, dtype=bool)
    same[0] = False
    same[1:] = g[1:] == g[:-1]

    run_starts = np.flatnonzero(~same)
    run_id = np.cumsum(~same) - 1
    pos_in_run = np.arange(n, dtype=np.int64) - run_starts[run_id]

    if max_hits is None:
        act_mask = ~same
    else:
        act_mask = (pos_in_run % max_hits) == 0

    n_act = int(np.count_nonzero(act_mask))
    act_rows = g[act_mask]
    row_ids, acts_per_row = np.unique(act_rows, return_counts=True)
    unique_rows = int(np.unique(g).size)

    detail_rows = act_rows if keep_detail else None
    detail_cols = None
    if keep_detail and col is not None:
        detail_cols = np.asarray(col)[order][act_mask]

    return TraceStats(
        n_accesses=n,
        n_activations=n_act,
        n_hits=n - n_act,
        row_ids=row_ids,
        acts_per_row=acts_per_row.astype(np.int64),
        unique_rows_touched=unique_rows,
        act_rows=detail_rows,
        act_cols=detail_cols,
    )


@dataclass
class ChunkedAnalyzer:
    """Incremental analyzer for traces mapped chunk-by-chunk.

    Rubix-D changes the mapping *during* a window, so the simulator maps
    and analyzes the trace in chunks, feeding each chunk's activation
    count back into the remap engine.  This class accumulates the chunk
    statistics and produces a merged window result; the row buffer is
    conservatively assumed cold at each chunk boundary (a <0.1% activation
    overcount at the default chunk size).
    """

    rows_per_bank: int
    max_hits: Optional[int] = 16
    keep_detail: bool = False
    _parts: List[TraceStats] = field(default_factory=list)
    _touched: List[np.ndarray] = field(default_factory=list)

    def feed(
        self,
        flat_bank: np.ndarray,
        row: np.ndarray,
        col: Optional[np.ndarray] = None,
    ) -> TraceStats:
        """Analyze one chunk; returns the chunk's own stats."""
        stats = analyze_trace(
            flat_bank,
            row,
            rows_per_bank=self.rows_per_bank,
            max_hits=self.max_hits,
            col=col,
            keep_detail=self.keep_detail,
        )
        self._parts.append(stats)
        global_row = np.asarray(flat_bank).astype(np.int64) * np.int64(
            self.rows_per_bank
        ) + np.asarray(row).astype(np.int64)
        self._touched.append(np.unique(global_row))
        return stats

    def result(self) -> TraceStats:
        """Merged statistics across all chunks fed so far."""
        merged = TraceStats.merge(self._parts)
        if self._touched:
            merged.unique_rows_touched = int(np.unique(np.concatenate(self._touched)).size)
        return merged


__all__ = ["TraceStats", "analyze_trace", "ChunkedAnalyzer"]
