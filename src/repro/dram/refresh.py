"""Refresh-window bookkeeping.

Rowhammer activation counts are defined over the tREFW = 64 ms refresh
window: every row is refreshed once per window, so a successful attack
must exceed the threshold *within* one window.  Trackers reset their
state at window boundaries; this helper tells components when a boundary
has been crossed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.units import TREFW_S


@dataclass
class RefreshWindow:
    """Tracks tREFW boundaries on a monotonically advancing clock."""

    period: float = TREFW_S
    _window_index: int = 0
    _boundaries_crossed: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")

    @property
    def window_index(self) -> int:
        """Index of the current window (0-based)."""
        return self._window_index

    @property
    def boundaries_crossed(self) -> List[float]:
        """Times at which window boundaries were observed."""
        return list(self._boundaries_crossed)

    def advance(self, now: float) -> int:
        """Advance the clock to ``now``; return boundaries crossed.

        Returns the number of whole window boundaries passed since the
        last call, which is the number of tracker resets due.
        """
        if now < 0:
            raise ValueError(f"time must be non-negative, got {now}")
        new_index = int(now // self.period)
        crossed = new_index - self._window_index
        if crossed < 0:
            raise ValueError("clock moved backwards across refresh windows")
        for k in range(self._window_index + 1, new_index + 1):
            self._boundaries_crossed.append(k * self.period)
        self._window_index = new_index
        return crossed


__all__ = ["RefreshWindow"]
