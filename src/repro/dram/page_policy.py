"""DRAM page (row-buffer management) policies.

The paper's baseline uses *open-adaptive*: the row is kept open until it
has served 16 accesses, then closed.  We also provide plain open-page and
closed-page policies for comparison and for tests that need simpler
deterministic behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


class PagePolicy(abc.ABC):
    """Decides whether the row buffer stays open after an access."""

    @abc.abstractmethod
    def max_hits(self) -> Optional[int]:
        """Open-row access budget per activation (None = unlimited)."""

    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class OpenPagePolicy(PagePolicy):
    """Keep the row open indefinitely (until a conflict)."""

    def max_hits(self) -> Optional[int]:
        return None


@dataclass(frozen=True)
class ClosedPagePolicy(PagePolicy):
    """Close the row immediately after each access (every access activates)."""

    def max_hits(self) -> Optional[int]:
        return 1


@dataclass(frozen=True)
class OpenAdaptivePolicy(PagePolicy):
    """Keep the row open for at most ``limit`` accesses (paper default 16)."""

    limit: int = 16

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")

    def max_hits(self) -> Optional[int]:
        return self.limit


#: The baseline policy from Table 1 / Section 3.1.
DEFAULT_POLICY = OpenAdaptivePolicy(limit=16)

__all__ = [
    "PagePolicy",
    "OpenPagePolicy",
    "ClosedPagePolicy",
    "OpenAdaptivePolicy",
    "DEFAULT_POLICY",
]
