"""DRAM geometry and timing configuration (Table 1 of the paper).

The baseline system is 16 GB of DDR4-2400 with one channel, one rank,
16 banks, 128K rows per bank, and 8 KB rows -- i.e. 2^28 cache lines of
64 B addressed by a 28-bit line address.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import NamedTuple

from repro.utils.bitops import bit_length_for, is_power_of_two
from repro.utils.units import KB, LINE_BYTES, NS, TREFW_S


class Coordinate(NamedTuple):
    """A fully decoded DRAM location for one cache line."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int


@dataclass(frozen=True)
class DRAMTiming:
    """DDR4 timing parameters, in seconds.

    Defaults follow Table 1 (DDR4-2400, Micron MT40A2G4):
    tRCD = tCL = tRP = 14.2 ns and tRC = 45 ns.
    """

    t_rcd: float = 14.2 * NS
    t_cl: float = 14.2 * NS
    t_rp: float = 14.2 * NS
    t_rc: float = 45.0 * NS
    #: Data-burst time for one 64 B line at 2400 MT/s on a 64-bit bus.
    t_burst: float = 64 / (2400e6 * 8)
    #: Refresh window over which Rowhammer activation counts accumulate.
    t_refw: float = TREFW_S

    @property
    def row_hit_latency(self) -> float:
        """Latency of an access that hits the open row (CAS + burst)."""
        return self.t_cl + self.t_burst

    @property
    def row_closed_latency(self) -> float:
        """Latency when the bank is precharged (ACT + CAS + burst)."""
        return self.t_rcd + self.t_cl + self.t_burst

    @property
    def row_conflict_latency(self) -> float:
        """Latency when another row is open (PRE + ACT + CAS + burst)."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_burst

    @property
    def channel_bandwidth(self) -> float:
        """Peak channel bandwidth in bytes/second."""
        return LINE_BYTES / self.t_burst


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry of the memory system plus its timing.

    All dimension counts must be powers of two so that address fields are
    plain bit ranges -- the same constraint real controllers impose.
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 16
    rows_per_bank: int = 128 * 1024
    row_bytes: int = 8 * KB
    line_bytes: int = LINE_BYTES
    timing: DRAMTiming = field(default_factory=DRAMTiming)

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "banks", "rows_per_bank"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value}")
        if not is_power_of_two(self.row_bytes) or self.row_bytes < self.line_bytes:
            raise ValueError(f"row_bytes must be a power of two >= line size, got {self.row_bytes}")

    # --- derived geometry -------------------------------------------------
    @property
    def lines_per_row(self) -> int:
        """Cache lines per DRAM row (128 for 8 KB rows)."""
        return self.row_bytes // self.line_bytes

    @property
    def total_rows(self) -> int:
        """Total physical rows across the whole memory."""
        return self.rows_per_bank * self.banks * self.ranks * self.channels

    @property
    def total_lines(self) -> int:
        """Total cache lines in the memory (the line-address space size)."""
        return self.total_rows * self.lines_per_row

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.total_lines * self.line_bytes

    @property
    def total_banks(self) -> int:
        """Total banks across channels and ranks (used as flat bank ids)."""
        return self.banks * self.ranks * self.channels

    # --- derived bit widths ------------------------------------------------
    @property
    def col_bits(self) -> int:
        """Bits selecting the line within a row."""
        return bit_length_for(self.lines_per_row)

    @property
    def bank_bits(self) -> int:
        return bit_length_for(self.banks)

    @property
    def rank_bits(self) -> int:
        return bit_length_for(self.ranks)

    @property
    def channel_bits(self) -> int:
        return bit_length_for(self.channels)

    @property
    def row_bits(self) -> int:
        """Bits selecting a row within a bank."""
        return bit_length_for(self.rows_per_bank)

    @property
    def line_addr_bits(self) -> int:
        """Width of the full line address (28 for the 16 GB baseline)."""
        return bit_length_for(self.total_lines)

    # --- flat ids -----------------------------------------------------------
    def flat_bank(self, coord: Coordinate) -> int:
        """Flatten (channel, rank, bank) into a single bank id."""
        return (coord.channel * self.ranks + coord.rank) * self.banks + coord.bank

    def global_row(self, coord: Coordinate) -> int:
        """Flatten a coordinate into a global physical row id.

        Global row ids index the per-row activation histograms used for
        hot-row analysis; two lines share a global row iff they share a
        physical DRAM row.
        """
        return self.flat_bank(coord) * self.rows_per_bank + coord.row

    def coordinate_of_row(self, global_row: int, col: int = 0) -> Coordinate:
        """Inverse of :meth:`global_row` (plus a column): rebuild a coordinate.

        Used by mitigations that redirect requests to migrated rows
        identified by global row id.
        """
        if not 0 <= global_row < self.total_rows:
            raise ValueError(f"global_row {global_row} out of range [0, {self.total_rows})")
        row = global_row % self.rows_per_bank
        flat = global_row // self.rows_per_bank
        bank = flat % self.banks
        rank = (flat // self.banks) % self.ranks
        channel = flat // (self.banks * self.ranks)
        return Coordinate(channel=channel, rank=rank, bank=bank, row=row, col=col)

    def validate_coordinate(self, coord: Coordinate) -> None:
        """Raise ValueError if any coordinate field is out of range."""
        limits = (self.channels, self.ranks, self.banks, self.rows_per_bank, self.lines_per_row)
        for value, limit, name in zip(coord, limits, Coordinate._fields):
            if not 0 <= value < limit:
                raise ValueError(f"{name}={value} out of range [0, {limit})")

    def with_timing(self, **kwargs: float) -> "DRAMConfig":
        """Return a copy with some timing parameters overridden."""
        return replace(self, timing=replace(self.timing, **kwargs))


def baseline_config() -> DRAMConfig:
    """The Table-1 baseline: 16 GB DDR4-2400, 1 channel, 16 banks, 8 KB rows."""
    return DRAMConfig()


def multichannel_config(channels: int = 2) -> DRAMConfig:
    """The scaled-up system of Section 5.12: 32 GB DDR4 with 2 or 4 channels.

    Capacity doubles to 32 GB; with ``channels`` channels the per-channel
    share of banks/rows stays DDR4-shaped (16 banks per rank).
    """
    if channels not in (2, 4):
        raise ValueError(f"the paper evaluates 2 or 4 channels, got {channels}")
    # One 16 GB rank per channel at 2 channels; half-size ranks at 4 channels
    # keep total capacity at 32 GB either way.
    rows_per_bank = 128 * 1024 if channels == 2 else 64 * 1024
    return DRAMConfig(channels=channels, ranks=1, banks=16, rows_per_bank=rows_per_bank)


__all__ = [
    "Coordinate",
    "DRAMTiming",
    "DRAMConfig",
    "baseline_config",
    "multichannel_config",
]
