"""Protocol-backed memory system: command-level fidelity + mitigations.

This is the highest-fidelity end-to-end path in the repository: requests
flow through an address mapping and a Rowhammer mitigation's redirect
table into the command-level DDR4 engine; every ACT feeds the
mitigation's tracker, and mitigative stalls block the channel exactly as
in :class:`repro.dram.memory_system.MemorySystem` -- but latencies now
come from real command scheduling (tRAS/tRRD/tFAW/refresh included).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.dram.commands import ProtocolTiming
from repro.dram.config import DRAMConfig
from repro.dram.memory_system import (
    MemorySystemStats,
    MitigationHook,
    Request,
    RequestResult,
)
from repro.dram.protocol import ProtocolEngine
from repro.dram.refresh import RefreshWindow


class ProtocolMemorySystem:
    """In-order memory system on top of the protocol engine.

    Args:
        config: Geometry.
        mapping: Address mapping (``translate``).
        timing: Full DDR constraint set (defaults to DDR4-2400).
        mitigation: Optional Rowhammer mitigation hook.
        max_hits: Open-adaptive row-buffer budget.
    """

    def __init__(
        self,
        config: DRAMConfig,
        mapping,
        *,
        timing: Optional[ProtocolTiming] = None,
        mitigation: Optional[MitigationHook] = None,
        max_hits: Optional[int] = 16,
    ) -> None:
        self.config = config
        self.mapping = mapping
        self.mitigation = mitigation
        self.engine = ProtocolEngine(config, timing, max_hits=max_hits)
        self.stats = MemorySystemStats()
        self.refresh = RefreshWindow(period=self.engine.timing.t_refw)
        self._channel_blocked_until: dict = {}

    def access(self, line_addr: int, now: float, *, is_write: bool = False) -> RequestResult:
        """Service one request at command level."""
        coord = self.mapping.translate(line_addr)
        if self.mitigation is not None:
            coord = self.mitigation.redirect(coord)
        blocked = self._channel_blocked_until.get(coord.channel, 0.0)
        start = max(now, blocked)
        outcome = self.engine.access(coord, start, is_write=is_write)
        completion = outcome.data_ready

        stall = 0.0
        if outcome.activated:
            self.stats.activations += 1
            if self.refresh.advance(completion):
                self.stats.fold_window()
                if self.mitigation is not None:
                    self.mitigation.on_refresh_window()
            row_id = self.config.global_row(coord)
            self.stats.acts_per_row[row_id] = self.stats.acts_per_row.get(row_id, 0) + 1
            self.stats.window_acts_per_row[row_id] = (
                self.stats.window_acts_per_row.get(row_id, 0) + 1
            )
            if self.mitigation is not None:
                action = self.mitigation.on_activation(coord, completion)
                stall = action.stall_s
                if stall > 0.0:
                    self.stats.mitigation_stall_s += stall
                    completion += stall
                    if action.blocks_channel:
                        self._channel_blocked_until[coord.channel] = completion
        else:
            self.stats.hits += 1
        self.stats.accesses += 1
        self.stats.busy_until = max(self.stats.busy_until, completion)
        return RequestResult(
            line_addr=line_addr,
            coord=coord,
            arrival=now,
            start=outcome.start,
            completion=completion,
            activated=outcome.activated,
            mitigation_stall=stall,
        )

    def run_trace(
        self, requests: Iterable[Request], *, collect_results: bool = False
    ) -> List[RequestResult]:
        """Service requests in arrival order (in-order completion).

        Each request issues at the later of its arrival and the previous
        completion, so mitigation stalls (e.g. Blockhammer throttle
        delays) propagate into the request stream exactly as an in-order
        front end would experience them.
        """
        results: List[RequestResult] = []
        clock = 0.0
        for request in sorted(requests, key=lambda r: r.arrival):
            clock = max(clock, request.arrival)
            result = self.access(request.line_addr, clock)
            clock = result.completion
            if collect_results:
                results.append(result)
        return results


__all__ = ["ProtocolMemorySystem"]
