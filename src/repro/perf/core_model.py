"""Analytic core/memory performance model.

The gem5 runs behind the paper's figures are replaced by a calibrated
decomposition of window execution time:

    T = T_core + T_memory + T_mitigation + T_remap

* ``T_core`` is whatever part of the baseline 64 ms window is not
  memory: it is inferred once per trace from the baseline mapping's
  memory time (the trace, by construction, represents 64 ms of baseline
  execution).
* ``T_memory`` charges each row-buffer hit/miss its DDR4 latency,
  divided by an overlap factor modeling the memory-level parallelism of
  four 8-wide OoO cores over 16 banks.
* ``T_mitigation`` charges AQUA migrations and SRS swaps as channel-
  blocking serial time, and Blockhammer throttle delays scaled by the
  fraction of a delay that lands on the critical path.
* ``T_remap`` charges Rubix-D's swap traffic, mostly hidden in idle
  channel slots.

Every constant is in :class:`Calibration`; they were fit once against
the paper's baseline operating points (Fig. 1c / Table 4) and then held
fixed for all experiments -- see EXPERIMENTS.md for the fit and the
paper-vs-measured deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.fast_model import TraceStats
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.obs.runtime import METRICS


@dataclass(frozen=True)
class Calibration:
    """Fitted constants of the performance model.

    Attributes:
        memory_overlap: Effective MLP: concurrent misses across cores and
            banks that overlap a miss's latency.
        bh_critical_fraction: Fraction of a Blockhammer throttle delay
            that extends execution (the rest overlaps with other rows'
            delays and with compute).
        remap_hidden_fraction: Fraction of Rubix-D swap traffic absorbed
            by idle channel slots (swaps are tiny and not urgent, unlike
            AQUA/SRS migrations which block a reverse-engineered region).
        min_core_fraction: Floor on T_core as a fraction of the window,
            so fully memory-bound traces keep a non-degenerate core term.
    """

    memory_overlap: float = 24.0
    bh_critical_fraction: float = 0.0009
    remap_hidden_fraction: float = 0.85
    min_core_fraction: float = 0.05


@dataclass(frozen=True)
class MitigationLoad:
    """Aggregate mitigation activity for one window."""

    scheme: str
    invocations: int
    serial_time_s: float
    throttled_activations: int = 0


class PerformanceModel:
    """Turns trace statistics into execution-time estimates."""

    def __init__(
        self,
        config: DRAMConfig,
        calibration: Calibration = Calibration(),
        costs: "MitigationCostModel | None" = None,
    ) -> None:
        self.config = config
        self.calibration = calibration
        self.costs = costs or MitigationCostModel(config, controller_overhead=1.0)

    # ------------------------------------------------------------------
    def memory_time_s(self, stats: TraceStats) -> float:
        """Latency-weighted memory time of a window, overlap-adjusted."""
        t = self.config.timing
        serial = (
            stats.n_activations * t.row_conflict_latency
            + stats.n_hits * t.row_hit_latency
        )
        return serial / self.calibration.memory_overlap

    def core_time_s(self, baseline_stats: TraceStats, window_s: float) -> float:
        """Non-memory part of the baseline window for this trace."""
        t_mem = self.memory_time_s(baseline_stats)
        floor = self.calibration.min_core_fraction * window_s
        return max(floor, window_s - t_mem)

    # ------------------------------------------------------------------
    def mitigation_load(self, scheme: str, stats: TraceStats, t_rh: int) -> MitigationLoad:
        """Mitigation invocation counts and serial time for a window.

        Counts derive from the per-row activation histogram under ideal
        (guaranteed) tracking: a row with A activations crosses an
        action threshold ``th`` floor(A/th) times.
        """
        load = self._mitigation_load(scheme, stats, t_rh)
        if METRICS.enabled and load.scheme != "none":
            METRICS.inc("mitigation.invocations", load.invocations, scheme=load.scheme)
            if load.throttled_activations:
                METRICS.inc(
                    "mitigation.throttled_activations",
                    load.throttled_activations,
                    scheme=load.scheme,
                )
        return load

    def _mitigation_load(self, scheme: str, stats: TraceStats, t_rh: int) -> MitigationLoad:
        if scheme == "none":
            return MitigationLoad(scheme="none", invocations=0, serial_time_s=0.0)
        if scheme == "aqua":
            threshold = tracker_threshold("aqua", t_rh)
            invocations = stats.threshold_crossings(threshold)
            return MitigationLoad(
                scheme="aqua",
                invocations=invocations,
                serial_time_s=invocations * self.costs.migration_s,
            )
        if scheme == "srs":
            threshold = tracker_threshold("srs", t_rh)
            invocations = stats.threshold_crossings(threshold)
            return MitigationLoad(
                scheme="srs",
                invocations=invocations,
                serial_time_s=invocations * self.costs.swap_s,
            )
        if scheme == "blockhammer":
            threshold = tracker_threshold("blockhammer", t_rh)
            throttled = stats.excess_activations(threshold)
            delay = self.costs.blockhammer_delay_s(t_rh)
            serial = throttled * delay * self.calibration.bh_critical_fraction
            return MitigationLoad(
                scheme="blockhammer",
                invocations=throttled,
                serial_time_s=serial,
                throttled_activations=throttled,
            )
        if scheme == "trr":
            threshold = tracker_threshold("trr", t_rh)
            invocations = stats.threshold_crossings(threshold)
            return MitigationLoad(
                scheme="trr",
                invocations=invocations,
                serial_time_s=invocations * self.costs.victim_refresh_s,
            )
        raise ValueError(f"unknown mitigation scheme '{scheme}'")

    def remap_time_s(self, swaps: int, gang_size: int) -> float:
        """Visible cost of Rubix-D's dynamic swap traffic."""
        if swaps < 0:
            raise ValueError(f"swaps must be non-negative, got {swaps}")
        raw = swaps * self.costs.rubix_d_swap_s(gang_size)
        return raw * (1.0 - self.calibration.remap_hidden_fraction)

    # ------------------------------------------------------------------
    def execution_time_s(
        self,
        stats: TraceStats,
        *,
        core_time_s: float,
        scheme: str = "none",
        t_rh: int = 128,
        remap_swaps: int = 0,
        gang_size: int = 1,
    ) -> float:
        """Window execution time under a mapping + mitigation."""
        load = self.mitigation_load(scheme, stats, t_rh)
        return (
            core_time_s
            + self.memory_time_s(stats)
            + load.serial_time_s
            + self.remap_time_s(remap_swaps, gang_size)
        )


__all__ = ["Calibration", "MitigationLoad", "PerformanceModel"]
