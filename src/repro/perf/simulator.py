"""End-to-end simulation driver: trace -> mapping -> stats -> performance.

This is the orchestration layer the experiments use.  A run takes a
:class:`~repro.workloads.trace.Trace`, an address mapping, a mitigation
scheme name, and a Rowhammer threshold, and produces a
:class:`RunResult` with hot-row statistics, mitigation counts, execution
time, and (when a baseline is supplied) normalized performance.

Rubix-D traces are processed in chunks so the remap engines advance
*during* the window, exactly as the probabilistic remapping would.
Window statistics are cached per (trace, mapping) -- keyed on the trace
*content* fingerprint, not just its name/shape -- so the three
mitigation schemes, which share the same memory behaviour, reuse one
analysis pass, and (with a persistent
:class:`~repro.parallel.cache.StatsCache`) parallel campaign workers
reuse each other's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.rubix_d import RubixDMapping
from repro.dram.config import DRAMConfig, baseline_config
from repro.dram.fast_model import ChunkedAnalyzer, TraceStats, analyze_trace
from repro.dram.power import DDR4PowerModel, PowerBreakdown
from repro.mapping.base import AddressMapping
from repro.mapping.intel import CoffeeLakeMapping
from repro.obs.profile import PROFILER
from repro.obs.runtime import METRICS, TRACER
from repro.parallel.cache import StatsCache, stats_cache_key
from repro.perf.backends import resolve_backend
from repro.perf.core_model import Calibration, PerformanceModel
from repro.perf.metrics import slowdown_percent
from repro.workloads.trace import Trace, iter_line_chunks

#: Schemes :meth:`Simulator.run` accepts.
SCHEMES = ("none", "aqua", "srs", "blockhammer", "trr")


@dataclass
class RunResult:
    """Outcome of one (trace, mapping, mitigation, threshold) run."""

    trace_name: str
    mapping_name: str
    scheme: str
    t_rh: int
    accesses: int
    activations: int
    hit_rate: float
    unique_rows: int
    hot_rows_64: int
    hot_rows_512: int
    max_row_activations: int
    mitigations: int
    remap_swaps: int
    exec_time_s: float
    window_s: float
    normalized_performance: Optional[float] = None
    t_core_s: float = 0.0
    t_memory_s: float = 0.0
    t_mitigation_s: float = 0.0
    t_remap_s: float = 0.0

    @property
    def slowdown_pct(self) -> float:
        """Percent slowdown vs the baseline (requires normalization)."""
        if self.normalized_performance is None:
            raise ValueError("run was not normalized against a baseline")
        return slowdown_percent(self.normalized_performance)

    def breakdown(self) -> "dict[str, float]":
        """Execution-time decomposition as fractions of the total.

        Useful for diagnosing *why* a configuration is slow: mitigation-
        dominated (baseline mappings at low T_RH) vs memory-latency-
        dominated (small gang sizes) vs remap traffic (Rubix-D).
        """
        total = self.exec_time_s or 1.0
        return {
            "core": self.t_core_s / total,
            "memory": self.t_memory_s / total,
            "mitigation": self.t_mitigation_s / total,
            "remap": self.t_remap_s / total,
        }


class Simulator:
    """Fast-tier simulation orchestrator.

    Args:
        config: DRAM geometry/timing (Table 1 baseline by default).
        calibration: Performance-model constants.
        chunk_lines: Chunk size for Rubix-D windows (remap state advances
            between chunks).
        max_hits: Open-adaptive budget (Table 1: 16).
        stats_cache: Window-statistics cache (a fresh in-memory
            :class:`~repro.parallel.cache.StatsCache` by default; pass
            one with a ``persist_dir`` to share analysis results across
            processes).
        backend: Kernel tier (``"reference"`` / ``"numpy"`` /
            ``"numba"``) for translation, analysis, and remap sweeps;
            None resolves ``REPRO_KERNEL_BACKEND`` then the numpy
            default.  All tiers produce bit-identical results, which is
            why the backend is *not* part of stats-cache keys -- cached
            windows are shared freely across backends.
    """

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        *,
        calibration: Calibration = Calibration(),
        chunk_lines: int = 1 << 20,
        max_hits: int = 16,
        stats_cache: Optional[StatsCache] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config or baseline_config()
        self.model = PerformanceModel(self.config, calibration)
        self.power_model = DDR4PowerModel()
        self.chunk_lines = chunk_lines
        self.max_hits = max_hits
        self.stats_cache = stats_cache if stats_cache is not None else StatsCache()
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    def _trace_key(self, trace: Trace) -> Tuple:
        # The content fingerprint (and the generator seed, when the
        # trace carries one) is load-bearing: name/scale/size alone
        # collide for same-shaped traces with different contents.
        return (
            trace.name,
            trace.scale,
            int(trace.lines.size),
            trace.fingerprint,
            trace.seed,
        )

    def _cache_key(self, trace: Trace, mapping: AddressMapping, *, dynamic: bool) -> str:
        return stats_cache_key(
            trace_key=self._trace_key(trace),
            mapping_key=mapping.cache_key,
            rows_per_bank=self.config.rows_per_bank,
            max_hits=self.max_hits,
            # Chunk boundaries only matter when the mapping advances
            # between chunks; keying them for static mappings would
            # needlessly split the cache across chunk-size settings.
            chunk_lines=self.chunk_lines if dynamic else None,
        )

    def window_stats(
        self,
        trace: Trace,
        mapping: AddressMapping,
        *,
        keep_detail: bool = False,
        use_cache: bool = True,
    ) -> Tuple[TraceStats, int]:
        """Analyze one window; returns (stats, rubix_d_swaps).

        Rubix-D mappings are simulated chunk-by-chunk with activation-
        driven remap advancement; all other mappings translate the whole
        trace in one vectorized pass.
        """
        dynamic = isinstance(mapping, RubixDMapping) and mapping.remap_rate > 0.0
        key = self._cache_key(trace, mapping, dynamic=dynamic)
        if use_cache and not keep_detail:
            cached = self.stats_cache.get(key)
            if cached is not None:
                return cached

        self._check_window(trace, mapping)
        telemetry = METRICS.enabled
        t0 = time.perf_counter() if telemetry else 0.0
        if not dynamic:
            # Window already validated above -- the mapping can skip its
            # own domain scan.  Only Rubix-D translation is multi-backend;
            # other mappings have a single vectorized path.
            translate_kwargs = (
                {"backend": self.backend} if isinstance(mapping, RubixDMapping) else {}
            )
            with TRACER.span("sim.translate", mapping=mapping.name):
                with PROFILER.phase("translate_trace"):
                    mapped = mapping.translate_trace(
                        trace.lines, validate=False, **translate_kwargs
                    )
            with TRACER.span("sim.analyze", mapping=mapping.name):
                stats = analyze_trace(
                    mapped.flat_bank,
                    mapped.row,
                    rows_per_bank=self.config.rows_per_bank,
                    max_hits=self.max_hits,
                    col=mapped.col,
                    keep_detail=keep_detail,
                    backend=self.backend,
                )
            swaps = 0
        else:
            stats, swaps = self._run_dynamic(trace, mapping, keep_detail=keep_detail)
        if telemetry:
            dt = time.perf_counter() - t0
            mode = "dynamic" if dynamic else "static"
            METRICS.inc("sim.windows", mode=mode)
            METRICS.inc("sim.lines", int(trace.lines.size))
            METRICS.inc("sim.activations", int(stats.n_activations))
            METRICS.observe("sim.window_seconds", dt)
            TRACER.add(
                "sim.window", dt, trace=trace.name, mapping=mapping.name, mode=mode
            )

        if use_cache and not keep_detail:
            self.stats_cache.put(key, stats, swaps)
        return stats, swaps

    def _check_window(self, trace: Trace, mapping: AddressMapping) -> None:
        """Validate the window's line domain once, up front.

        One max scan per window replaces per-chunk (and, pre-PR 3,
        per-engine) scans in the translation hot loop.  The scan runs in
        released chunks so a memmap-backed trace is validated without
        ever becoming fully resident.
        """
        total_lines = mapping.config.total_lines
        for chunk in iter_line_chunks(trace.lines, 1 << 21):
            if chunk.size and int(chunk.max()) >= total_lines:
                raise ValueError(
                    f"trace '{trace.name}' has line addresses beyond the "
                    f"{total_lines}-line memory of {mapping.name}"
                )

    def _run_dynamic(
        self, trace: Trace, mapping: RubixDMapping, *, keep_detail: bool
    ) -> Tuple[TraceStats, int]:
        analyzer = ChunkedAnalyzer(
            rows_per_bank=self.config.rows_per_bank,
            max_hits=self.max_hits,
            keep_detail=keep_detail,
            backend=self.backend,
        )
        swaps = 0
        k = mapping.k_bits
        # Chunk loops are too hot for per-chunk spans; accumulate the
        # phase times and report them as two synthetic spans at the end.
        telemetry = METRICS.enabled
        translate_s = analyze_s = 0.0
        # iter_line_chunks releases consumed memmap pages between chunks,
        # so file-backed traces stream through here at ~chunk-sized RSS.
        for chunk in iter_line_chunks(trace.lines, self.chunk_lines):
            t0 = time.perf_counter() if telemetry else 0.0
            with PROFILER.phase("translate_trace"):
                mapped = mapping.translate_trace(
                    chunk, validate=False, backend=self.backend
                )
            if telemetry:
                t1 = time.perf_counter()
                translate_s += t1 - t0
            chunk_stats = analyzer.feed(mapped.flat_bank, mapped.row, mapped.col)
            if telemetry:
                analyze_s += time.perf_counter() - t1
            # Attribute the chunk's activations to v-groups in proportion
            # to each group's access share (the probabilistic remap
            # trigger has no better information either).
            vgroup = (mapped.col >> np.uint64(k)).astype(np.int64)
            shares = np.bincount(vgroup, minlength=mapping.vgroups).astype(np.float64)
            total = shares.sum()
            if total > 0 and chunk_stats.n_activations > 0:
                shares *= chunk_stats.n_activations / total
            swaps += mapping.record_activations(shares, backend=self.backend)
        if telemetry:
            TRACER.add("sim.translate", translate_s, mapping=mapping.name)
            TRACER.add("sim.analyze", analyze_s, mapping=mapping.name)
        return analyzer.result(), swaps

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace,
        mapping: AddressMapping,
        *,
        scheme: str = "none",
        t_rh: int = 128,
        baseline_mapping: Optional[AddressMapping] = None,
    ) -> RunResult:
        """Run one configuration; normalize against ``baseline_mapping``.

        The baseline (an unprotected Coffee Lake system unless overridden)
        defines both the core-time split of the window and the execution
        time that ``normalized_performance`` is relative to.
        """
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme '{scheme}'; expected one of {SCHEMES}")
        baseline = baseline_mapping or CoffeeLakeMapping(self.config)
        base_stats, _ = self.window_stats(trace, baseline)
        core_time = self.model.core_time_s(base_stats, trace.window_s)
        base_time = core_time + self.model.memory_time_s(base_stats)

        stats, swaps = self.window_stats(trace, mapping)
        gang_size = getattr(mapping, "gang_size", 1)
        if METRICS.enabled:
            t0 = time.perf_counter()
            load = self.model.mitigation_load(scheme, stats, t_rh)
            TRACER.add("sim.mitigation", time.perf_counter() - t0, scheme=scheme)
        else:
            load = self.model.mitigation_load(scheme, stats, t_rh)
        t_memory = self.model.memory_time_s(stats)
        t_remap = self.model.remap_time_s(swaps, gang_size)
        exec_time = core_time + t_memory + load.serial_time_s + t_remap
        return RunResult(
            trace_name=trace.name,
            mapping_name=mapping.name,
            scheme=scheme,
            t_rh=t_rh,
            accesses=stats.n_accesses,
            activations=stats.n_activations,
            hit_rate=stats.hit_rate,
            unique_rows=stats.unique_rows_touched,
            hot_rows_64=stats.hot_rows(64),
            hot_rows_512=stats.hot_rows(512),
            max_row_activations=stats.max_row_activations(),
            mitigations=load.invocations,
            remap_swaps=swaps,
            exec_time_s=exec_time,
            window_s=trace.window_s,
            normalized_performance=base_time / exec_time,
            t_core_s=core_time,
            t_memory_s=t_memory,
            t_mitigation_s=load.serial_time_s,
            t_remap_s=t_remap,
        )

    # ------------------------------------------------------------------
    def power(
        self,
        trace: Trace,
        mapping: AddressMapping,
        *,
        write_fraction: float = 0.3,
        extra_activations: int = 0,
    ) -> PowerBreakdown:
        """DRAM power for a window under the given mapping.

        Rubix-D remap swaps contribute their ACT/CAS traffic via
        ``extra_activations`` plus the swap read/write bursts.
        """
        stats, swaps = self.window_stats(trace, mapping)
        gang_size = getattr(mapping, "gang_size", 1)
        act_total = stats.n_activations + extra_activations + 3 * swaps
        # Writes are the remainder, not a second truncation: two int()
        # floors could drop an access so reads + writes != n_accesses.
        base_reads = int(stats.n_accesses * (1.0 - write_fraction))
        base_writes = stats.n_accesses - base_reads
        reads = base_reads + 2 * gang_size * swaps
        writes = base_writes + 2 * gang_size * swaps
        return self.power_model.compute(
            activations=act_total,
            reads=reads,
            writes=writes,
            window_s=trace.window_s,
            ranks=self.config.ranks * self.config.channels,
        )


__all__ = ["SCHEMES", "RunResult", "Simulator"]
