"""Numba-JIT tier of the hot-path kernels (``backend="numba"``).

Single-pass compiled implementations of the three kernels that dominate
fast-tier simulation on 100M-line-class windows:

* trace analysis -- counting-sort bank grouping, run detection, dense
  per-row activation histogram and touched-row bitmap, all fused into
  one pass over the trace (the numpy tier needs several full-array
  passes and a stable sort),
* Rubix-D translation -- per-access field split, register gather, and
  two-check xor translation fused into one loop (the numpy tier
  materializes ~8 intermediate arrays per chunk),
* the chunked analyzer's cross-chunk dense accumulation.

Every function is decorated with ``@njit(cache=True)`` so compiled code
persists across processes (honours ``NUMBA_CACHE_DIR``).  When numba is
not installed the decorator degrades to the identity: the kernels then
run as plain Python -- far too slow for production but exactly right
for the equivalence tests, which exercise this module's *logic* on tiny
inputs even on numba-less machines.  The ``numba`` registry entries are
only registered when numba truly imports; resolution falls back to the
numpy tier otherwise (see :mod:`repro.perf.backends`).

Bit-identity with the numpy tier is pinned by
``tests/property/test_prop_vectorized_kernels.py`` and asserted in-run
by ``scripts/bench_hotpath.py``; the remap-sweep kernel needs no JIT at
all (the closed form is O(epochs crossed)), so its ``numba`` entry
delegates to the closed form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.fast_model import TraceStats, _histogram_domain_ok
from repro.perf.backends import register

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - any broken install counts as absent
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: D401 - identity decorator shim
        """No-numba shim: return the function unchanged."""
        if args and callable(args[0]):
            return args[0]

        def decorator(fn):
            return fn

        return decorator


_U0 = np.uint64(0)


# ---------------------------------------------------------------------------
# Trace analysis
# ---------------------------------------------------------------------------
@njit(cache=True)
def _analyze_kernel(
    flat_bank, row, rows_per_bank, n_bank_ids, domain, max_hits, keep_detail
):
    """Fused analysis pass; all integer inputs are int64.

    Returns ``(n_act, n_unique, hist, act_rows, act_src)`` where
    ``hist`` is the dense per-row activation histogram over ``domain``,
    ``act_rows`` the global row id of every activation in bank-grouped
    order, and ``act_src`` the original (program-order) index of each
    activation -- the permutation the caller gathers detail columns
    with.  ``max_hits < 0`` models pure open-page (activate only on row
    change).  Detail arrays are size-1 placeholders when
    ``keep_detail`` is false.
    """
    n = flat_bank.size

    # Counting sort by bank id, stable in program order.
    counts = np.zeros(n_bank_ids + 1, np.int64)
    for i in range(n):
        counts[flat_bank[i] + 1] += 1
    for b in range(1, n_bank_ids + 1):
        counts[b] += counts[b - 1]
    order = np.empty(n, np.int64)
    for i in range(n):
        b = flat_bank[i]
        order[counts[b]] = i
        counts[b] += 1

    hist = np.zeros(domain, np.int64)
    seen = np.zeros(domain, np.bool_)
    cap = n if keep_detail else 1
    act_rows = np.empty(cap, np.int64)
    act_src = np.empty(cap, np.int64)

    n_act = 0
    n_unique = 0
    prev_g = np.int64(-1)
    pos_in_run = np.int64(0)
    for idx in range(n):
        i = order[idx]
        g = flat_bank[i] * rows_per_bank + row[i]
        if not seen[g]:
            seen[g] = True
            n_unique += 1
        if g != prev_g:
            # Global row ids embed the bank id, so a bank-group boundary
            # always changes g: one comparison covers both run breaks.
            prev_g = g
            pos_in_run = 0
        else:
            pos_in_run += 1
        if max_hits < 0:
            is_act = pos_in_run == 0
        else:
            is_act = pos_in_run % max_hits == 0
        if is_act:
            hist[g] += 1
            if keep_detail:
                act_rows[n_act] = g
                act_src[n_act] = i
            n_act += 1
    return n_act, n_unique, hist, act_rows[:n_act], act_src[:n_act]


def analyze_trace_numba(
    flat_bank: np.ndarray,
    row: np.ndarray,
    *,
    rows_per_bank: int,
    max_hits: Optional[int],
    col: Optional[np.ndarray] = None,
    keep_detail: bool = False,
) -> Optional[TraceStats]:
    """Numba-tier :func:`~repro.dram.fast_model.analyze_trace` body.

    Inputs are assumed validated and non-empty by the dispatching
    wrapper.  Returns ``None`` when the global-row domain exceeds the
    dense-histogram budget -- the caller then falls through to the
    numpy tier (which has an ``np.unique`` sparse path) rather than
    allocating a pathological histogram here.
    """
    n = int(flat_bank.size)
    n_bank_ids = int(flat_bank.max()) + 1
    domain = (n_bank_ids - 1) * rows_per_bank + int(row.max()) + 1
    if not _histogram_domain_ok(domain, n):
        return None
    fb = np.ascontiguousarray(flat_bank, dtype=np.int64)
    rr = np.ascontiguousarray(row, dtype=np.int64)
    n_act, n_unique, hist, act_rows, act_src = _analyze_kernel(
        fb,
        rr,
        np.int64(rows_per_bank),
        np.int64(n_bank_ids),
        np.int64(domain),
        np.int64(-1 if max_hits is None else max_hits),
        bool(keep_detail),
    )
    row_ids = np.flatnonzero(hist)
    detail_rows = act_rows if keep_detail else None
    detail_cols = None
    if keep_detail and col is not None:
        # Gather through the original indices: same order *and* dtype as
        # the numpy tier's np.asarray(col)[order][act_mask].
        detail_cols = np.asarray(col)[act_src]
    return TraceStats(
        n_accesses=n,
        n_activations=int(n_act),
        n_hits=n - int(n_act),
        row_ids=row_ids.astype(np.int64, copy=False),
        acts_per_row=hist[row_ids],
        unique_rows_touched=int(n_unique),
        act_rows=detail_rows,
        act_cols=detail_cols,
    )


# ---------------------------------------------------------------------------
# Rubix-D translation
# ---------------------------------------------------------------------------
@njit(cache=True)
def _translate_kernel(
    lines,
    kp_shift,
    k_shift,
    p_mask,
    k_mask,
    seg_bits,
    seg_mask,
    curr,
    nxt,
    ptr,
    bank_mask,
    rank_mask,
    chan_mask,
    bank_bits,
    rank_shift,
    chan_shift,
    row_shift,
    ranks,
    banks,
    single,
):
    """Fused split + gather + xor-translate + decode; all scalars uint64.

    ``single`` short-circuits the flat-bank computation for the common
    single-rank single-channel geometry, mirroring the numpy tier.
    """
    n = lines.size
    flat = np.empty(n, np.uint64)
    out_row = np.empty(n, np.uint64)
    out_col = np.empty(n, np.uint64)
    zero = np.uint64(0)
    for i in range(n):
        v = lines[i]
        row_addr = v >> kp_shift
        vg = (v >> k_shift) & p_mask
        lig = v & k_mask
        if seg_bits != zero:
            seg = row_addr & seg_mask
            upper = row_addr >> seg_bits
            eidx = (vg << seg_bits) | seg
        else:
            seg = zero
            upper = row_addr
            eidx = vg
        t = upper ^ curr[eidx]
        partner = t ^ nxt[eidx]
        p = ptr[eidx]
        if t < p or partner < p:
            t = partner
        if seg_bits != zero:
            t = (t << seg_bits) | seg
        bank = t & bank_mask
        out_row[i] = t >> row_shift
        out_col[i] = (vg << k_shift) | lig
        if single:
            flat[i] = bank
        else:
            rank = (t >> bank_bits) & rank_mask
            channel = (t >> rank_shift) & chan_mask
            flat[i] = (channel * ranks + rank) * banks + bank
    return flat, out_row, out_col


def translate_trace_numba(mapping, lines: np.ndarray, *, validate: bool = True):
    """Numba-tier :meth:`RubixDMapping.translate_trace` body.

    Takes the mapping for its geometry and engine snapshots; returns a
    :class:`~repro.mapping.base.MappedTrace` bit-identical to the numpy
    gather tier (including the uint32 narrowing of the output arrays
    when the line-address space fits).
    """
    from repro.core.remap_engine import snapshot_engines
    from repro.mapping.base import MappedTrace
    from repro.utils.bitops import mask

    lines = np.ascontiguousarray(np.asarray(lines), dtype=np.uint64)
    c = mapping.config
    if validate and lines.size and int(lines.max()) >= c.total_lines:
        raise ValueError(
            f"line addresses exceed the {c.capacity_bytes} byte memory"
        )
    k, p, sb = mapping.k_bits, mapping.p_bits, mapping.segment_bits
    curr, nxt, ptr = snapshot_engines(mapping.engines, dtype=np.uint64)
    flat, row, col = _translate_kernel(
        lines,
        np.uint64(k + p),
        np.uint64(k),
        np.uint64(mask(p)),
        np.uint64(mask(k)),
        np.uint64(sb),
        np.uint64(mask(sb)),
        curr,
        nxt,
        ptr,
        np.uint64(mask(c.bank_bits)),
        np.uint64(mask(c.rank_bits)),
        np.uint64(mask(c.channel_bits)),
        np.uint64(c.bank_bits),
        np.uint64(c.bank_bits + c.rank_bits),
        np.uint64(c.bank_bits + c.rank_bits),
        np.uint64(c.bank_bits + c.rank_bits + c.channel_bits),
        np.uint64(c.ranks),
        np.uint64(c.banks),
        bool(c.ranks == 1 and c.channels == 1),
    )
    dtype = np.uint32 if c.line_addr_bits <= 32 else np.uint64
    return MappedTrace(
        flat_bank=flat.astype(dtype, copy=False),
        row=row.astype(dtype, copy=False),
        col=col.astype(dtype, copy=False),
        rows_per_bank=c.rows_per_bank,
    )


# ---------------------------------------------------------------------------
# Chunked-analyzer dense accumulation
# ---------------------------------------------------------------------------
@njit(cache=True)
def _merge_kernel(hist, seen, global_row, row_ids, acts):
    """Scatter one chunk into the window accumulators, in place."""
    for i in range(global_row.size):
        seen[global_row[i]] = True
    for j in range(row_ids.size):
        hist[row_ids[j]] += acts[j]


def merge_chunk_numba(
    hist: np.ndarray,
    seen: np.ndarray,
    global_row: np.ndarray,
    row_ids: np.ndarray,
    acts_per_row: np.ndarray,
) -> None:
    """Numba-tier cross-chunk accumulation (same contract as numpy's)."""
    _merge_kernel(
        hist,
        seen,
        np.ascontiguousarray(global_row, dtype=np.int64),
        np.ascontiguousarray(row_ids, dtype=np.int64),
        np.ascontiguousarray(acts_per_row, dtype=np.int64),
    )


def remap_steps_numba(engine, count: int) -> int:
    """Numba registry entry for the remap kernel.

    The closed-form swap count is already O(epochs crossed) scalar math;
    a JIT can't improve it, so this tier shares the numpy entry -- kept
    as an explicit registration so ``--all-backends`` sweeps exercise
    every (kernel, backend) cell uniformly.
    """
    return engine.remap_steps(count, backend="numpy")


if NUMBA_AVAILABLE:  # pragma: no cover - registered only with numba present
    register("analyze_trace", "numba")(analyze_trace_numba)
    register("translate_trace", "numba")(translate_trace_numba)
    register("chunk_merge", "numba")(merge_chunk_numba)
    register("remap_steps", "numba")(remap_steps_numba)


def warmup(config=None) -> bool:
    """Compile every jitted kernel on tiny inputs; returns availability.

    Call once before timing the numba backend -- first-call compilation
    otherwise lands inside the measured region.  A no-op (returning
    False) without numba.
    """
    if not NUMBA_AVAILABLE:
        return False
    fb = np.zeros(4, np.int64)
    rw = np.arange(4, dtype=np.int64)
    _analyze_kernel(fb, rw, np.int64(16), np.int64(1), np.int64(16), np.int64(16), True)
    hist = np.zeros(4, np.int64)
    seen = np.zeros(4, np.bool_)
    _merge_kernel(hist, seen, rw % 4, np.arange(2, dtype=np.int64), np.ones(2, np.int64))
    regs = np.zeros(2, np.uint64)
    one = np.uint64(1)
    _translate_kernel(
        np.arange(4, dtype=np.uint64),
        one, one, one, one, _U0, _U0, regs, regs, regs,
        one, _U0, _U0, one, one, one, one, one, one, True,
    )
    return True


__all__ = [
    "NUMBA_AVAILABLE",
    "analyze_trace_numba",
    "merge_chunk_numba",
    "remap_steps_numba",
    "translate_trace_numba",
    "warmup",
]
