"""Performance modeling: from trace statistics to normalized IPC.

:mod:`repro.perf.simulator` drives a trace through a mapping and the
fast DRAM analyzer, then :mod:`repro.perf.core_model` converts the
measured activation/hit mix and mitigation-invocation counts into an
execution-time estimate.  All calibration constants live in
:class:`repro.perf.core_model.Calibration` and are documented in
EXPERIMENTS.md.  :mod:`repro.perf.backends` selects which kernel tier
(reference / numpy / numba) the hot paths run on.

Exports resolve lazily (PEP 562): low-level modules (the DRAM analyzer,
the remap engine) import ``repro.perf.backends`` for kernel dispatch,
and an eager package ``__init__`` would close an import cycle through
the simulator stack right back onto them.
"""

import importlib

_EXPORTS = {
    "Calibration": ("repro.perf.core_model", "Calibration"),
    "PerformanceModel": ("repro.perf.core_model", "PerformanceModel"),
    "Simulator": ("repro.perf.simulator", "Simulator"),
    "RunResult": ("repro.perf.simulator", "RunResult"),
    "geometric_mean": ("repro.perf.metrics", "geometric_mean"),
    "percent": ("repro.perf.metrics", "percent"),
    "slowdown_percent": ("repro.perf.metrics", "slowdown_percent"),
    "resolve_backend": ("repro.perf.backends", "resolve_backend"),
    "available_backends": ("repro.perf.backends", "available_backends"),
    "numba_available": ("repro.perf.backends", "numba_available"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.perf' has no attribute '{name}'")
    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
