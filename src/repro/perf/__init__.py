"""Performance modeling: from trace statistics to normalized IPC.

:mod:`repro.perf.simulator` drives a trace through a mapping and the
fast DRAM analyzer, then :mod:`repro.perf.core_model` converts the
measured activation/hit mix and mitigation-invocation counts into an
execution-time estimate.  All calibration constants live in
:class:`repro.perf.core_model.Calibration` and are documented in
EXPERIMENTS.md.
"""

from repro.perf.core_model import Calibration, PerformanceModel
from repro.perf.metrics import geometric_mean, percent, slowdown_percent
from repro.perf.simulator import RunResult, Simulator

__all__ = [
    "Calibration",
    "PerformanceModel",
    "Simulator",
    "RunResult",
    "geometric_mean",
    "percent",
    "slowdown_percent",
]
