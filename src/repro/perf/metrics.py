"""Small metric helpers shared by experiments and reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for the normalized-performance summaries)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain mean (the paper's hot-row 'Mean' bars are arithmetic)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def slowdown_percent(normalized_performance: float) -> float:
    """Convert normalized IPC (baseline=1.0) into percent slowdown.

    >>> round(slowdown_percent(0.8), 1)
    25.0
    """
    if normalized_performance <= 0:
        raise ValueError("normalized performance must be positive")
    return (1.0 / normalized_performance - 1.0) * 100.0


def percent(fraction: float) -> float:
    """Fraction -> percent."""
    return fraction * 100.0


__all__ = ["geometric_mean", "arithmetic_mean", "slowdown_percent", "percent"]
