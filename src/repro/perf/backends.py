"""Kernel-backend registry: reference / numpy / numba implementations.

The three hot kernels (trace translation, trace analysis, remap-sweep
advancement) plus the chunked analyzer's cross-chunk merge each exist in
up to three tiers:

* ``reference`` -- the pre-optimization pure-numpy implementations kept
  in-tree (argsort/np.unique analysis, masked per-engine translation,
  per-episode remap walk).  Slow, simple, the baseline every other tier
  is asserted bit-identical against.
* ``numpy`` -- the vectorized kernels of PR 3 (counting-sort grouping,
  gather translation, closed-form swap counting).  Always available.
* ``numba`` -- ``@njit(cache=True)`` single-pass compiled kernels
  (:mod:`repro.perf.numba_kernels`).  Registered only when numba
  imports; everything else transparently falls back to ``numpy``.

Selection order for every entry point:

1. an explicit ``backend=`` kwarg (``Simulator``, ``Campaign``,
   ``analyze_trace``, ``translate_trace``, ...),
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. the default, ``numpy``.

Requesting ``numba`` without numba installed degrades to ``numpy`` with
a one-time :class:`BackendFallbackWarning` -- never an error, and never
a different result: all backends are bit-identical by contract, which is
also why backend choice is deliberately *excluded* from stats-cache keys
(``repro.parallel.cache``) -- entries computed under any backend are
valid for every other.
"""

from __future__ import annotations

import importlib
import os
import warnings
from typing import Callable, Dict, Optional, Tuple

from repro.obs.profile import wrap_kernel

#: Environment variable selecting the default kernel backend.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Every backend tier, in reference-first order.
BACKENDS: Tuple[str, ...] = ("reference", "numpy", "numba")

#: The default when neither kwarg nor environment chooses.
DEFAULT_BACKEND = "numpy"

#: Kernel names the registry resolves.
KERNELS: Tuple[str, ...] = (
    "translate_trace",
    "analyze_trace",
    "remap_steps",
    "chunk_merge",
)

#: Modules whose import registers kernel implementations; looked up
#: lazily so the registry never creates import cycles with the modules
#: that own the kernels.
_PROVIDERS: Tuple[str, ...] = (
    "repro.dram.fast_model",
    "repro.core.rubix_d",
    "repro.core.remap_engine",
    "repro.perf.numba_kernels",
)

_REGISTRY: Dict[Tuple[str, str], Callable] = {}
_PROVIDERS_LOADED = False


class BackendFallbackWarning(RuntimeWarning):
    """A requested backend is unavailable; a slower tier ran instead."""


def register(kernel: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator registering one kernel implementation.

    Usage::

        @register("analyze_trace", "numpy")
        def _analyze_numpy(...): ...

    Re-registration overwrites (module reloads in tests).
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel '{kernel}'; known: {', '.join(KERNELS)}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend '{backend}'; known: {', '.join(BACKENDS)}")

    def decorator(fn: Callable) -> Callable:
        _REGISTRY[(kernel, backend)] = fn
        return fn

    return decorator


def _load_providers() -> None:
    global _PROVIDERS_LOADED
    if _PROVIDERS_LOADED:
        return
    _PROVIDERS_LOADED = True
    for module in _PROVIDERS:
        importlib.import_module(module)


def numba_available() -> bool:
    """Whether the numba JIT tier can run (cached capability probe)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            importlib.import_module("numba")
        except Exception:
            # Any import failure (missing, broken install, llvmlite ABI
            # mismatch) means the tier is unusable; fall back.
            _NUMBA_AVAILABLE = False
        else:
            _NUMBA_AVAILABLE = True
    return _NUMBA_AVAILABLE


_NUMBA_AVAILABLE: Optional[bool] = None
_FALLBACK_WARNED = False


def available_backends() -> Tuple[str, ...]:
    """The backends that can actually run in this process."""
    if numba_available():
        return BACKENDS
    return tuple(b for b in BACKENDS if b != "numba")


def validate_backend(name: str) -> str:
    """Check a backend name (not its availability); returns it."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend '{name}'; known: {', '.join(BACKENDS)}"
        )
    return name


def resolve_backend(requested: Optional[str] = None) -> str:
    """Resolve kwarg > environment > default to a *runnable* backend.

    An unknown name raises ``ValueError`` (explicit kwarg) or warns and
    falls back to the default (environment -- a typo in a shell profile
    must not break every run).  ``numba`` without numba installed
    degrades to ``numpy`` with a one-time
    :class:`BackendFallbackWarning`.
    """
    global _FALLBACK_WARNED
    if requested is not None:
        backend = validate_backend(requested)
    else:
        env = os.environ.get(KERNEL_BACKEND_ENV, "").strip().lower()
        if not env:
            backend = DEFAULT_BACKEND
        elif env in BACKENDS:
            backend = env
        else:
            warnings.warn(
                f"{KERNEL_BACKEND_ENV}={env!r} names no known backend "
                f"(known: {', '.join(BACKENDS)}); using {DEFAULT_BACKEND}",
                BackendFallbackWarning,
                stacklevel=2,
            )
            backend = DEFAULT_BACKEND
    if backend == "numba" and not numba_available():
        if not _FALLBACK_WARNED:
            warnings.warn(
                "numba backend requested but numba is not importable; "
                "falling back to numpy (results are bit-identical, only "
                "slower). Install the 'numba' extra to enable the JIT tier.",
                BackendFallbackWarning,
                stacklevel=2,
            )
            _FALLBACK_WARNED = True
        backend = "numpy"
    return backend


def get_kernel(kernel: str, backend: str) -> Callable:
    """Look up one registered implementation (loads providers lazily).

    The ``numba`` entries exist only when numba is importable; resolve
    names through :func:`resolve_backend` first unless probing the
    registry itself.  With the sampling profiler on
    (:mod:`repro.obs.profile`), the returned callable is scoped under a
    profiler phase named after the kernel; otherwise the registered
    function comes back unchanged (identity-preserving).
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel '{kernel}'; known: {', '.join(KERNELS)}")
    validate_backend(backend)
    _load_providers()
    try:
        impl = _REGISTRY[(kernel, backend)]
    except KeyError:
        raise LookupError(
            f"no '{backend}' implementation registered for kernel '{kernel}'"
            + ("" if numba_available() or backend != "numba" else " (numba not installed)")
        ) from None
    return wrap_kernel(kernel, impl)


def registered_kernels() -> Dict[str, Tuple[str, ...]]:
    """Kernel -> registered backend names (for introspection/benchs)."""
    _load_providers()
    table: Dict[str, Tuple[str, ...]] = {}
    for kernel in KERNELS:
        table[kernel] = tuple(
            b for b in BACKENDS if (kernel, b) in _REGISTRY
        )
    return table


def _reset_probe_for_tests() -> None:
    """Forget the capability probe and fallback-warning latch (tests)."""
    global _NUMBA_AVAILABLE, _FALLBACK_WARNED
    _NUMBA_AVAILABLE = None
    _FALLBACK_WARNED = False


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "KERNELS",
    "KERNEL_BACKEND_ENV",
    "BackendFallbackWarning",
    "available_backends",
    "get_kernel",
    "numba_available",
    "register",
    "registered_kernels",
    "resolve_backend",
    "validate_backend",
]
