"""Hot-path kernel benchmark harness (see ``scripts/bench_hotpath.py``).

Three kernels dominate fast-tier simulation time on multi-million-line
windows, and each now has a vectorized implementation next to its
pre-optimization reference, kept in-tree:

* **translate** -- :meth:`RubixDMapping.translate_trace` (gather over
  snapshot register arrays) vs :meth:`RubixDMapping._translate_trace_loop`
  (one masked pass per remap engine),
* **analyze** -- :func:`analyze_trace` with ``method="count"`` (counting
  sort + dense histograms) vs ``method="sort"`` (argsort/np.unique),
* **remap** -- :meth:`XorRemapEngine.remap_steps` (closed-form swap
  counting) vs :meth:`XorRemapEngine._remap_steps_loop` (per-episode walk),

plus an **end-to-end** dynamic window (chunked map + analyze +
activation-driven remap advancement, mirroring
:meth:`~repro.perf.simulator.Simulator._run_dynamic`) run once with every
reference kernel and once with every optimized kernel.

Every benchmark *asserts* that both implementations produce bit-identical
results before reporting timings, so a regression in equivalence fails
loudly rather than producing a fast-but-wrong number.  Timings are
best-of-``reps`` over warmed inputs (first-touch page faults on fresh
10M-element allocations otherwise dominate and distort per-kernel
numbers on this class of machine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.rubix_d import RubixDMapping
from repro.dram.config import DRAMConfig, baseline_config
from repro.dram.fast_model import ChunkedAnalyzer, TraceStats, analyze_trace
from repro.mapping.base import MappedTrace
from repro.workloads.trace import interleave, iter_line_chunks

#: Default window length -- the ISSUE's benchmark target.
DEFAULT_LINES = 10_000_000

#: Default seed for the synthetic benchmark trace.
DEFAULT_SEED = 0xB16B00


@dataclass(frozen=True)
class KernelResult:
    """Timing of one kernel pair (reference vs optimized)."""

    name: str
    legacy_s: float
    optimized_s: float

    @property
    def speedup(self) -> float:
        if self.optimized_s <= 0.0:
            return float("inf")
        return self.legacy_s / self.optimized_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "legacy_s": self.legacy_s,
            "optimized_s": self.optimized_s,
            "speedup": self.speedup,
        }


def synth_lines(n: int, config: DRAMConfig, seed: int = DEFAULT_SEED) -> np.ndarray:
    """A mixed synthetic line stream: hot gangs, streaming scans, pool.

    One quarter of the accesses hammer a small hot set (row-buffer hits
    and hot rows), one quarter streams sequentially (long same-row runs
    that exercise the open-adaptive budget), and the rest draws
    uniformly from the full line space (cold misses).  The three streams
    interleave deterministically, so the same ``(n, seed)`` always
    yields the same trace.
    """
    rng = np.random.default_rng(seed)
    total = config.total_lines
    n_hot = n // 4
    n_seq = n // 4
    n_rand = n - n_hot - n_seq
    hot_set = rng.integers(0, total, size=64, dtype=np.uint64)
    hot = hot_set[rng.integers(0, hot_set.size, size=n_hot)]
    start = int(rng.integers(0, max(1, total - n_seq)))
    seq = np.arange(start, start + n_seq, dtype=np.uint64)
    rand = rng.integers(0, total, size=n_rand, dtype=np.uint64)
    return interleave([hot, seq, rand])


def _best_of(fn: Callable[[], object], reps: int) -> Tuple[float, object]:
    """Minimum wall-clock over ``reps`` calls, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def assert_stats_equal(a: TraceStats, b: TraceStats) -> None:
    """Require two analysis results to be bit-identical, detail included."""
    assert a.n_accesses == b.n_accesses
    assert a.n_activations == b.n_activations
    assert a.n_hits == b.n_hits
    assert a.unique_rows_touched == b.unique_rows_touched
    assert np.array_equal(a.row_ids, b.row_ids)
    assert np.array_equal(a.acts_per_row, b.acts_per_row)
    assert (a.act_rows is None) == (b.act_rows is None)
    if a.act_rows is not None:
        assert np.array_equal(a.act_rows, b.act_rows)
    assert (a.act_cols is None) == (b.act_cols is None)
    if a.act_cols is not None:
        assert np.array_equal(a.act_cols, b.act_cols)


def assert_mapped_equal(a: MappedTrace, b: MappedTrace) -> None:
    """Require two translations to agree field-for-field."""
    assert np.array_equal(np.asarray(a.flat_bank), np.asarray(b.flat_bank))
    assert np.array_equal(np.asarray(a.row), np.asarray(b.row))
    assert np.array_equal(np.asarray(a.col), np.asarray(b.col))


def _use_loop_remap(mapping: RubixDMapping) -> None:
    """Route a mapping's remap advancement through the stepwise walk.

    Per-instance rebinding -- the engines' class is untouched, so the
    legacy end-to-end measurement below runs entirely on reference
    kernels without affecting anything else in the process.
    """
    for engine in mapping.engines:
        engine.remap_steps = engine._remap_steps_loop  # type: ignore[method-assign]


def run_window(
    mapping: RubixDMapping,
    lines: np.ndarray,
    *,
    chunk_lines: int,
    max_hits: Optional[int] = 16,
    optimized: bool = True,
    backend: Optional[str] = None,
) -> Tuple[TraceStats, int]:
    """One dynamic window, exactly as the simulator runs it.

    ``optimized=False`` replays the pre-optimization pipeline: masked
    per-engine translation, argsort/np.unique analysis, and (when the
    caller also applied :func:`_use_loop_remap`) per-episode remap
    stepping.  ``backend`` pins the whole window to one kernel tier
    (translate, analyze, chunk merge, and remap advancement), exactly
    as ``Simulator(backend=...)`` does.  All variants drive the same
    chunking and activation attribution, so their results must match
    bit-for-bit.
    """
    analyzer = ChunkedAnalyzer(
        rows_per_bank=mapping.config.rows_per_bank,
        max_hits=max_hits,
        method="count" if optimized else "sort",
        backend=backend,
    )
    swaps = 0
    k = mapping.k_bits
    for chunk in iter_line_chunks(lines, chunk_lines):
        if optimized:
            mapped = mapping.translate_trace(chunk, validate=False, backend=backend)
        else:
            mapped = mapping._translate_trace_loop(chunk)
        chunk_stats = analyzer.feed(mapped.flat_bank, mapped.row, mapped.col)
        vgroup = np.asarray(mapped.col).astype(np.int64) >> np.int64(k)
        shares = np.bincount(vgroup, minlength=mapping.vgroups).astype(np.float64)
        total = shares.sum()
        if total > 0 and chunk_stats.n_activations > 0:
            shares *= chunk_stats.n_activations / total
        swaps += mapping.record_activations(shares, backend=backend)
    return analyzer.result(), swaps


def bench_translate(
    mapping: RubixDMapping, lines: np.ndarray, *, reps: int
) -> KernelResult:
    """Gather-based chunk translation vs the per-engine masked loop."""
    slow, ref = _best_of(lambda: mapping._translate_trace_loop(lines), reps)
    fast, new = _best_of(lambda: mapping.translate_trace(lines, validate=False), reps)
    assert_mapped_equal(ref, new)
    return KernelResult("translate_trace", slow, fast)


def bench_analyze(
    mapping: RubixDMapping, lines: np.ndarray, *, reps: int, max_hits: Optional[int] = 16
) -> KernelResult:
    """Counting-kernel analysis vs the argsort/np.unique reference."""
    mapped = mapping.translate_trace(lines, validate=False)
    rows_per_bank = mapping.config.rows_per_bank

    def run(method: str) -> TraceStats:
        return analyze_trace(
            mapped.flat_bank,
            mapped.row,
            rows_per_bank=rows_per_bank,
            max_hits=max_hits,
            col=mapped.col,
            method=method,
        )

    slow, ref = _best_of(lambda: run("sort"), reps)
    fast, new = _best_of(lambda: run("count"), reps)
    assert_stats_equal(ref, new)
    return KernelResult("analyze_trace", slow, fast)


def bench_e2e(
    config: DRAMConfig,
    lines: np.ndarray,
    *,
    chunk_lines: int,
    reps: int,
    gang_size: int = 4,
    segments: int = 1,
    seed: int = DEFAULT_SEED,
) -> KernelResult:
    """Full dynamic window: map + analyze + remap, legacy vs optimized.

    Fresh same-seed mappings per repetition (remap state advances during
    a window); the two pipelines' merged :class:`TraceStats` and swap
    totals are asserted bit-identical -- this is the acceptance check
    that the simulator's :class:`~repro.perf.simulator.RunResult`
    inputs are unchanged by the optimization.
    """

    def fresh() -> RubixDMapping:
        return RubixDMapping(config, gang_size=gang_size, seed=seed, segments=segments)

    def legacy() -> Tuple[TraceStats, int]:
        mapping = fresh()
        _use_loop_remap(mapping)
        return run_window(mapping, lines, chunk_lines=chunk_lines, optimized=False)

    def optimized() -> Tuple[TraceStats, int]:
        return run_window(fresh(), lines, chunk_lines=chunk_lines, optimized=True)

    slow, ref = _best_of(legacy, reps)
    fast, new = _best_of(optimized, reps)
    ref_stats, ref_swaps = ref
    new_stats, new_swaps = new
    assert ref_swaps == new_swaps, f"swap totals differ: {ref_swaps} vs {new_swaps}"
    assert_stats_equal(ref_stats, new_stats)
    return KernelResult("e2e_window", slow, fast)


def run_benchmarks(
    *,
    lines: int = DEFAULT_LINES,
    reps: int = 3,
    seed: int = DEFAULT_SEED,
    chunk_lines: int = 1 << 20,
    gang_size: int = 4,
    segments: int = 1,
    config: Optional[DRAMConfig] = None,
) -> Dict[str, object]:
    """Run all four kernel benchmarks; returns a JSON-ready report.

    Every pair is equivalence-checked before timing is reported, so a
    returned report certifies bit-identical results at its parameters.
    """
    config = config or baseline_config()
    trace = synth_lines(lines, config, seed=seed)
    mapping = RubixDMapping(config, gang_size=gang_size, seed=seed, segments=segments)
    # A remap-kernel call that crosses one epoch boundary (1.33x the
    # engine's space), so the wrap-around path -- key rotation and
    # pointer reset mid-count -- is always part of the equivalence check.
    remap_steps = mapping.engines[0].space + mapping.engines[0].space // 3

    results = [
        bench_translate(mapping, trace, reps=reps),
        bench_analyze(mapping, trace, reps=reps),
        bench_remap_steps_for(mapping, steps=remap_steps, reps=reps, seed=seed),
        bench_e2e(
            config,
            trace,
            chunk_lines=chunk_lines,
            reps=reps,
            gang_size=gang_size,
            segments=segments,
            seed=seed,
        ),
    ]
    return {
        "config": {
            "lines": int(lines),
            "reps": int(reps),
            "seed": int(seed),
            "chunk_lines": int(chunk_lines),
            "gang_size": int(gang_size),
            "segments": int(segments),
            "remap_steps": int(remap_steps),
            "total_lines": int(config.total_lines),
            "numpy": np.__version__,
        },
        "equivalence": "bit-identical (asserted in-run for every kernel pair)",
        "kernels": {r.name: r.as_dict() for r in results},
    }


def bench_remap_steps_for(
    mapping: RubixDMapping, *, steps: int, reps: int, seed: int
) -> KernelResult:
    """Remap-kernel benchmark sized to a mapping's engine space."""
    from repro.core.remap_engine import XorRemapEngine

    nbits = mapping.engines[0].nbits

    def loop() -> Tuple[int, int, int, int, int]:
        e = XorRemapEngine(nbits=nbits, seed=seed)
        swaps = e._remap_steps_loop(steps)
        return (swaps, e.swaps_performed, e.swaps_skipped, e.ptr, e.epochs_completed)

    def closed() -> Tuple[int, int, int, int, int]:
        e = XorRemapEngine(nbits=nbits, seed=seed)
        swaps = e.remap_steps(steps)
        return (swaps, e.swaps_performed, e.swaps_skipped, e.ptr, e.epochs_completed)

    slow, ref = _best_of(loop, reps)
    fast, new = _best_of(closed, reps)
    assert ref == new, f"remap_steps mismatch: loop={ref} closed={new}"
    return KernelResult("remap_steps", slow, fast)


# ---------------------------------------------------------------------------
# Per-backend benchmark matrix (reference / numpy / numba)
# ---------------------------------------------------------------------------
def run_backend_benchmarks(
    *,
    backends: Optional[Tuple[str, ...]] = None,
    lines: int = DEFAULT_LINES,
    reps: int = 3,
    seed: int = DEFAULT_SEED,
    chunk_lines: int = 1 << 20,
    gang_size: int = 4,
    segments: int = 1,
    config: Optional[DRAMConfig] = None,
) -> Dict[str, object]:
    """Time every hot kernel on every requested backend tier.

    Defaults to every backend the process can actually run (numba drops
    out when the package is absent -- it is reported under
    ``"unavailable"`` rather than silently timed as its numpy fallback).
    The numba tier is warmed up first so JIT compilation never pollutes
    a timing.  Each kernel's per-backend results are asserted
    bit-identical against the reference tier before any timing is
    reported, making the report a cross-backend equivalence certificate
    at its parameters.
    """
    from repro.perf.backends import available_backends, validate_backend

    requested = tuple(backends) if backends else available_backends()
    for name in requested:
        validate_backend(name)
    usable = tuple(b for b in requested if b in available_backends())
    unavailable = [b for b in requested if b not in usable]
    if not usable:
        raise ValueError(f"no usable backend among {requested!r}")

    config = config or baseline_config()
    if "numba" in usable:
        from repro.perf.numba_kernels import warmup

        warmup(config)
    trace = synth_lines(lines, config, seed=seed)
    mapping = RubixDMapping(config, gang_size=gang_size, seed=seed, segments=segments)
    rows_per_bank = config.rows_per_bank
    remap_steps = mapping.engines[0].space + mapping.engines[0].space // 3
    nbits = mapping.engines[0].nbits
    mapped = mapping.translate_trace(trace, validate=False)

    def time_translate(backend: str):
        return _best_of(
            lambda: mapping.translate_trace(trace, validate=False, backend=backend),
            reps,
        )

    def time_analyze(backend: str):
        return _best_of(
            lambda: analyze_trace(
                mapped.flat_bank,
                mapped.row,
                rows_per_bank=rows_per_bank,
                max_hits=16,
                col=mapped.col,
                backend=backend,
            ),
            reps,
        )

    def time_remap(backend: str):
        from repro.core.remap_engine import XorRemapEngine

        def run() -> Tuple[int, int, int, int, int]:
            e = XorRemapEngine(nbits=nbits, seed=seed)
            swaps = e.remap_steps(remap_steps, backend=backend)
            return (swaps, e.swaps_performed, e.swaps_skipped, e.ptr, e.epochs_completed)

        return _best_of(run, reps)

    def time_e2e(backend: str):
        def run() -> Tuple[TraceStats, int]:
            fresh = RubixDMapping(
                config, gang_size=gang_size, seed=seed, segments=segments
            )
            return run_window(
                fresh, trace, chunk_lines=chunk_lines, backend=backend
            )

        return _best_of(run, reps)

    timers = {
        "translate_trace": (time_translate, assert_mapped_equal),
        "analyze_trace": (time_analyze, assert_stats_equal),
        "remap_steps": (time_remap, lambda a, b: _assert_plain_equal(a, b)),
        "e2e_window": (time_e2e, _assert_window_equal),
    }
    kernels: Dict[str, Dict[str, object]] = {}
    for kernel, (timer, check) in timers.items():
        seconds: Dict[str, float] = {}
        baseline_result = None
        for backend in usable:
            elapsed, result = timer(backend)
            seconds[kernel_key(backend)] = elapsed
            if baseline_result is None:
                baseline_result = result
            else:
                check(baseline_result, result)
        ref = seconds.get("reference")
        kernels[kernel] = {
            "seconds": seconds,
            "speedup_vs_reference": (
                {b: ref / s for b, s in seconds.items() if s > 0}
                if ref is not None
                else {}
            ),
        }
    return {
        "config": {
            "lines": int(lines),
            "reps": int(reps),
            "seed": int(seed),
            "chunk_lines": int(chunk_lines),
            "gang_size": int(gang_size),
            "segments": int(segments),
            "remap_steps": int(remap_steps),
            "total_lines": int(config.total_lines),
            "numpy": np.__version__,
        },
        "backends": list(usable),
        "unavailable": unavailable,
        "equivalence": "bit-identical across backends (asserted in-run per kernel)",
        "kernels": kernels,
    }


def kernel_key(backend: str) -> str:
    """Backend names pass through unchanged (hook for future variants)."""
    return backend


def _assert_plain_equal(a: object, b: object) -> None:
    assert a == b, f"backend results differ: {a!r} vs {b!r}"


def _assert_window_equal(a: Tuple[TraceStats, int], b: Tuple[TraceStats, int]) -> None:
    assert a[1] == b[1], f"swap totals differ: {a[1]} vs {b[1]}"
    assert_stats_equal(a[0], b[0])


def format_backend_report(report: Dict[str, object]) -> str:
    """Human-readable matrix for one :func:`run_backend_benchmarks` report."""
    cfg = report["config"]
    backends = list(report["backends"])
    header = f"{'kernel':<16}" + "".join(f" {b + ' (s)':>14}" for b in backends)
    lines = [
        f"kernel backends @ {cfg['lines']:,} lines "
        f"(reps={cfg['reps']}, seed={cfg['seed']:#x}, "
        f"GS{cfg['gang_size']}, segments={cfg['segments']})",
        header,
    ]
    for name, entry in report["kernels"].items():
        seconds = entry["seconds"]
        row = f"{name:<16}" + "".join(
            f" {seconds.get(b, float('nan')):>14.4f}" for b in backends
        )
        lines.append(row)
    if report.get("unavailable"):
        lines.append(f"unavailable: {', '.join(report['unavailable'])}")
    lines.append(f"equivalence: {report['equivalence']}")
    return "\n".join(lines)


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table for one :func:`run_benchmarks` report."""
    cfg = report["config"]
    lines = [
        f"hot-path kernels @ {cfg['lines']:,} lines "
        f"(reps={cfg['reps']}, seed={cfg['seed']:#x}, "
        f"GS{cfg['gang_size']}, segments={cfg['segments']})",
        f"{'kernel':<16} {'legacy (s)':>12} {'optimized (s)':>14} {'speedup':>9}",
    ]
    for name, entry in report["kernels"].items():
        lines.append(
            f"{name:<16} {entry['legacy_s']:>12.4f} "
            f"{entry['optimized_s']:>14.4f} {entry['speedup']:>8.2f}x"
        )
    lines.append(f"equivalence: {report['equivalence']}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_LINES",
    "DEFAULT_SEED",
    "KernelResult",
    "assert_mapped_equal",
    "assert_stats_equal",
    "bench_analyze",
    "bench_e2e",
    "bench_remap_steps_for",
    "bench_translate",
    "format_backend_report",
    "format_report",
    "run_backend_benchmarks",
    "run_benchmarks",
    "run_window",
    "synth_lines",
]
