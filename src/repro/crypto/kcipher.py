"""K-Cipher stand-in: a low-latency programmable-bit-width PRP.

The real K-Cipher [Kounavis et al., ISCC 2020] is a hardware cipher with
parameterizable block size and ~3-cycle latency at 10 nm; Rubix-S keeps
one instance in the memory controller and encrypts the gang address of
every memory access.  For the simulator, the properties that matter are:

* it is a keyed bijection over exactly ``width`` bits (so every encrypted
  address is a valid address and no two collide),
* the mapping looks random (diffusion), and
* a fixed small pipeline latency that the performance model charges.

This class provides those on top of :class:`~repro.crypto.feistel.FeistelNetwork`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.crypto.feistel import FeistelNetwork

IntOrArray = Union[int, np.ndarray]

#: Pipeline latency of the cipher in CPU cycles (3 at 10 nm per the paper).
KCIPHER_LATENCY_CYCLES = 3

#: Key width of the modeled cipher (96-bit key per the paper).
KCIPHER_KEY_BITS = 96


class KCipher:
    """Programmable-width block cipher used by Rubix-S.

    Args:
        width: Block width in bits (the paper uses a 28-bit cipher for
            line-level randomization of 16 GB and 26 bits at gang-size 4).
        key: Up to 96-bit integer key.
        rounds: Feistel rounds (even, default 6).
    """

    def __init__(self, width: int, key: int, rounds: int = 6) -> None:
        if key < 0 or key.bit_length() > KCIPHER_KEY_BITS:
            raise ValueError(f"key must fit in {KCIPHER_KEY_BITS} bits")
        self.width = width
        self.key = key
        self.latency_cycles = KCIPHER_LATENCY_CYCLES
        self._network = FeistelNetwork(width=width, key=key, rounds=rounds)

    def encrypt(self, value: IntOrArray, *, validate: bool = True) -> IntOrArray:
        """Encrypt one value or a numpy array of values.

        ``validate=False`` skips the array path's per-call domain scan;
        see :meth:`FeistelNetwork.encrypt`.
        """
        return self._network.encrypt(value, validate=validate)

    def decrypt(self, value: IntOrArray, *, validate: bool = True) -> IntOrArray:
        """Decrypt (inverse permutation)."""
        return self._network.decrypt(value, validate=validate)

    @property
    def storage_bytes(self) -> int:
        """SRAM needed in the controller: just the key (16 B per the paper)."""
        return KCIPHER_KEY_BITS // 8 + 4  # key plus width/round configuration

    def __repr__(self) -> str:
        return f"KCipher(width={self.width}, rounds={self._network.rounds})"


__all__ = ["KCipher", "KCIPHER_LATENCY_CYCLES", "KCIPHER_KEY_BITS"]
