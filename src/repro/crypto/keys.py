"""Key generation and schedules for the randomized mappings.

The hardware generates keys from a PRNG at boot (Rubix-S) or per remap
epoch (Rubix-D).  :class:`KeySchedule` models the epoch sequence of
Rubix-D keys: at each epoch transition ``currKey <- currKey xor nextKey``
and ``nextKey`` is drawn fresh, exactly as Section 5.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.bitops import mask
from repro.utils.prng import SplitMix64, derive_key


def generate_key(seed: int, label: str, nbits: int) -> int:
    """Derive a deterministic boot-time key for a named component."""
    return derive_key(seed, label, nbits)


@dataclass
class KeySchedule:
    """Epoch key sequence for one Rubix-D remap circuit.

    Attributes:
        nbits: Width of the keys (the row-address width being remapped).
        curr_key: Key all fully-remapped lines currently use.
        next_key: Incremental xor applied as the pointer sweeps.
    """

    nbits: int
    seed: int
    curr_key: int = field(init=False)
    next_key: int = field(init=False)
    epoch: int = field(init=False, default=0)
    _rng: SplitMix64 = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {self.nbits}")
        self._rng = SplitMix64(self.seed)
        self.curr_key = self._rng.next_bits(self.nbits)
        self.next_key = self._next_nonzero()

    def _next_nonzero(self) -> int:
        # A zero next_key would make the epoch a no-op sweep; hardware
        # would simply redraw, and so do we.
        while True:
            candidate = self._rng.next_bits(self.nbits)
            if candidate != 0:
                return candidate

    def advance_epoch(self) -> None:
        """Rotate keys at the end of a full remap sweep (Section 5.1)."""
        self.curr_key = (self.curr_key ^ self.next_key) & mask(self.nbits)
        self.next_key = self._next_nonzero()
        self.epoch += 1

    def history(self) -> List[int]:
        """(curr, next) pair for introspection/debugging."""
        return [self.curr_key, self.next_key]


__all__ = ["generate_key", "KeySchedule"]
