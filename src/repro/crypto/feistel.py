"""Arbitrary-bit-width Feistel network (a keyed bijection on [0, 2^n)).

Any even number of rounds of a (possibly unbalanced) Feistel network is a
bijection regardless of the round function, which is exactly the property
an address-space randomizer needs; the ARX round function provides the
diffusion.  Both scalar integers and numpy arrays are supported, with the
array path staying entirely in uint64 vector operations.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.utils.bitops import mask
from repro.utils.prng import SplitMix64

IntOrArray = Union[int, np.ndarray]

_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_M64 = mask(64)


def _mix64_scalar(value: int) -> int:
    value &= _M64
    value = ((value ^ (value >> 30)) * _MIX1) & _M64
    value = ((value ^ (value >> 27)) * _MIX2) & _M64
    return value ^ (value >> 31)


def _mix64_array(value: np.ndarray) -> np.ndarray:
    value = value.astype(np.uint64)
    with np.errstate(over="ignore"):
        value = (value ^ (value >> np.uint64(30))) * np.uint64(_MIX1)
        value = (value ^ (value >> np.uint64(27))) * np.uint64(_MIX2)
    return value ^ (value >> np.uint64(31))


class FeistelNetwork:
    """A Feistel PRP over ``width``-bit values.

    Args:
        width: Bit width of the domain, 1 <= width <= 63.  Width-1 domains
            degenerate to a keyed bit-flip (still a bijection).
        key: Master key; round keys are derived deterministically from it.
        rounds: Number of Feistel rounds (must be even so the half widths
            realign; default 6).
    """

    def __init__(self, width: int, key: int, rounds: int = 6) -> None:
        if not 1 <= width <= 63:
            raise ValueError(f"width must be in [1, 63], got {width}")
        if rounds < 2 or rounds % 2 != 0:
            raise ValueError(f"rounds must be even and >= 2, got {rounds}")
        self.width = width
        self.rounds = rounds
        self._left_bits = width // 2
        self._right_bits = width - self._left_bits
        rng = SplitMix64(key)
        self.round_keys: List[int] = [rng.next() for _ in range(rounds)]
        self._key_bit = key & mask(width)  # width-1 fallback

    # ------------------------------------------------------------------
    def _round_f(self, value: IntOrArray, round_key: int, out_bits: int) -> IntOrArray:
        if isinstance(value, np.ndarray):
            mixed = _mix64_array(value ^ np.uint64(round_key))
            return mixed & np.uint64(mask(out_bits))
        return _mix64_scalar(value ^ round_key) & mask(out_bits)

    def encrypt(self, value: IntOrArray, *, validate: bool = True) -> IntOrArray:
        """Encrypt a value (or array of values) in [0, 2^width).

        ``validate=False`` skips the array path's O(n) domain scan for
        callers that already checked the chunk once (scalars are always
        validated -- the check is O(1) there).
        """
        if self.width == 1:
            return self._xor_fallback(value, validate=validate)
        self._check_domain(value, validate)
        a, b = self._left_bits, self._right_bits
        left, right = self._split(value, a, b)
        for round_key in self.round_keys:
            # newL takes R's width; newR = L xor F(R); widths swap each round.
            left, right = right, self._xor(left, self._round_f(right, round_key, a))
            a, b = b, a
        return self._join(left, right, a, b)

    def decrypt(self, value: IntOrArray, *, validate: bool = True) -> IntOrArray:
        """Inverse of :meth:`encrypt` (``validate`` as in :meth:`encrypt`)."""
        if self.width == 1:
            return self._xor_fallback(value, validate=validate)
        self._check_domain(value, validate)
        # An even round count leaves the half widths where they started.
        a, b = self._left_bits, self._right_bits
        left, right = self._split(value, a, b)
        for round_key in reversed(self.round_keys):
            a, b = b, a
            left, right = self._xor(right, self._round_f(left, round_key, a)), left
        return self._join(left, right, a, b)

    # ------------------------------------------------------------------
    def _xor_fallback(self, value: IntOrArray, validate: bool = True) -> IntOrArray:
        self._check_domain(value, validate)
        if isinstance(value, np.ndarray):
            return value.astype(np.uint64) ^ np.uint64(self._key_bit)
        return value ^ self._key_bit

    def _check_domain(self, value: IntOrArray, validate: bool = True) -> None:
        limit = 1 << self.width
        if isinstance(value, np.ndarray):
            # The min/max scans are O(n) per call -- hot batch callers
            # validate once per chunk and pass validate=False.
            if validate and value.size and (
                int(value.max()) >= limit or int(value.min()) < 0
            ):
                raise ValueError(f"values out of [0, 2^{self.width}) domain")
        elif not 0 <= value < limit:
            raise ValueError(f"value {value} out of [0, 2^{self.width}) domain")

    @staticmethod
    def _split(value: IntOrArray, a: int, b: int) -> "tuple[IntOrArray, IntOrArray]":
        if isinstance(value, np.ndarray):
            v = value.astype(np.uint64)
            return (v >> np.uint64(b)) & np.uint64(mask(a)), v & np.uint64(mask(b))
        return (value >> b) & mask(a), value & mask(b)

    @staticmethod
    def _xor(x: IntOrArray, y: IntOrArray) -> IntOrArray:
        return x ^ y

    @staticmethod
    def _join(left: IntOrArray, right: IntOrArray, a: int, b: int) -> IntOrArray:
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            return (np.uint64(0) + left << np.uint64(b)) | right
        return (left << b) | right


__all__ = ["FeistelNetwork"]
