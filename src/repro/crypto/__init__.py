"""Cipher substrate for Rubix-S.

The paper uses K-Cipher, a low-latency cipher with *programmable bit
width* -- the property Rubix actually needs is a keyed bijection (a PRP)
over the gang-address space, of any width from a handful of bits up to
~28.  :class:`repro.crypto.kcipher.KCipher` provides that via a balanced
Feistel network with an ARX round function, fully vectorized over numpy
arrays so whole traces encrypt in one call.
"""

from repro.crypto.feistel import FeistelNetwork
from repro.crypto.kcipher import KCipher
from repro.crypto.keys import KeySchedule, generate_key

__all__ = ["FeistelNetwork", "KCipher", "KeySchedule", "generate_key"]
