"""Unit constants used throughout the simulator.

All times are expressed in seconds and all sizes in bytes unless a name
says otherwise.  Keeping the constants in one module avoids magic numbers
scattered through the DRAM timing and power models.
"""

# --- sizes ---------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of one cache line (the granularity of memory requests).
LINE_BYTES = 64

# --- times ---------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

#: DRAM refresh window.  Every row is refreshed once per tREFW; Rowhammer
#: activation counts are therefore evaluated over this window.
TREFW_S = 64 * MS

__all__ = ["KB", "MB", "GB", "LINE_BYTES", "NS", "US", "MS", "TREFW_S"]
