"""Deterministic pseudo-random number generation.

The hardware in the paper seeds its mapping keys from a boot-time PRNG.
We model that with SplitMix64: tiny, fast, and with well-understood
statistical quality -- and, critically for a reproduction, the same seed
always produces the same mapping on every platform.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.bitops import mask

_MASK64 = mask(64)
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64_step(state: int) -> "tuple[int, int]":
    """One SplitMix64 step: returns ``(new_state, output)``."""
    state = (state + _GOLDEN) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


class SplitMix64:
    """A seedable deterministic 64-bit PRNG.

    >>> rng = SplitMix64(seed=1)
    >>> a, b = rng.next(), rng.next()
    >>> a != b
    True
    >>> SplitMix64(seed=1).next() == a
    True
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next(self) -> int:
        """Return the next 64-bit output."""
        self._state, out = splitmix64_step(self._state)
        return out

    def next_bits(self, nbits: int) -> int:
        """Return the next output truncated to ``nbits`` bits (nbits <= 64)."""
        if not 0 < nbits <= 64:
            raise ValueError(f"nbits must be in [1, 64], got {nbits}")
        return self.next() & mask(nbits)

    def next_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` (rejection sampling)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        nbits = (bound - 1).bit_length() or 1
        while True:
            candidate = self.next_bits(nbits)
            if candidate < bound:
                return candidate

    def fork(self) -> "SplitMix64":
        """Return an independent child generator (stream splitting)."""
        return SplitMix64(self.next())

    def numpy_rng(self) -> np.random.Generator:
        """Return a numpy Generator seeded from this stream.

        Workload generators draw bulk samples through numpy for speed; we
        seed numpy from the SplitMix64 stream so a single integer seed
        still pins down every array draw.
        """
        return np.random.default_rng(self.next())


def derive_key(seed: int, label: str, nbits: int = 64) -> int:
    """Derive a named sub-key from a master seed.

    The label is absorbed one byte at a time with a full SplitMix64
    finalizer round per byte, so near-identical labels (e.g. the 128
    Rubix-D v-group names) yield independent keys.
    """
    state = seed & _MASK64
    for ch in label.encode("utf-8"):
        # Use the fully-mixed output (not the raw additive state) as the
        # next state: a weak absorb here causes key collisions between
        # labels that differ only in digit order.
        _, state = splitmix64_step(state ^ ch)
    _, out = splitmix64_step(state)
    return out & mask(nbits)


def random_keys(seed: int, count: int, nbits: int) -> List[int]:
    """Return ``count`` independent ``nbits``-bit keys from ``seed``."""
    rng = SplitMix64(seed)
    return [rng.next_bits(nbits) for _ in range(count)]


__all__ = ["SplitMix64", "splitmix64_step", "derive_key", "random_keys"]
