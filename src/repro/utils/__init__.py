"""Shared low-level utilities: bit manipulation, deterministic PRNGs, units.

These helpers are deliberately dependency-light (numpy only) and fully
deterministic so that every experiment in the repository is reproducible
bit-for-bit from a seed.
"""

from repro.utils.bitops import (
    bit_length_for,
    extract_bits,
    insert_bits,
    is_power_of_two,
    mask,
    reverse_bits,
    rotate_left,
    rotate_right,
)
from repro.utils.prng import SplitMix64, derive_key, random_keys
from repro.utils.units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    US,
    LINE_BYTES,
    TREFW_S,
)

__all__ = [
    "bit_length_for",
    "extract_bits",
    "insert_bits",
    "is_power_of_two",
    "mask",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
    "SplitMix64",
    "derive_key",
    "random_keys",
    "GB",
    "KB",
    "MB",
    "MS",
    "NS",
    "US",
    "LINE_BYTES",
    "TREFW_S",
]
