"""Bit-manipulation helpers shared by mappings, ciphers, and remap engines.

All functions accept either plain Python integers or numpy integer arrays;
the array versions are what the fast trace analyzer relies on, so each
helper is careful to stay within ``uint64`` arithmetic (no Python-object
fallback) when given an ``ndarray``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

IntOrArray = Union[int, np.ndarray]


def mask(nbits: int) -> int:
    """Return an integer with the low ``nbits`` bits set.

    >>> mask(3)
    7
    >>> mask(0)
    0
    """
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_length_for(count: int) -> int:
    """Number of bits needed to index ``count`` items (count must be a power of two).

    >>> bit_length_for(128)
    7
    """
    if not is_power_of_two(count):
        raise ValueError(f"count must be a power of two, got {count}")
    return count.bit_length() - 1


def extract_bits(value: IntOrArray, low: int, width: int) -> IntOrArray:
    """Extract ``width`` bits starting at bit position ``low``.

    >>> extract_bits(0b101100, 2, 3)
    3
    """
    if width < 0 or low < 0:
        raise ValueError("low and width must be non-negative")
    if isinstance(value, np.ndarray):
        return (value >> np.uint64(low)) & np.uint64(mask(width))
    return (value >> low) & mask(width)


def insert_bits(value: IntOrArray, low: int, width: int, field: IntOrArray) -> IntOrArray:
    """Return ``value`` with bits [low, low+width) replaced by ``field``.

    >>> bin(insert_bits(0b100001, 1, 3, 0b111))
    '0b101111'
    """
    if isinstance(value, np.ndarray) or isinstance(field, np.ndarray):
        hole = np.uint64(~(mask(width) << low) & mask(64))
        return (value & hole) | ((field & np.uint64(mask(width))) << np.uint64(low))
    hole = ~(mask(width) << low)
    return (value & hole) | ((field & mask(width)) << low)


def rotate_left(value: IntOrArray, shift: int, width: int) -> IntOrArray:
    """Rotate the low ``width`` bits of ``value`` left by ``shift``."""
    shift %= width
    m = mask(width)
    if isinstance(value, np.ndarray):
        value = value & np.uint64(m)
        return ((value << np.uint64(shift)) | (value >> np.uint64(width - shift))) & np.uint64(m)
    value &= m
    return ((value << shift) | (value >> (width - shift))) & m


def rotate_right(value: IntOrArray, shift: int, width: int) -> IntOrArray:
    """Rotate the low ``width`` bits of ``value`` right by ``shift``."""
    return rotate_left(value, width - (shift % width), width)


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of a Python integer.

    >>> reverse_bits(0b1101, 4)
    11
    """
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def parity(value: IntOrArray) -> IntOrArray:
    """Bit parity (xor-reduction of all bits) of ``value``.

    Used by xor-hash bank-index functions, which compute the parity of a
    masked subset of address bits.
    """
    if isinstance(value, np.ndarray):
        v = value.astype(np.uint64)
        for shift in (32, 16, 8, 4, 2, 1):
            v ^= v >> np.uint64(shift)
        return (v & np.uint64(1)).astype(np.uint64)
    v = int(value)
    v ^= v >> 32
    v ^= v >> 16
    v ^= v >> 8
    v ^= v >> 4
    v ^= v >> 2
    v ^= v >> 1
    return v & 1


__all__ = [
    "mask",
    "is_power_of_two",
    "bit_length_for",
    "extract_bits",
    "insert_bits",
    "rotate_left",
    "rotate_right",
    "reverse_bits",
    "parity",
]
