"""Structured exception taxonomy for the reproduction.

Every failure the pipeline can diagnose maps to a :class:`ReproError`
subclass, so callers (the resilient campaign executor, the CLI runner,
tests) can branch on *what went wrong* instead of string-matching
messages.  Configuration errors double as :class:`ValueError` to stay
backward compatible with the pre-taxonomy API.

Each error carries an optional ``context`` dict of structured fields
(the offending path, the valid options, the exhausted budget, ...) that
:func:`error_record` flattens into the tidy error records campaign
sweeps emit for failed cells.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all structured reproduction errors.

    Args:
        message: Human-readable description.
        **context: Structured fields describing the failure (serialized
            into campaign error records and journal entries).
    """

    def __init__(self, message: str, **context: Any) -> None:
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = dict(context)

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.message} [{detail}]"


# ---------------------------------------------------------------------------
# Configuration errors (fail fast, before any cell runs)
# ---------------------------------------------------------------------------
class TraceFormatError(ReproError, ValueError):
    """A trace bundle is malformed: bad archive, metadata, or arrays."""


class MappingConfigError(ReproError, ValueError):
    """An unknown or inconsistent address-mapping configuration."""


class WorkloadConfigError(ReproError, ValueError):
    """An unknown workload name (not a SPEC, mix, or STREAM workload)."""


class SchemeConfigError(ReproError, ValueError):
    """An unknown mitigation-scheme name."""


# ---------------------------------------------------------------------------
# Execution errors (raised while a campaign cell runs)
# ---------------------------------------------------------------------------
class CellExecutionError(ReproError):
    """A campaign cell failed after exhausting its retry budget.

    Wraps the final underlying exception as ``__cause__``; ``context``
    records the cell key and the attempt count.
    """


class BudgetExceededError(ReproError):
    """A cell exceeded its wall-clock or activation budget."""


class CellTimeoutError(BudgetExceededError):
    """A cell exceeded its wall-clock deadline specifically."""


class TransientError(ReproError):
    """A retryable failure (the executor backs off and tries again)."""


class InfrastructureError(ReproError):
    """The machinery *around* a cell failed, not the simulation itself.

    Worker processes dying, pipes breaking, the OS refusing a resource:
    these say nothing about whether the cell's configuration is sound,
    so they are retried under a budget separate from the simulation
    retry budget (see :class:`repro.resilience.executor.RetryPolicy`).
    """


class WorkerLostError(InfrastructureError):
    """A worker holding a lease died or stopped heartbeating."""


class TransportError(InfrastructureError):
    """A wire-level failure between the scheduler and a remote worker.

    Infrastructure by definition: a bad frame says nothing about the
    cell's configuration, so recovery is retry/re-dispatch, never a
    scheduler crash.  Two subclasses split the failure envelope:
    :class:`FrameError` (the stream is still framed -- discard the frame
    and continue) and :class:`ConnectionLostError` (the stream is torn
    or desynchronized -- the connection is unusable).
    """


class FrameError(TransportError):
    """A single frame failed integrity checks but framing survived.

    Checksum mismatch or an undecodable payload inside a well-delimited
    frame: the receiver discards exactly this frame, notifies the peer,
    and keeps reading the stream.
    """


class ConnectionLostError(TransportError):
    """The framed stream itself is gone or no longer trustworthy.

    EOF or a socket error mid-frame (a torn write), a stalled read past
    the frame timeout (a half-open peer), a bad magic number or an
    impossible frame length (desynchronization): no later byte on this
    connection can be framed safely, so it must be dropped and --
    worker-side -- re-established.
    """


class ServiceSaturated(ReproError):
    """The campaign service's admission queue is full.

    Raised at submission time -- backpressure is explicit, never
    unbounded memory.  ``context`` carries the queue depth and limit so
    clients can implement their own retry policy.
    """


class ServiceStopped(ReproError):
    """The service shut down before a submission finished.

    Only a *hard* stop raises this (graceful drain waits for in-flight
    submissions); the journal retains every committed cell, so
    resubmitting against the same journal resumes without recompute.
    """


class JournalError(ReproError):
    """A checkpoint journal could not be read or written."""


class FaultInjectedError(ReproError):
    """An injected (or detected) fault: corrupted state, impossible stats.

    Raised both by the fault-injection harness itself and by the
    integrity checks that catch silently-wrong results, so tests can
    assert faults are *detected*, never silently absorbed.
    """


def is_infrastructure_error(error: BaseException) -> bool:
    """Is this failure about the execution substrate, not the cell?

    Covers the typed :class:`InfrastructureError` family plus the stdlib
    shapes a dying worker surfaces as: ``OSError`` (broken pipes,
    resource exhaustion), ``EOFError`` (a connection whose peer died),
    and ``concurrent.futures``' ``BrokenExecutor`` (a pool whose worker
    was killed).  Simulation-level errors -- value errors, typed config
    errors, injected faults -- are deliberately *not* infrastructure:
    retrying them on a fresh worker cannot help.
    """
    if isinstance(error, (InfrastructureError, OSError, EOFError)):
        return True
    try:
        from concurrent.futures import BrokenExecutor
    except ImportError:  # pragma: no cover - py3.9+ always has it
        return False
    return isinstance(error, BrokenExecutor)


def error_record(error: BaseException) -> Dict[str, Any]:
    """Flatten an exception into the fields campaign error records use."""
    record: Dict[str, Any] = {
        "error_type": type(error).__name__,
        "error_message": getattr(error, "message", None) or str(error),
    }
    context = getattr(error, "context", None)
    if context:
        record["error_context"] = dict(context)
    return record


__all__ = [
    "ReproError",
    "TraceFormatError",
    "MappingConfigError",
    "WorkloadConfigError",
    "SchemeConfigError",
    "CellExecutionError",
    "BudgetExceededError",
    "CellTimeoutError",
    "TransientError",
    "InfrastructureError",
    "WorkerLostError",
    "TransportError",
    "FrameError",
    "ConnectionLostError",
    "ServiceSaturated",
    "ServiceStopped",
    "JournalError",
    "FaultInjectedError",
    "error_record",
    "is_infrastructure_error",
]
