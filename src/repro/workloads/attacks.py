"""Rowhammer attack access patterns (for the security analysis).

Attack traces are built *mapping-aware*: the attacker is assumed to know
(or to have reverse-engineered) the line-to-row mapping, so aggressor
line addresses are derived with ``mapping.inverse``.  Against Rubix-D
the mapping changes under the attacker's feet, which is exactly the
hardening Section 5.6 claims; the ``blind`` helper models an attacker
stuck with baseline-adjacency assumptions.

Every constructor here is a thin wrapper over a declarative playbook
spec (:mod:`repro.workloads.playbook`): one validated compilation path
builds the line stream, so the historical trace-construction bug class
-- mis-phased interleaves, uint64 wraparound, out-of-geometry rows --
cannot recur.  The specs are exposed as ``*_spec`` helpers so sweeps and
the fuzzer can parameterize the same patterns declaratively.
"""

from __future__ import annotations

from repro.mapping.base import AddressMapping
from repro.workloads.playbook import compile_playbook, line_of
from repro.workloads.trace import Trace


def _line_of(mapping: AddressMapping, bank: int, row: int, col: int = 0) -> int:
    # Kept as the module's historical entry point; the geometry-checked
    # implementation lives in the playbook module now.
    return line_of(mapping, bank, row, col)


def single_sided_spec(
    *, bank: int = 0, aggressor_row: int = 1000, dummy_row: int = 5000, activations: int = 2000
) -> dict:
    """Playbook spec behind :func:`single_sided_attack`."""
    _check_count(activations)
    return {
        "name": "attack-single-sided",
        "bank": bank,
        "rows": [aggressor_row, dummy_row],
        "pattern": "paired",
        "rounds": activations,
    }


def single_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    aggressor_row: int = 1000,
    dummy_row: int = 5000,
    activations: int = 2000,
) -> Trace:
    """Classic single-sided hammer: alternate the aggressor with a dummy
    row in the same bank so every aggressor access causes an ACT."""
    return compile_playbook(
        single_sided_spec(
            bank=bank,
            aggressor_row=aggressor_row,
            dummy_row=dummy_row,
            activations=activations,
        ),
        mapping,
    )


def double_sided_spec(
    *, bank: int = 0, victim_row: int = 1000, activations_per_side: int = 2000
) -> dict:
    """Playbook spec behind :func:`double_sided_attack`."""
    _check_count(activations_per_side)
    return {
        "name": "attack-double-sided",
        "bank": bank,
        "rows": [victim_row - 1, victim_row + 1],
        "pattern": "paired",
        "rounds": activations_per_side,
    }


def double_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    victim_row: int = 1000,
    activations_per_side: int = 2000,
) -> Trace:
    """Double-sided hammer: alternate the two rows sandwiching the victim."""
    return compile_playbook(
        double_sided_spec(
            bank=bank, victim_row=victim_row, activations_per_side=activations_per_side
        ),
        mapping,
    )


def half_double_spec(
    *,
    bank: int = 0,
    victim_row: int = 1000,
    far_activations: int = 20000,
    near_every: int = 400,
) -> dict:
    """Playbook spec behind :func:`half_double_attack`.

    The far (distance-2) pair alternates on even/odd slots; the near
    (distance-1) injections replace one far_a slot *and one far_b slot*
    per period.  ``near_b``'s phase is forced odd so it lands on far_b
    slots -- the legacy constructor planted it on even (far_a) slots,
    which drained far_a twice per period, left far_b untouched, and made
    the distance-2 pressure asymmetric.
    """
    _check_count(far_activations)
    if near_every < 2:
        raise ValueError(f"near_every must be >= 2, got {near_every}")
    return {
        "name": "attack-half-double",
        "bank": bank,
        "rows": [victim_row - 2, victim_row + 2],
        "pattern": "paired",
        "rounds": far_activations,
        "near_injections": [
            {"row": victim_row - 1, "every": near_every * 2, "phase": 0},
            {
                "row": victim_row + 1,
                "every": near_every * 2,
                # Odd phase == an odd pattern slot == a far_b slot.
                "phase": near_every | 1,
            },
        ],
    }


def half_double_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    victim_row: int = 1000,
    far_activations: int = 20000,
    near_every: int = 400,
) -> Trace:
    """Half-Double: hammer *distance-2* rows heavily plus occasional
    distance-1 accesses.

    Victim-refresh defenses see the far aggressors and repeatedly refresh
    the distance-1 rows -- and those refreshes hammer the victim at
    distance 2 from the far aggressors.  The direct accesses to the
    distance-1 rows are deliberately *infrequent* (below any tracker
    threshold) so the defense never refreshes the victim itself.  Secure
    (aggressor-focused) mitigations cap the far rows' activations
    instead, so the pattern never accumulates.
    """
    return compile_playbook(
        half_double_spec(
            bank=bank,
            victim_row=victim_row,
            far_activations=far_activations,
            near_every=near_every,
        ),
        mapping,
    )


def many_sided_spec(
    *, bank: int = 0, base_row: int = 1000, sides: int = 10, row_gap: int = 2, rounds: int = 500
) -> dict:
    """Playbook spec behind :func:`many_sided_attack`."""
    if sides < 2:
        raise ValueError(f"sides must be >= 2, got {sides}")
    if row_gap < 1:
        raise ValueError(f"row_gap must be >= 1, got {row_gap}")
    _check_count(rounds)
    return {
        "name": f"attack-{sides}-sided",
        "bank": bank,
        "rows": f"{base_row}:{base_row + sides * row_gap}:{row_gap}",
        "pattern": "round-robin",
        "rounds": rounds,
    }


def many_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    base_row: int = 1000,
    sides: int = 10,
    row_gap: int = 2,
    rounds: int = 500,
) -> Trace:
    """TRRespass-style many-sided hammer.

    Hammers ``sides`` aggressor rows spaced ``row_gap`` apart in one
    bank, round-robin.  Deployed TRR trackers with few counters cannot
    follow that many simultaneous aggressors; ideal trackers and the
    aggressor-focused schemes handle it (each row still accumulates
    ``rounds`` activations and gets mitigated on threshold).
    """
    return compile_playbook(
        many_sided_spec(
            bank=bank, base_row=base_row, sides=sides, row_gap=row_gap, rounds=rounds
        ),
        mapping,
    )


def blacksmith_spec(
    *,
    bank: int = 0,
    base_row: int = 1000,
    sides: int = 6,
    row_gap: int = 2,
    rounds: int = 500,
    intensity_ratio: int = 4,
    seed: int = 0xB5,
) -> dict:
    """Playbook spec behind :func:`blacksmith_attack`."""
    if sides < 2:
        raise ValueError(f"sides must be >= 2, got {sides}")
    if row_gap < 1:
        raise ValueError(f"row_gap must be >= 1, got {row_gap}")
    if intensity_ratio < 1:
        raise ValueError(f"intensity_ratio must be >= 1, got {intensity_ratio}")
    _check_count(rounds)
    return {
        "name": "attack-blacksmith",
        "bank": bank,
        "rows": f"{base_row}:{base_row + sides * row_gap}:{row_gap}",
        "pattern": "frequency-weighted",
        "rounds": rounds,
        # The first two rows are the "loud" pair.
        "intensities": [intensity_ratio, intensity_ratio] + [1] * (sides - 2),
        "seed": seed,
    }


def blacksmith_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    base_row: int = 1000,
    sides: int = 6,
    row_gap: int = 2,
    rounds: int = 500,
    intensity_ratio: int = 4,
    seed: int = 0xB5,
) -> Trace:
    """Blacksmith-style non-uniform frequency pattern.

    Like a many-sided hammer but with *non-uniform* per-row intensities
    and jittered phases -- the structure Blacksmith uses to slip past
    sampling-based TRR trackers.  Against guaranteed tracking the total
    per-row activation counts are what matter, and those are bounded by
    the mitigations exactly as for uniform patterns.

    The jittered schedule is built in one vectorized ``rng.permuted``
    pass that is bit-identical (same seed, same bit stream) to the
    historical per-round ``rng.permutation`` loop.
    """
    return compile_playbook(
        blacksmith_spec(
            bank=bank,
            base_row=base_row,
            sides=sides,
            row_gap=row_gap,
            rounds=rounds,
            intensity_ratio=intensity_ratio,
            seed=seed,
        ),
        mapping,
    )


def blind_adjacency_spec(
    *, base_line: int = 128 * 1000, lines_per_row: int = 128, activations: int = 20000
) -> dict:
    """Playbook spec behind :func:`blind_adjacency_attack`."""
    _check_count(activations)
    if lines_per_row < 1:
        raise ValueError(f"lines_per_row must be >= 1, got {lines_per_row}")
    if base_line < lines_per_row:
        # base_line - lines_per_row would fall below address 0; in the
        # legacy uint64 construction it wrapped to a huge line address
        # (or crashed on recent numpy) instead of failing clearly.
        raise ValueError(
            f"base_line {base_line} must be >= lines_per_row {lines_per_row}"
            " so the row-above address does not wrap below 0"
        )
    return {
        "name": "attack-blind",
        "address_space": "line",
        "rows": [base_line - lines_per_row, base_line + lines_per_row],
        "pattern": "paired",
        "rounds": activations,
    }


def blind_adjacency_attack(
    *,
    base_line: int = 128 * 1000,
    lines_per_row: int = 128,
    activations: int = 20000,
) -> Trace:
    """An attacker assuming baseline adjacency (no mapping knowledge):
    alternates line addresses 'one row apart' in the conventional layout.

    Against a randomized mapping these lines land in unrelated rows, so
    the hammer pressure never concentrates.
    """
    return compile_playbook(
        blind_adjacency_spec(
            base_line=base_line, lines_per_row=lines_per_row, activations=activations
        )
    )


def _check_count(count: int) -> None:
    if count < 1:
        raise ValueError(f"activation count must be >= 1, got {count}")


#: name -> spec builder, for tooling that enumerates the legacy attacks.
ATTACK_SPECS = {
    "single-sided": single_sided_spec,
    "double-sided": double_sided_spec,
    "half-double": half_double_spec,
    "many-sided": many_sided_spec,
    "blacksmith": blacksmith_spec,
    "blind": blind_adjacency_spec,
}


__all__ = [
    "single_sided_attack",
    "double_sided_attack",
    "half_double_attack",
    "many_sided_attack",
    "blacksmith_attack",
    "blind_adjacency_attack",
    "single_sided_spec",
    "double_sided_spec",
    "half_double_spec",
    "many_sided_spec",
    "blacksmith_spec",
    "blind_adjacency_spec",
    "ATTACK_SPECS",
]
