"""Rowhammer attack access patterns (for the security analysis).

Attack traces are built *mapping-aware*: the attacker is assumed to know
(or to have reverse-engineered) the line-to-row mapping, so aggressor
line addresses are derived with ``mapping.inverse``.  Against Rubix-D
the mapping changes under the attacker's feet, which is exactly the
hardening Section 5.6 claims; the ``blind`` helper models an attacker
stuck with baseline-adjacency assumptions.
"""

from __future__ import annotations

import numpy as np

from repro.dram.config import Coordinate
from repro.mapping.base import AddressMapping
from repro.workloads.trace import Trace


def _line_of(mapping: AddressMapping, bank: int, row: int, col: int = 0) -> int:
    coord = Coordinate(channel=0, rank=0, bank=bank, row=row, col=col)
    return mapping.inverse(coord)


def single_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    aggressor_row: int = 1000,
    dummy_row: int = 5000,
    activations: int = 2000,
) -> Trace:
    """Classic single-sided hammer: alternate the aggressor with a dummy
    row in the same bank so every aggressor access causes an ACT."""
    _check_count(activations)
    aggressor = _line_of(mapping, bank, aggressor_row)
    dummy = _line_of(mapping, bank, dummy_row)
    lines = np.empty(2 * activations, dtype=np.uint64)
    lines[0::2] = aggressor
    lines[1::2] = dummy
    return Trace(name="attack-single-sided", lines=lines, instructions=len(lines) * 2)


def double_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    victim_row: int = 1000,
    activations_per_side: int = 2000,
) -> Trace:
    """Double-sided hammer: alternate the two rows sandwiching the victim."""
    _check_count(activations_per_side)
    above = _line_of(mapping, bank, victim_row - 1)
    below = _line_of(mapping, bank, victim_row + 1)
    lines = np.empty(2 * activations_per_side, dtype=np.uint64)
    lines[0::2] = above
    lines[1::2] = below
    return Trace(name="attack-double-sided", lines=lines, instructions=len(lines) * 2)


def half_double_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    victim_row: int = 1000,
    far_activations: int = 20000,
    near_every: int = 400,
) -> Trace:
    """Half-Double: hammer *distance-2* rows heavily plus occasional
    distance-1 accesses.

    Victim-refresh defenses see the far aggressors and repeatedly refresh
    the distance-1 rows -- and those refreshes hammer the victim at
    distance 2 from the far aggressors.  The direct accesses to the
    distance-1 rows are deliberately *infrequent* (below any tracker
    threshold) so the defense never refreshes the victim itself.  Secure
    (aggressor-focused) mitigations cap the far rows' activations
    instead, so the pattern never accumulates.
    """
    _check_count(far_activations)
    if near_every < 2:
        raise ValueError(f"near_every must be >= 2, got {near_every}")
    far_a = _line_of(mapping, bank, victim_row - 2)
    far_b = _line_of(mapping, bank, victim_row + 2)
    near_a = _line_of(mapping, bank, victim_row - 1)
    near_b = _line_of(mapping, bank, victim_row + 1)
    lines = np.empty(2 * far_activations, dtype=np.uint64)
    lines[0::2] = far_a
    lines[1::2] = far_b
    # Sprinkle the near (distance-1) dubs the real attack uses to keep
    # the victim's neighbours "warm".
    lines[::near_every * 2] = near_a
    lines[near_every :: near_every * 2] = near_b
    return Trace(name="attack-half-double", lines=lines, instructions=len(lines) * 2)


def many_sided_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    base_row: int = 1000,
    sides: int = 10,
    row_gap: int = 2,
    rounds: int = 500,
) -> Trace:
    """TRRespass-style many-sided hammer.

    Hammers ``sides`` aggressor rows spaced ``row_gap`` apart in one
    bank, round-robin.  Deployed TRR trackers with few counters cannot
    follow that many simultaneous aggressors; ideal trackers and the
    aggressor-focused schemes handle it (each row still accumulates
    ``rounds`` activations and gets mitigated on threshold).
    """
    if sides < 2:
        raise ValueError(f"sides must be >= 2, got {sides}")
    _check_count(rounds)
    aggressors = [
        _line_of(mapping, bank, base_row + i * row_gap) for i in range(sides)
    ]
    lines = np.tile(np.array(aggressors, dtype=np.uint64), rounds)
    return Trace(
        name=f"attack-{sides}-sided", lines=lines, instructions=len(lines) * 2
    )


def blacksmith_attack(
    mapping: AddressMapping,
    *,
    bank: int = 0,
    base_row: int = 1000,
    sides: int = 6,
    row_gap: int = 2,
    rounds: int = 500,
    intensity_ratio: int = 4,
    seed: int = 0xB5,
) -> Trace:
    """Blacksmith-style non-uniform frequency pattern.

    Like a many-sided hammer but with *non-uniform* per-row intensities
    and jittered phases -- the structure Blacksmith uses to slip past
    sampling-based TRR trackers.  Against guaranteed tracking the total
    per-row activation counts are what matter, and those are bounded by
    the mitigations exactly as for uniform patterns.
    """
    if sides < 2:
        raise ValueError(f"sides must be >= 2, got {sides}")
    if intensity_ratio < 1:
        raise ValueError(f"intensity_ratio must be >= 1, got {intensity_ratio}")
    _check_count(rounds)
    rng = np.random.default_rng(seed)
    aggressors = np.array(
        [_line_of(mapping, bank, base_row + i * row_gap) for i in range(sides)],
        dtype=np.uint64,
    )
    # Per-round schedule: the first two rows hammer `intensity_ratio`
    # times per round (the "loud" pair), the rest once, in jittered order.
    round_pattern: "list[int]" = []
    for side in range(sides):
        repeats = intensity_ratio if side < 2 else 1
        round_pattern.extend([side] * repeats)
    schedule = []
    for _ in range(rounds):
        order = rng.permutation(len(round_pattern))
        schedule.append(np.asarray(round_pattern, dtype=np.int64)[order])
    index = np.concatenate(schedule)
    return Trace(
        name="attack-blacksmith",
        lines=aggressors[index],
        instructions=int(index.size * 2),
    )


def blind_adjacency_attack(
    *,
    base_line: int = 128 * 1000,
    lines_per_row: int = 128,
    activations: int = 20000,
) -> Trace:
    """An attacker assuming baseline adjacency (no mapping knowledge):
    alternates line addresses 'one row apart' in the conventional layout.

    Against a randomized mapping these lines land in unrelated rows, so
    the hammer pressure never concentrates.
    """
    _check_count(activations)
    above = base_line - lines_per_row
    below = base_line + lines_per_row
    lines = np.empty(2 * activations, dtype=np.uint64)
    lines[0::2] = above
    lines[1::2] = below
    return Trace(name="attack-blind", lines=lines, instructions=len(lines) * 2)


def _check_count(count: int) -> None:
    if count < 1:
        raise ValueError(f"activation count must be >= 1, got {count}")


__all__ = [
    "single_sided_attack",
    "double_sided_attack",
    "half_double_attack",
    "many_sided_attack",
    "blacksmith_attack",
    "blind_adjacency_attack",
]
