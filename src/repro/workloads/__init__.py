"""Workload generators.

The paper evaluates 18 SPEC CPU2017 rate workloads, 16 four-way mixes,
the STREAM suite, and the illustrative stream/stride/random kernels of
Figure 4.  SPEC traces are proprietary, so :mod:`repro.workloads.spec`
provides synthetic generators calibrated per workload to the published
first-order statistics (Table 2: MPKI, unique rows touched, hot-row
counts; Table 3: active lines per hot row) -- see DESIGN.md for the
substitution rationale.
"""

from repro.workloads.attacks import (
    blacksmith_attack,
    blind_adjacency_attack,
    double_sided_attack,
    half_double_attack,
    many_sided_attack,
    single_sided_attack,
)
from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel
from repro.workloads.mixes import mix_names, mix_profile, mix_trace
from repro.workloads.spec import (
    SPEC_PROFILES,
    SpecProfile,
    spec_names,
    spec_profile,
    spec_trace,
)
from repro.workloads.stream_suite import STREAM_KERNELS, stream_suite_trace
from repro.workloads.synthetic import (
    ColdPool,
    HotSpots,
    PointerChase,
    SequentialScan,
    WorkloadBuilder,
)
from repro.workloads.trace import Trace
from repro.workloads.trace_io import load_trace, save_trace

__all__ = [
    "Trace",
    "stream_kernel",
    "stride_kernel",
    "random_kernel",
    "SpecProfile",
    "SPEC_PROFILES",
    "spec_names",
    "spec_profile",
    "spec_trace",
    "mix_names",
    "mix_profile",
    "mix_trace",
    "STREAM_KERNELS",
    "stream_suite_trace",
    "single_sided_attack",
    "double_sided_attack",
    "half_double_attack",
    "many_sided_attack",
    "blacksmith_attack",
    "blind_adjacency_attack",
    "WorkloadBuilder",
    "HotSpots",
    "SequentialScan",
    "ColdPool",
    "PointerChase",
    "save_trace",
    "load_trace",
]
