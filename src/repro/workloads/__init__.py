"""Workload generators.

The paper evaluates 18 SPEC CPU2017 rate workloads, 16 four-way mixes,
the STREAM suite, and the illustrative stream/stride/random kernels of
Figure 4.  SPEC traces are proprietary, so :mod:`repro.workloads.spec`
provides synthetic generators calibrated per workload to the published
first-order statistics (Table 2: MPKI, unique rows touched, hot-row
counts; Table 3: active lines per hot row) -- see DESIGN.md for the
substitution rationale.
"""

from repro.workloads.attacks import (
    ATTACK_SPECS,
    blacksmith_attack,
    blacksmith_spec,
    blind_adjacency_attack,
    blind_adjacency_spec,
    double_sided_attack,
    double_sided_spec,
    half_double_attack,
    half_double_spec,
    many_sided_attack,
    many_sided_spec,
    single_sided_attack,
    single_sided_spec,
)
# NOTE: the sweep fuzzer (repro.workloads.fuzzer) is intentionally NOT
# re-exported here: it drives the campaign engine, whose import chain
# leads back into this package.  Import it directly.
from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel
from repro.workloads.playbook import (
    compile_playbook,
    is_playbook_workload,
    line_of,
    parse_range,
    parse_rows,
    spec_from_workload,
    validate_spec,
    workload_name_for,
)
from repro.workloads.mixes import mix_names, mix_profile, mix_trace
from repro.workloads.spec import (
    SPEC_PROFILES,
    SpecProfile,
    spec_names,
    spec_profile,
    spec_trace,
)
from repro.workloads.stream_suite import STREAM_KERNELS, stream_suite_trace
from repro.workloads.synthetic import (
    ColdPool,
    HotSpots,
    PointerChase,
    SequentialScan,
    WorkloadBuilder,
)
from repro.workloads.trace import Trace
from repro.workloads.trace_io import load_trace, save_trace

__all__ = [
    "Trace",
    "stream_kernel",
    "stride_kernel",
    "random_kernel",
    "SpecProfile",
    "SPEC_PROFILES",
    "spec_names",
    "spec_profile",
    "spec_trace",
    "mix_names",
    "mix_profile",
    "mix_trace",
    "STREAM_KERNELS",
    "stream_suite_trace",
    "single_sided_attack",
    "double_sided_attack",
    "half_double_attack",
    "many_sided_attack",
    "blacksmith_attack",
    "blind_adjacency_attack",
    "compile_playbook",
    "validate_spec",
    "line_of",
    "parse_range",
    "parse_rows",
    "workload_name_for",
    "spec_from_workload",
    "is_playbook_workload",
    "WorkloadBuilder",
    "HotSpots",
    "SequentialScan",
    "ColdPool",
    "PointerChase",
    "save_trace",
    "load_trace",
]
