"""STREAM memory-bandwidth kernels (McCalpin) for Section 5.13.

Copy, Scale, Add, and Triad stream 1 GiB arrays with LLC MPKI above 50;
the paper uses them to show Rubix stays low-cost even for memory-bound
workloads (2-8% slowdown from the reduced row-buffer hit rate).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.utils.units import GB, LINE_BYTES
from repro.workloads.trace import Trace

#: Kernels and the number of arrays each touches per iteration
#: (destination counted like a source: every array is streamed).
STREAM_KERNELS: Dict[str, int] = {"copy": 2, "scale": 2, "add": 3, "triad": 3}

#: STREAM array size (1 GiB per array, §5.13).
DEFAULT_ARRAY_BYTES = 1 * GB

#: Instructions per element iteration (load/store + FLOP + loop overhead).
#: Kept low -- STREAM's inner loops are tight -- so the LLC MPKI lands
#: above 50, matching the paper's characterization.
_INSTRUCTIONS_PER_ELEMENT = 5


def stream_suite_trace(
    kernel: str,
    *,
    line_addr_bits: int = 28,
    accesses: int = 6_000_000,
    array_bytes: int = DEFAULT_ARRAY_BYTES,
    scale: float = 1.0,
) -> Trace:
    """Generate one window of a STREAM kernel.

    The kernel walks its 2-3 arrays in lockstep: per 64 B line step it
    emits one access to each array (a[i], b[i][, c[i]]), producing the
    interleaved sequential streams a real core's LLC misses form.
    """
    if kernel not in STREAM_KERNELS:
        raise ValueError(f"unknown STREAM kernel '{kernel}'; known: {list(STREAM_KERNELS)}")
    n_arrays = STREAM_KERNELS[kernel]
    accesses = int(accesses * scale)
    if accesses < n_arrays:
        raise ValueError(f"need at least {n_arrays} accesses, got {accesses}")
    array_lines = array_bytes // LINE_BYTES
    total_lines = 1 << line_addr_bits
    if n_arrays * array_lines > total_lines:
        raise ValueError("arrays do not fit in the address space")
    # Arrays placed at equal spacing across the address space.
    spacing = total_lines // n_arrays
    bases = np.arange(n_arrays, dtype=np.uint64) * np.uint64(spacing)

    steps = accesses // n_arrays
    index = (np.arange(steps, dtype=np.uint64) % np.uint64(array_lines))
    lines = (bases[None, :] + index[:, None]).reshape(-1)
    # One line holds 8 doubles; each element iteration is ~8 instructions.
    instructions = max(1, steps * 8 * _INSTRUCTIONS_PER_ELEMENT)
    return Trace(
        name=f"stream-{kernel}",
        lines=lines,
        instructions=instructions,
        window_s=64e-3 * scale,
        scale=scale,
    )


def stream_suite_names() -> List[str]:
    """Kernel names in canonical order."""
    return list(STREAM_KERNELS)


__all__ = ["STREAM_KERNELS", "stream_suite_trace", "stream_suite_names", "DEFAULT_ARRAY_BYTES"]
