"""Trace persistence: save/load traces as compressed .npz bundles.

Generating the biggest calibrated traces takes seconds; persisting them
lets experiment campaigns and external tools (e.g. feeding the same
trace to another simulator) reuse identical streams.  The format is a
plain numpy archive with a metadata header, stable across platforms.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save never
leaves a half-written bundle at the target path, and loads validate the
archive, metadata, and array shape/dtype, raising
:class:`~repro.errors.TraceFormatError` naming the offending path
instead of leaking an opaque ``KeyError`` or ``zipfile.BadZipFile``.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.workloads.trace import Trace

#: Format version written into every bundle.
FORMAT_VERSION = 1

#: Metadata keys every bundle must carry.
REQUIRED_META_KEYS = ("version", "name", "instructions", "window_s", "scale")


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (.npz appended if missing), atomically.

    The bundle is written to a sibling temp file and renamed into place,
    so readers never observe a partially-written archive.

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "instructions": trace.instructions,
        "window_s": trace.window_s,
        "scale": trace.scale,
    }
    if trace.seed is not None:
        # Optional key: bundles written before the seed field existed
        # (and traces without a generator seed) simply omit it.
        meta["seed"] = trace.seed
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(
            tmp, lines=trace.lines, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        )
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace bundle written by :func:`save_trace`.

    Raises:
        FileNotFoundError: No file at ``path``.
        TraceFormatError: The file is not a valid trace bundle
            (corrupt archive, missing arrays/metadata, unsupported
            version, or malformed line-address array).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace bundle at {path}")

    def bad(reason: str) -> TraceFormatError:
        return TraceFormatError(f"{path}: {reason}", path=str(path))

    try:
        bundle = np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise bad(f"not a readable npz archive ({error})") from None
    with bundle:
        for key in ("meta", "lines"):
            if key not in bundle.files:
                raise bad(f"not a trace bundle (missing '{key}' array)")
        try:
            raw_meta = bytes(bundle["meta"].tobytes())
            lines = bundle["lines"]
        except (zipfile.BadZipFile, OSError, ValueError, zlib.error) as error:
            raise bad(f"archive member is corrupt ({error})") from None
    try:
        meta = json.loads(raw_meta.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad(f"metadata header is not valid JSON ({error})") from None

    if not isinstance(meta, dict):
        raise bad("metadata header is not a JSON object")
    missing = [key for key in REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise bad(f"metadata is missing required keys {missing}")
    version = meta["version"]
    if version != FORMAT_VERSION:
        raise bad(f"unsupported trace format version {version!r} (expected {FORMAT_VERSION})")
    if lines.ndim != 1:
        raise bad(f"lines array must be 1-D, got shape {lines.shape}")
    if not np.issubdtype(lines.dtype, np.integer):
        raise bad(f"lines array must be integer-typed, got dtype {lines.dtype}")
    try:
        return Trace(
            name=str(meta["name"]),
            lines=lines.astype(np.uint64),
            instructions=int(meta["instructions"]),
            window_s=float(meta["window_s"]),
            scale=float(meta["scale"]),
            seed=int(meta["seed"]) if meta.get("seed") is not None else None,
        )
    except (TypeError, ValueError) as error:
        raise bad(f"metadata values are invalid ({error})") from None


__all__ = ["FORMAT_VERSION", "REQUIRED_META_KEYS", "save_trace", "load_trace"]
