"""Trace persistence: compressed .npz bundles and raw memmap files.

Generating the biggest calibrated traces takes seconds; persisting them
lets experiment campaigns and external tools (e.g. feeding the same
trace to another simulator) reuse identical streams.  Two formats:

* **.npz bundles** (:func:`save_trace` / :func:`load_trace`) -- a plain
  compressed numpy archive with a metadata header.  Compact and
  portable, but loading decompresses the whole line array into RAM.
* **.rtr raw traces** (:class:`RawTraceWriter`, :func:`save_trace_raw`,
  :func:`load_trace_raw`) -- a versioned binary layout whose line data
  sits 64-byte-aligned and little-endian on disk, so loading is one
  ``np.memmap`` call: **zero-copy**, demand-paged, and viable for
  multi-hundred-million-line traces that must never be materialized.
  The writer streams chunks (constant memory) and stores the trace's
  content fingerprint in the header so downstream caches skip the
  hashing pass too.

:func:`load_trace` sniffs the on-disk magic and dispatches to the right
loader, so callers can stay format-agnostic.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save never
leaves a half-written file at the target path, and loads validate the
archive/header, metadata, and array shape/dtype/endianness, raising
:class:`~repro.errors.TraceFormatError` naming the offending path
instead of leaking an opaque ``KeyError``, ``zipfile.BadZipFile``, or a
numpy shape crash on a truncated memmap.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.workloads.trace import FINGERPRINT_CHUNK_BYTES, Trace, lines_fingerprint

#: Format version written into every bundle.
FORMAT_VERSION = 1

#: Metadata keys every bundle must carry.
REQUIRED_META_KEYS = ("version", "name", "instructions", "window_s", "scale")

# ---------------------------------------------------------------------------
# Raw memmap format (.rtr)
# ---------------------------------------------------------------------------
#: Magic bytes opening every raw trace file.
RAW_MAGIC = b"RBXTRACE"

#: Raw format version (bump on any layout change).
RAW_FORMAT_VERSION = 1

#: Sentinel stored in the same byte order as the line data; a reader
#: that parses it as little-endian and sees a scrambled value knows the
#: data section does not match this format's mandated byte order.
RAW_ENDIAN_WORD = 0x01020304

#: Code for the only line dtype the format defines: little-endian u64.
RAW_DTYPE_CODE_U64LE = 1

#: Fixed header size; line data starts here, 64-byte aligned for clean
#: cache-line/page behaviour of the memmap (metadata JSON is a tail
#: section, so the data offset never depends on metadata length).
RAW_HEADER_BYTES = 64

#: struct layout of the leading header fields (little-endian through-
#: out): magic, version, endian word, dtype code, reserved, n_lines,
#: meta_len.  Zero-padded to RAW_HEADER_BYTES.
_RAW_HEADER_STRUCT = struct.Struct("<8sIIII QQ")


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (.npz appended if missing), atomically.

    The bundle is written to a sibling temp file and renamed into place,
    so readers never observe a partially-written archive.

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "instructions": trace.instructions,
        "window_s": trace.window_s,
        "scale": trace.scale,
    }
    if trace.seed is not None:
        # Optional key: bundles written before the seed field existed
        # (and traces without a generator seed) simply omit it.
        meta["seed"] = trace.seed
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(
            tmp, lines=trace.lines, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        )
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_trace(path: Union[str, Path], *, mmap: bool = True) -> Trace:
    """Read a persisted trace, whichever format it is stored in.

    Sniffs the on-disk magic: raw ``.rtr`` files (see
    :func:`load_trace_raw`) open as zero-copy memmaps (``mmap=False``
    forces an in-memory read); anything else is parsed as a
    :func:`save_trace` npz bundle.

    Raises:
        FileNotFoundError: No file at ``path``.
        TraceFormatError: The file is not a valid trace bundle
            (corrupt archive, missing arrays/metadata, unsupported
            version, or malformed line-address array).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace bundle at {path}")
    if sniff_format(path) == "raw":
        return load_trace_raw(path, mmap=mmap)

    def bad(reason: str) -> TraceFormatError:
        return TraceFormatError(f"{path}: {reason}", path=str(path))

    try:
        bundle = np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise bad(f"not a readable npz archive ({error})") from None
    with bundle:
        for key in ("meta", "lines"):
            if key not in bundle.files:
                raise bad(f"not a trace bundle (missing '{key}' array)")
        try:
            raw_meta = bytes(bundle["meta"].tobytes())
            lines = bundle["lines"]
        except (zipfile.BadZipFile, OSError, ValueError, zlib.error) as error:
            raise bad(f"archive member is corrupt ({error})") from None
    try:
        meta = json.loads(raw_meta.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad(f"metadata header is not valid JSON ({error})") from None

    if not isinstance(meta, dict):
        raise bad("metadata header is not a JSON object")
    missing = [key for key in REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise bad(f"metadata is missing required keys {missing}")
    version = meta["version"]
    if version != FORMAT_VERSION:
        raise bad(f"unsupported trace format version {version!r} (expected {FORMAT_VERSION})")
    if lines.ndim != 1:
        raise bad(f"lines array must be 1-D, got shape {lines.shape}")
    if not np.issubdtype(lines.dtype, np.integer):
        raise bad(f"lines array must be integer-typed, got dtype {lines.dtype}")
    try:
        return Trace(
            name=str(meta["name"]),
            lines=lines.astype(np.uint64),
            instructions=int(meta["instructions"]),
            window_s=float(meta["window_s"]),
            scale=float(meta["scale"]),
            seed=int(meta["seed"]) if meta.get("seed") is not None else None,
        )
    except (TypeError, ValueError) as error:
        raise bad(f"metadata values are invalid ({error})") from None


# ---------------------------------------------------------------------------
# Raw format: streaming writer
# ---------------------------------------------------------------------------
class RawTraceWriter:
    """Stream a raw ``.rtr`` trace file chunk by chunk, constant-memory.

    The writer never holds more than one appended chunk: callers
    generating (or transcoding) traces far larger than RAM feed line
    batches through :meth:`append` and the file grows in place.  On
    :meth:`close` the writer re-reads the written data in bounded chunks
    to compute the content fingerprint (the digest stream starts with
    the final line count, which is only known now), writes the tail
    metadata and final header, and atomically renames the temp file into
    place -- readers never observe a half-written trace.

    Usage::

        with RawTraceWriter(path, name="synth", instructions=10**9) as w:
            for chunk in generate_chunks():
                w.append(chunk)
        trace = load_trace_raw(path)   # np.memmap, zero-copy
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        name: str,
        instructions: int,
        window_s: float = 64e-3,
        scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        self.path = _raw_path(path)
        self.meta = {
            "version": RAW_FORMAT_VERSION,
            "name": str(name),
            "instructions": int(instructions),
            "window_s": float(window_s),
            "scale": float(scale),
        }
        if seed is not None:
            self.meta["seed"] = int(seed)
        self.n_lines = 0
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(f".{self.path.stem}.{os.getpid()}.tmp.rtr")
        self._file = open(self._tmp, "wb")
        self._file.write(b"\0" * RAW_HEADER_BYTES)  # placeholder header

    def append(self, lines: np.ndarray) -> None:
        """Append a batch of line addresses (any integer array-like)."""
        if self._closed:
            raise ValueError("writer is closed")
        chunk = np.ascontiguousarray(lines, dtype="<u8")
        if chunk.ndim != 1:
            raise ValueError(f"line chunks must be 1-D, got shape {chunk.shape}")
        self._file.write(memoryview(chunk))
        self.n_lines += int(chunk.size)

    def close(self) -> Path:
        """Finalize header + metadata and publish the file; returns its path."""
        if self._closed:
            return self.path
        self._closed = True
        try:
            self._file.flush()
            self.meta["fingerprint"] = self._fingerprint()
            raw_meta = json.dumps(self.meta).encode()
            self._file.seek(0, os.SEEK_END)
            self._file.write(raw_meta)
            header = _RAW_HEADER_STRUCT.pack(
                RAW_MAGIC,
                RAW_FORMAT_VERSION,
                RAW_ENDIAN_WORD,
                RAW_DTYPE_CODE_U64LE,
                0,
                self.n_lines,
                len(raw_meta),
            )
            self._file.seek(0)
            self._file.write(header)
            self._file.close()
            os.replace(self._tmp, self.path)
        finally:
            if not self._file.closed:
                self._file.close()
            if self._tmp.exists():
                self._tmp.unlink()
        return self.path

    def _fingerprint(self) -> str:
        """Streamed digest of the written data (bounded re-read)."""
        if self.n_lines == 0:
            return lines_fingerprint(np.empty(0, dtype=np.uint64))
        data = np.memmap(
            self._tmp,
            dtype="<u8",
            mode="r",
            offset=RAW_HEADER_BYTES,
            shape=(self.n_lines,),
        )
        try:
            return lines_fingerprint(data)
        finally:
            del data

    def abort(self) -> None:
        """Discard the temp file without publishing anything."""
        self._closed = True
        if not self._file.closed:
            self._file.close()
        if self._tmp.exists():
            self._tmp.unlink()

    def __enter__(self) -> "RawTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _raw_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    if path.suffix != ".rtr":
        path = path.with_suffix(path.suffix + ".rtr")
    return path


def save_trace_raw(trace: Trace, path: Union[str, Path]) -> Path:
    """Write an in-memory trace as a raw ``.rtr`` file, atomically.

    Streams the line array in bounded chunks through
    :class:`RawTraceWriter` (the trace may itself be memmap-backed), so
    transcoding never doubles peak memory.  Returns the path written.
    """
    writer = RawTraceWriter(
        path,
        name=trace.name,
        instructions=trace.instructions,
        window_s=trace.window_s,
        scale=trace.scale,
        seed=trace.seed,
    )
    try:
        step = max(1, FINGERPRINT_CHUNK_BYTES // 8)
        for start in range(0, int(trace.lines.size), step):
            writer.append(trace.lines[start : start + step])
    except BaseException:
        writer.abort()
        raise
    return writer.close()


# ---------------------------------------------------------------------------
# Raw format: zero-copy loader
# ---------------------------------------------------------------------------
def load_trace_raw(path: Union[str, Path], *, mmap: bool = True) -> Trace:
    """Open a raw ``.rtr`` trace; line data is a zero-copy ``np.memmap``.

    The returned trace's ``lines`` array is a read-only view demand-
    paged straight from the file (no bytes are copied or materialized at
    load time), and its fingerprint is pre-seeded from the stored
    header digest -- a 100M-line campaign input costs O(header) to open.
    Pass ``mmap=False`` to read the lines fully into memory instead
    (small traces, or files on storage about to disappear).

    Raises:
        FileNotFoundError: No file at ``path``.
        TraceFormatError: Bad magic, unsupported version, wrong data
            byte order, unknown dtype code, malformed metadata, or a
            file too short for its declared line count (truncation) --
            every case is caught by header validation, never by a numpy
            crash on a short buffer.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no raw trace at {path}")

    def bad(reason: str) -> TraceFormatError:
        return TraceFormatError(f"{path}: {reason}", path=str(path))

    size = path.stat().st_size
    if size < RAW_HEADER_BYTES:
        raise bad(
            f"file is {size} bytes, shorter than the {RAW_HEADER_BYTES}-byte header"
        )
    with open(path, "rb") as handle:
        head = handle.read(RAW_HEADER_BYTES)
    magic, version, endian, dtype_code, _reserved, n_lines, meta_len = (
        _RAW_HEADER_STRUCT.unpack(head[: _RAW_HEADER_STRUCT.size])
    )
    if magic != RAW_MAGIC:
        raise bad(f"not a raw trace (magic {magic!r}, expected {RAW_MAGIC!r})")
    if version != RAW_FORMAT_VERSION:
        raise bad(
            f"unsupported raw trace version {version} (expected {RAW_FORMAT_VERSION})"
        )
    if endian != RAW_ENDIAN_WORD:
        raise bad(
            f"data byte order marker {endian:#010x} does not read as little-endian"
            f" (expected {RAW_ENDIAN_WORD:#010x}); refusing to map foreign-endian data"
        )
    if dtype_code != RAW_DTYPE_CODE_U64LE:
        raise bad(f"unknown line dtype code {dtype_code} (expected {RAW_DTYPE_CODE_U64LE})")
    expected = RAW_HEADER_BYTES + 8 * n_lines + meta_len
    if size < expected:
        raise bad(
            f"file is {size} bytes but the header declares {n_lines} lines"
            f" + {meta_len} metadata bytes = {expected}; trace is truncated"
        )
    with open(path, "rb") as handle:
        handle.seek(RAW_HEADER_BYTES + 8 * n_lines)
        raw_meta = handle.read(meta_len)
    try:
        meta = json.loads(raw_meta.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad(f"metadata tail is not valid JSON ({error})") from None
    if not isinstance(meta, dict):
        raise bad("metadata tail is not a JSON object")
    missing = [key for key in REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise bad(f"metadata is missing required keys {missing}")

    if n_lines == 0:
        lines = np.empty(0, dtype=np.uint64)
    elif mmap:
        lines = np.memmap(
            path, dtype="<u8", mode="r", offset=RAW_HEADER_BYTES, shape=(n_lines,)
        )
    else:
        with open(path, "rb") as handle:
            handle.seek(RAW_HEADER_BYTES)
            lines = np.fromfile(handle, dtype="<u8", count=n_lines)
    try:
        trace = Trace(
            name=str(meta["name"]),
            lines=lines,
            instructions=int(meta["instructions"]),
            window_s=float(meta["window_s"]),
            scale=float(meta["scale"]),
            seed=int(meta["seed"]) if meta.get("seed") is not None else None,
        )
    except (TypeError, ValueError) as error:
        raise bad(f"metadata values are invalid ({error})") from None
    stored = meta.get("fingerprint")
    if stored is not None:
        if not isinstance(stored, str):
            raise bad(f"stored fingerprint must be a string, got {type(stored).__name__}")
        # Pre-seed the memoized digest: hashing 100M+ memmapped lines on
        # every worker would defeat the zero-copy open.
        trace._fingerprint = stored
    return trace


def sniff_format(path: Union[str, Path]) -> str:
    """Identify the on-disk trace format: ``"raw"`` or ``"npz"``.

    Reads only the leading magic bytes; unknown leaders default to
    ``"npz"`` so the bundle loader produces its usual typed diagnosis.
    """
    with open(path, "rb") as handle:
        return "raw" if handle.read(len(RAW_MAGIC)) == RAW_MAGIC else "npz"


__all__ = [
    "FORMAT_VERSION",
    "REQUIRED_META_KEYS",
    "RAW_MAGIC",
    "RAW_FORMAT_VERSION",
    "RAW_ENDIAN_WORD",
    "RAW_DTYPE_CODE_U64LE",
    "RAW_HEADER_BYTES",
    "RawTraceWriter",
    "save_trace",
    "save_trace_raw",
    "load_trace",
    "load_trace_raw",
    "sniff_format",
]
