"""Trace persistence: save/load traces as compressed .npz bundles.

Generating the biggest calibrated traces takes seconds; persisting them
lets experiment campaigns and external tools (e.g. feeding the same
trace to another simulator) reuse identical streams.  The format is a
plain numpy archive with a metadata header, stable across platforms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.trace import Trace

#: Format version written into every bundle.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (.npz appended if missing).

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "instructions": trace.instructions,
        "window_s": trace.window_s,
        "scale": trace.scale,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, lines=trace.lines, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    )
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace bundle written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace bundle at {path}")
    with np.load(path) as bundle:
        try:
            meta = json.loads(bytes(bundle["meta"].tobytes()).decode())
            lines = bundle["lines"]
        except KeyError as error:
            raise ValueError(f"{path} is not a trace bundle (missing {error})") from None
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version}")
    return Trace(
        name=meta["name"],
        lines=lines.astype(np.uint64),
        instructions=int(meta["instructions"]),
        window_s=float(meta["window_s"]),
        scale=float(meta["scale"]),
    )


__all__ = ["FORMAT_VERSION", "save_trace", "load_trace"]
