"""Seeded sweep fuzzer over playbook specs, with auto-bisection.

The litex playbooks express parameter sweeps as ``start:end:step``
ranges; this module does the same for simulation.  A sweep is a base
playbook spec plus per-field axes::

    base  = double_sided_spec(victim_row=1000)
    sweep = {"rounds": "16:257:16"}                    # or explicit lists
    result = fuzz(base, sweep, config=FuzzConfig(t_rh=128))

:func:`fuzz` expands the axes into a cell grid, runs every cell through
the existing :class:`~repro.experiments.campaign.Campaign` engine (so
process-pool parallelism, the content-keyed stats cache, resilience
boundaries, journals, and telemetry all apply unchanged -- each spec
travels as a self-contained ``playbook:<json>`` workload name), flags
the cells whose record shows hot rows under the grid's mapping, and
then *bisects*: starting from the first hot cell (deterministic grid
order), each swept intensity axis is binary-searched down to the
smallest swept value that still produces hot rows, yielding the minimal
pattern.  Everything is a pure function of (base, sweep, config), so a
fixed seed reproduces the identical result -- the property the CI smoke
(``scripts/fuzz_smoke.py``) pins.

Bisection assumes axes are *monotone*: larger values produce at least
as much row pressure (true for rounds/activations/intensities; not for
phases).  Non-numeric or non-monotone axes are simply kept at the hot
cell's value.

Axis paths are dotted and may index lists, so overlay parameters are
sweepable too: ``{"near_injections.0.every": "100:1000:100"}``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.campaign import Campaign, MappingSpec
from repro.obs.runtime import METRICS, TRACER
from repro.workloads.playbook import parse_range, validate_spec, workload_name_for


# ---------------------------------------------------------------------------
# Sweep expansion
# ---------------------------------------------------------------------------
def parse_axis(values: Union[str, Sequence]) -> List[Any]:
    """Expand one sweep axis: a ``start:end:step`` string or a list."""
    if isinstance(values, str):
        return list(parse_range(values))
    if isinstance(values, (list, tuple)):
        if not values:
            raise ValueError("sweep axes must not be empty")
        return list(values)
    raise ValueError(
        f"sweep axis must be a 'start:end:step' string or a list, got {values!r}"
    )


def set_path(spec: dict, path: str, value: Any) -> dict:
    """Return a deep copy of ``spec`` with the dotted ``path`` replaced.

    Integer segments index into lists (``near_injections.0.every``).
    The path must already exist -- a typo'd axis name must fail loudly,
    not silently sweep nothing.
    """
    out = copy.deepcopy(spec)
    node: Any = out
    segments = path.split(".")
    for i, segment in enumerate(segments):
        last = i == len(segments) - 1
        if isinstance(node, list):
            try:
                index = int(segment)
            except ValueError as error:
                raise ValueError(
                    f"axis '{path}': segment '{segment}' must be a list index"
                ) from error
            if not 0 <= index < len(node):
                raise ValueError(
                    f"axis '{path}': index {index} out of range for list of {len(node)}"
                )
            if last:
                node[index] = value
            else:
                node = node[index]
        elif isinstance(node, dict):
            if segment not in node:
                raise ValueError(
                    f"axis '{path}': key '{segment}' not present in the base spec"
                    " (sweep axes must name existing fields)"
                )
            if last:
                node[segment] = value
            else:
                node = node[segment]
        else:
            raise ValueError(
                f"axis '{path}': cannot descend into {type(node).__name__} at '{segment}'"
            )
    return out


def expand_sweep(
    base: dict, sweep: Dict[str, Union[str, Sequence]]
) -> List[Tuple[Dict[str, Any], dict]]:
    """Cartesian grid of (overrides, spec) cells, in deterministic order.

    Axes iterate in sorted name order; each axis in its given value
    order.  Every produced spec is validated up front, so a sweep that
    would generate an invalid cell fails before any simulation runs.
    """
    validate_spec(base)
    if not sweep:
        raise ValueError("sweep needs at least one axis")
    names = sorted(sweep)
    axes = [parse_axis(sweep[name]) for name in names]
    cells: List[Tuple[Dict[str, Any], dict]] = []
    for combo in product(*axes):
        overrides = dict(zip(names, combo))
        spec = base
        for name, value in overrides.items():
            spec = set_path(spec, name, value)
        validate_spec(spec)
        cells.append((overrides, spec))
    return cells


# ---------------------------------------------------------------------------
# Fuzz configuration / result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzConfig:
    """How sweep cells are evaluated and what counts as 'hot'."""

    #: Mapping every cell is *evaluated* under (the spec's
    #: ``target_mapping`` governs what it is *constructed* against).
    mapping: MappingSpec = MappingSpec("coffeelake")
    scheme: str = "none"
    t_rh: int = 128
    #: Record field that measures row pressure (``hot_rows_64`` /
    #: ``hot_rows_512``).
    metric: str = "hot_rows_64"
    #: A cell is hot when record[metric] >= min_hot_rows.
    min_hot_rows: int = 1
    #: Cap on evaluated grid cells; larger grids are subsampled with the
    #: seeded RNG below (0 = no cap).
    max_cells: int = 0
    seed: int = 0
    workers: int = 1
    stats_cache_dir: Optional[str] = None


@dataclass
class FuzzResult:
    """Outcome of one sweep + bisection."""

    #: One entry per evaluated cell: {"overrides", "workload", "record", "hot"}.
    cells: List[dict]
    #: Overrides of the seed cell bisection started from (None = no hot cell).
    seed_overrides: Optional[Dict[str, Any]]
    #: Minimal hot overrides after per-axis bisection (None = no hot cell).
    minimal_overrides: Optional[Dict[str, Any]]
    #: The minimal spec itself, ready for compile_playbook.
    minimal_spec: Optional[dict]
    #: Record of the minimal cell's evaluation.
    minimal_record: Optional[dict]
    #: Extra single-cell evaluations spent bisecting.
    probes: int = 0
    #: Cells dropped by the max_cells subsample (0 = full grid).
    skipped_cells: int = 0

    @property
    def hot_cells(self) -> List[dict]:
        """The evaluated cells that produced hot rows."""
        return [cell for cell in self.cells if cell["hot"]]


# ---------------------------------------------------------------------------
# Evaluation through the campaign engine
# ---------------------------------------------------------------------------
def _is_hot(record: dict, config: FuzzConfig) -> bool:
    return (
        record.get("status") == "ok"
        and int(record.get(config.metric, 0)) >= config.min_hot_rows
    )


def _campaign(workloads: Sequence[str], config: FuzzConfig) -> Campaign:
    return Campaign(
        workloads=list(workloads),
        mappings=[config.mapping],
        schemes=[config.scheme],
        thresholds=[config.t_rh],
        scale=1.0,
    )


def _evaluate(
    specs: Sequence[dict], config: FuzzConfig, *, workers: Optional[int] = None
) -> List[dict]:
    """Run specs through the campaign engine; one record per spec.

    Duplicate specs (identical canonical JSON) collapse to one campaign
    cell and share its record -- sweeps whose axes collide stay valid.
    """
    names = [workload_name_for(spec) for spec in specs]
    unique = list(dict.fromkeys(names))
    records = _campaign(unique, config).run(
        workers=workers if workers is not None else config.workers,
        stats_cache_dir=config.stats_cache_dir,
    )
    by_name = {record["workload"]: record for record in records}
    return [by_name[name] for name in names]


# ---------------------------------------------------------------------------
# The fuzzer
# ---------------------------------------------------------------------------
def fuzz(
    base: dict, sweep: Dict[str, Union[str, Sequence]], *, config: FuzzConfig = FuzzConfig()
) -> FuzzResult:
    """Expand, evaluate, and bisect one sweep; fully deterministic."""
    cells = expand_sweep(base, sweep)
    skipped = 0
    if config.max_cells and len(cells) > config.max_cells:
        rng = np.random.default_rng(config.seed)
        keep = np.sort(rng.choice(len(cells), size=config.max_cells, replace=False))
        skipped = len(cells) - config.max_cells
        cells = [cells[i] for i in keep.tolist()]

    with TRACER.span("fuzz.sweep", cells=len(cells)):
        records = _evaluate([spec for _, spec in cells], config)
    results = []
    for (overrides, spec), record in zip(cells, records):
        hot = _is_hot(record, config)
        if METRICS.enabled:
            status = "hot" if hot else ("cold" if record.get("status") == "ok" else "error")
            METRICS.inc("fuzz.cells", result=status)
        results.append(
            {
                "overrides": overrides,
                "workload": workload_name_for(spec),
                "record": record,
                "hot": hot,
            }
        )

    seed_cell = next((cell for cell in results if cell["hot"]), None)
    if seed_cell is None:
        return FuzzResult(
            cells=results,
            seed_overrides=None,
            minimal_overrides=None,
            minimal_spec=None,
            minimal_record=None,
            probes=0,
            skipped_cells=skipped,
        )

    minimal_overrides, minimal_spec, minimal_record, probes = _bisect(
        base, sweep, dict(seed_cell["overrides"]), seed_cell["record"], config
    )
    return FuzzResult(
        cells=results,
        seed_overrides=dict(seed_cell["overrides"]),
        minimal_overrides=minimal_overrides,
        minimal_spec=minimal_spec,
        minimal_record=minimal_record,
        probes=probes,
        skipped_cells=skipped,
    )


def _spec_with(base: dict, overrides: Dict[str, Any]) -> dict:
    spec = base
    for name, value in overrides.items():
        spec = set_path(spec, name, value)
    return spec


def _bisect(
    base: dict,
    sweep: Dict[str, Union[str, Sequence]],
    overrides: Dict[str, Any],
    record: dict,
    config: FuzzConfig,
) -> Tuple[Dict[str, Any], dict, dict, int]:
    """Shrink each numeric axis to its minimal still-hot swept value.

    Coordinate descent in sorted axis order: for each axis, binary
    search the sorted swept values at or below the current one (probes
    run single-cell through the campaign engine, so the stats cache
    dedupes repeats).  Axes whose values are not numbers are left at the
    seed cell's value.
    """
    probes = 0

    def hot_at(candidate: Dict[str, Any]) -> Tuple[bool, dict]:
        nonlocal probes
        probes += 1
        if METRICS.enabled:
            METRICS.inc("fuzz.probes")
        (result,) = _evaluate([_spec_with(base, candidate)], config, workers=1)
        return _is_hot(result, config), result

    with TRACER.span("fuzz.bisect", axes=len(sweep)):
        for axis in sorted(sweep):
            current = overrides[axis]
            if isinstance(current, bool) or not isinstance(current, (int, float)):
                continue
            values = sorted(v for v in parse_axis(sweep[axis]) if v <= current)
            lo, hi = 0, values.index(current)
            best_record = record
            while lo < hi:
                mid = (lo + hi) // 2
                candidate = dict(overrides)
                candidate[axis] = values[mid]
                hot, probe_record = hot_at(candidate)
                if hot:
                    hi = mid
                    best_record = probe_record
                else:
                    lo = mid + 1
            overrides[axis] = values[lo]
            record = best_record if values[lo] != current else record
    return overrides, _spec_with(base, overrides), record, probes


__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "parse_axis",
    "set_path",
    "expand_sweep",
    "fuzz",
]
