"""The illustrative kernels of Figure 4: stream, stride-64, random.

All three sweep a 4 MB footprint with one million accesses; under the
sequential baseline mapping stride-64 and random make every row hot,
while an encrypted mapping eliminates the hot rows entirely.
"""

from __future__ import annotations

import numpy as np

from repro.utils.prng import SplitMix64
from repro.utils.units import MB, LINE_BYTES
from repro.workloads.trace import Trace

#: Figure 4 defaults: 4 MB footprint, 1 M accesses.
DEFAULT_FOOTPRINT_LINES = 4 * MB // LINE_BYTES
DEFAULT_ACCESSES = 1_000_000


def stream_kernel(
    footprint_lines: int = DEFAULT_FOOTPRINT_LINES,
    accesses: int = DEFAULT_ACCESSES,
    *,
    base_line: int = 0,
) -> Trace:
    """Sequential sweep: line 0, 1, 2, ... wrapping over the footprint."""
    _check(footprint_lines, accesses)
    lines = (np.arange(accesses, dtype=np.uint64) % np.uint64(footprint_lines)) + np.uint64(
        base_line
    )
    return Trace(name="stream", lines=lines, instructions=accesses * 4)


def stride_kernel(
    footprint_lines: int = DEFAULT_FOOTPRINT_LINES,
    accesses: int = DEFAULT_ACCESSES,
    *,
    stride_lines: int = 64,
    base_line: int = 0,
) -> Trace:
    """Stride-64: every access hits a new page; after a full pass the
    stride continues from the next line of each page (Section 4.1)."""
    _check(footprint_lines, accesses)
    if footprint_lines % stride_lines != 0:
        raise ValueError("footprint must be a multiple of the stride")
    pages = footprint_lines // stride_lines
    i = np.arange(accesses, dtype=np.uint64)
    page = i % np.uint64(pages)
    pass_index = (i // np.uint64(pages)) % np.uint64(stride_lines)
    lines = page * np.uint64(stride_lines) + pass_index + np.uint64(base_line)
    return Trace(name=f"stride-{stride_lines}", lines=lines, instructions=accesses * 4)


def random_kernel(
    footprint_lines: int = DEFAULT_FOOTPRINT_LINES,
    accesses: int = DEFAULT_ACCESSES,
    *,
    seed: int = 0xF16,
    base_line: int = 0,
) -> Trace:
    """Uniform random accesses within the footprint."""
    _check(footprint_lines, accesses)
    rng = SplitMix64(seed).numpy_rng()
    lines = rng.integers(0, footprint_lines, size=accesses, dtype=np.uint64) + np.uint64(
        base_line
    )
    return Trace(name="random", lines=lines, instructions=accesses * 4)


def _check(footprint_lines: int, accesses: int) -> None:
    if footprint_lines < 1:
        raise ValueError(f"footprint_lines must be >= 1, got {footprint_lines}")
    if accesses < 1:
        raise ValueError(f"accesses must be >= 1, got {accesses}")


__all__ = [
    "DEFAULT_FOOTPRINT_LINES",
    "DEFAULT_ACCESSES",
    "stream_kernel",
    "stride_kernel",
    "random_kernel",
]
