"""Composable synthetic workload builder.

The calibrated SPEC generators (:mod:`repro.workloads.spec`) hard-code
one composition; this module exposes the same building blocks as a
public API so users can assemble *their own* workloads -- e.g. to model
a proprietary application's miss stream, or to stress a mitigation with
a specific hot-row population:

>>> from repro.workloads.synthetic import (
...     ColdPool, HotSpots, SequentialScan, WorkloadBuilder)
>>> trace = (
...     WorkloadBuilder(line_addr_bits=28, seed=7)
...     .add(HotSpots(rows=500, activations_per_row=100))
...     .add(SequentialScan(rows=20_000, accesses=400_000))
...     .add(ColdPool(rows=50_000, accesses_per_row=4.0))
...     .build(name="my-app", mpki=4.0)
... )

Each component contributes a stream of accesses plus burst structure;
the builder interleaves them the way a memory controller would see them
(bursts contiguous, singles shuffled).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.bitops import is_power_of_two
from repro.workloads.spec import BLOB_ROWS, LINES_PER_ROW
from repro.workloads.trace import Trace


class Component(abc.ABC):
    """One traffic component of a synthetic workload."""

    @abc.abstractmethod
    def lines_needed(self) -> int:
        """Footprint in lines (for address-space allocation)."""

    @abc.abstractmethod
    def generate(
        self, rng: np.random.Generator, base_line: int
    ) -> Tuple[np.ndarray, int]:
        """Produce ``(stream, burst_length)``.

        ``stream`` is the component's accesses; when ``burst_length > 1``
        the stream is a sequence of burst *start* addresses and each
        burst covers ``burst_length`` consecutive lines.
        """

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class HotSpots(Component):
    """Rows receiving concentrated activations (hot-row factory).

    Args:
        rows: Number of hot rows.
        activations_per_row: Accesses per row (~activations, since the
            stream interleaves).
        active_lines: Distinct lines per row carrying the traffic.
        clustered: Lay rows out in contiguous 16-row blobs (mapping-
            equivalence across Intel layouts, as real hot regions do).
    """

    rows: int
    activations_per_row: int = 90
    active_lines: int = 56
    clustered: bool = True

    def __post_init__(self) -> None:
        if self.rows < 1 or self.activations_per_row < 1:
            raise ValueError("rows and activations_per_row must be positive")
        if not 1 <= self.active_lines <= LINES_PER_ROW:
            raise ValueError(f"active_lines must be in [1, {LINES_PER_ROW}]")

    def lines_needed(self) -> int:
        if self.clustered:
            blobs = -(-self.rows // BLOB_ROWS)
            return blobs * BLOB_ROWS * LINES_PER_ROW
        return self.rows * LINES_PER_ROW

    def generate(self, rng, base_line):
        row_bases = base_line + np.arange(self.rows, dtype=np.uint64) * np.uint64(
            LINES_PER_ROW
        )
        salts = rng.integers(0, LINES_PER_ROW, self.rows, dtype=np.int64)
        perm = rng.permutation(LINES_PER_ROW).astype(np.int64)
        pick = np.repeat(
            np.arange(self.rows, dtype=np.int64), self.activations_per_row
        )
        offsets = rng.integers(0, self.active_lines, pick.size, dtype=np.int64)
        cols = perm[(salts[pick] + offsets) % LINES_PER_ROW].astype(np.uint64)
        lines = row_bases[pick] + cols
        # Shuffle so a row's accesses spread over the window instead of
        # arriving back-to-back (which the row buffer would absorb).
        return lines[rng.permutation(lines.size)], 1


@dataclass(frozen=True)
class SequentialScan(Component):
    """Streaming sweeps in row-buffer-friendly bursts."""

    rows: int
    accesses: int
    burst: int = 32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.accesses < 1:
            raise ValueError("rows and accesses must be positive")
        if not (is_power_of_two(self.burst) and 1 <= self.burst <= LINES_PER_ROW):
            raise ValueError("burst must be a power of two within the row")

    def lines_needed(self) -> int:
        return self.rows * LINES_PER_ROW

    def generate(self, rng, base_line):
        visits = max(1, self.accesses // self.burst)
        v = np.arange(visits, dtype=np.uint64)
        row = v % np.uint64(self.rows)
        bursts_per_row = max(1, LINES_PER_ROW // self.burst)
        sweep = ((v // np.uint64(self.rows)) % np.uint64(bursts_per_row)) * np.uint64(
            self.burst
        )
        starts = np.uint64(base_line) + row * np.uint64(LINES_PER_ROW) + sweep
        return starts, self.burst


@dataclass(frozen=True)
class ColdPool(Component):
    """Sparse uniform traffic filling out the footprint."""

    rows: int
    accesses_per_row: float = 4.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.accesses_per_row <= 0:
            raise ValueError("rows and accesses_per_row must be positive")

    def lines_needed(self) -> int:
        return self.rows * LINES_PER_ROW

    def generate(self, rng, base_line):
        count = max(1, int(self.rows * self.accesses_per_row))
        lines = np.uint64(base_line) + rng.integers(
            0, self.rows * LINES_PER_ROW, count, dtype=np.uint64
        )
        return lines, 1


@dataclass(frozen=True)
class PointerChase(Component):
    """Dependent-chain traffic: a random permutation walk.

    Models linked-data-structure misses: every access lands on a random
    line of the region with no spatial locality and no reuse until the
    cycle wraps.
    """

    rows: int
    accesses: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.accesses < 1:
            raise ValueError("rows and accesses must be positive")

    def lines_needed(self) -> int:
        return self.rows * LINES_PER_ROW

    def generate(self, rng, base_line):
        region = self.rows * LINES_PER_ROW
        walk_len = min(region, self.accesses)
        walk = rng.permutation(region)[:walk_len].astype(np.uint64)
        reps = -(-self.accesses // walk_len)
        lines = np.tile(walk, reps)[: self.accesses] + np.uint64(base_line)
        return lines, 1


class WorkloadBuilder:
    """Assembles components into a controller-order trace."""

    def __init__(self, *, line_addr_bits: int = 28, seed: int = 0x5EED) -> None:
        if line_addr_bits < 10:
            raise ValueError("line_addr_bits must be >= 10")
        self.line_addr_bits = line_addr_bits
        self.seed = seed
        self._components: List[Component] = []

    def add(self, component: Component) -> "WorkloadBuilder":
        """Add a component (chainable)."""
        self._components.append(component)
        return self

    def build(
        self,
        *,
        name: str = "synthetic",
        mpki: float = 3.0,
        window_s: float = 64e-3,
    ) -> Trace:
        """Generate the trace.

        Components are laid out in disjoint address regions (in the
        order added) and their streams interleaved: bursts stay
        contiguous, singles shuffle uniformly.
        """
        if not self._components:
            raise ValueError("builder has no components")
        total_lines = 1 << self.line_addr_bits
        needed = sum(c.lines_needed() for c in self._components)
        if needed > total_lines:
            raise ValueError(
                f"components need {needed} lines; address space has {total_lines}"
            )
        rng = np.random.default_rng(self.seed)
        streams: List[Tuple[np.ndarray, int]] = []
        base = 0
        for component in self._components:
            stream, burst = component.generate(rng, base)
            streams.append((stream, burst))
            base += component.lines_needed()
        lines = _interleave_bursts(rng, streams)
        instructions = max(1, int(round(lines.size * 1000.0 / mpki)))
        return Trace(name=name, lines=lines, instructions=instructions, window_s=window_s)


def _interleave_bursts(
    rng: np.random.Generator, streams: List[Tuple[np.ndarray, int]]
) -> np.ndarray:
    """Merge component streams, keeping each burst contiguous.

    Fully vectorized: a shuffled label sequence decides whose burst goes
    next; per-label positions are gathered with cumulative offsets, so
    million-access builds stay in numpy.
    """
    labels = [
        np.full(stream.size, label, dtype=np.int64)
        for label, (stream, _) in enumerate(streams)
    ]
    if not labels:
        raise ValueError("empty trace: no accesses generated")
    order = rng.permutation(np.concatenate(labels))
    if order.size == 0:
        raise ValueError("empty trace: no accesses generated")

    burst_of = np.array([burst for _, burst in streams], dtype=np.int64)
    lengths = burst_of[order]
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    out = np.empty(offsets[-1], dtype=np.uint64)
    for index, (stream, burst) in enumerate(streams):
        slots = offsets[:-1][order == index]
        # Slots appear in order, so the k-th slot takes stream[k].
        for j in range(burst):
            out[slots + j] = stream[: slots.size] + np.uint64(j)
    return out


__all__ = [
    "Component",
    "HotSpots",
    "SequentialScan",
    "ColdPool",
    "PointerChase",
    "WorkloadBuilder",
]
