"""Synthetic SPEC CPU2017-like workload generators.

SPEC traces are proprietary and the paper's gem5 checkpoints are not
redistributable, so each of the 18 rate workloads is modeled as a
composition of three components whose parameters are calibrated to the
paper's published per-workload statistics (Tables 2 and 3):

* **hot blobs** -- contiguous 128 KB regions (32 pages / 16 baseline
  rows) receiving concentrated accesses.  These are what make rows hot:
  under the Intel mappings each blob row collects ~90 activations from
  ~56 distinct lines (Table 3); two tiers reproduce the ACT-64+ and
  ACT-512+ populations.  The 128 KB blob granularity is what makes the
  Coffee Lake, Skylake, and MOP mappings see equivalent hot-row counts,
  as the paper observes.
* **sequential scans** -- streaming sweeps in 32-line bursts, supplying
  the row-buffer hits (~55% baseline hit rate) and touching many rows
  thinly.
* **cold random** -- sparse uniform accesses filling out the unique-rows
  footprint at a per-row rate far below the hot threshold.

Every generator is deterministic in (name, seed, scale, cores); scale
shrinks the footprint/row populations while *preserving per-row
activation intensities*, so hot-row ratios between mappings are stable
at reduced cost.

Note on Table 2: the published table's "unique rows" column contains
OCR-inconsistent entries (values smaller than the same row's hot-row
count); this module uses the self-consistent hot-row columns verbatim
(their averages match the quoted 9528 / 206) and unique-rows targets
chosen to respect feasibility and the paper's "<5% of rows touched"
observation.  EXPERIMENTS.md records measured-vs-paper for all columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.prng import SplitMix64, derive_key
from repro.workloads.trace import Trace

#: Lines per baseline (Coffee Lake) row: the blob/row granularity.
LINES_PER_ROW = 128

#: Pages per hot blob (32 pages = 16 baseline rows = 128 KB).
BLOB_ROWS = 16

#: Instructions per core per 64 ms window at 3 GHz and IPC ~1.
INSTRUCTIONS_PER_CORE_WINDOW = 192_000_000

#: Per-row cold-access rate cap, kept well under the hot threshold so
#: the cold component cannot mint accidental hot rows.
MAX_COLD_RATE = 32.0

#: Nominal cold rate: enough Poisson mass to touch ~99.8% of the region.
NOMINAL_COLD_RATE = 6.0

#: Scan burst length in lines (one block = one row-buffer episode).
SCAN_BLOCK = 32


@dataclass(frozen=True)
class SpecProfile:
    """Calibration targets for one SPEC-rate workload (4-core system).

    Attributes:
        name: SPEC benchmark name.
        mpki: LLC misses per kilo-instruction (Table 2).
        unique_rows: Distinct baseline rows touched per 64 ms window.
        hot64_rows: Rows with >= 64 activations (ACT-64+, includes the
            512+ population).
        hot512_rows: Rows with >= 512 activations (ACT-512+).
        seq_fraction: Share of the non-hot footprint devoted to
            sequential scanning (controls the row-buffer hit rate).
        hot64_acts: Mean activations per ACT-64+ row.
        hot512_acts: Mean activations per ACT-512+ row.
        active_lines: Distinct lines per hot row carrying the accesses
            (Table 3 reports ~56 of 128).
    """

    name: str
    mpki: float
    unique_rows: int
    hot64_rows: int
    hot512_rows: int
    seq_fraction: float
    hot64_acts: int = 90
    hot512_acts: int = 700
    active_lines: int = 56

    def __post_init__(self) -> None:
        if self.hot512_rows > self.hot64_rows:
            raise ValueError(f"{self.name}: ACT-512+ rows exceed ACT-64+ rows")
        if self.unique_rows < self.hot64_rows:
            raise ValueError(f"{self.name}: unique rows below hot-row count")
        if not 0.0 <= self.seq_fraction <= 1.0:
            raise ValueError(f"{self.name}: seq_fraction must be in [0, 1]")
        if not 1 <= self.active_lines <= LINES_PER_ROW:
            raise ValueError(f"{self.name}: active_lines out of range")


#: Calibration table for the 18 SPEC2017 rate workloads (Table 2).
SPEC_PROFILES: Dict[str, SpecProfile] = {
    p.name: p
    for p in [
        SpecProfile("blender", 12.78, 88_800, 34_700, 2_900, 0.55),
        SpecProfile("lbm", 20.87, 294_000, 70_300, 0, 0.75),
        SpecProfile("gcc", 6.12, 104_000, 21_800, 384, 0.50),
        SpecProfile("cactuBSSN", 2.57, 52_000, 12_200, 0, 0.60),
        SpecProfile("mcf", 5.81, 49_000, 10_500, 425, 0.35),
        SpecProfile("roms", 3.33, 279_000, 6_600, 9, 0.35),
        SpecProfile("perlbench", 0.71, 114_000, 1_700, 0, 0.45),
        SpecProfile("xz", 0.40, 108_000, 496, 0, 0.30),
        SpecProfile("nab", 0.53, 44_000, 189, 0, 0.50),
        SpecProfile("namd", 0.37, 34_000, 105, 0, 0.50),
        SpecProfile("imagick", 0.13, 11_000, 89, 0, 0.50),
        SpecProfile("bwaves", 0.21, 17_000, 20, 0, 0.70),
        SpecProfile("wrf", 0.02, 702, 20, 0, 0.50),
        SpecProfile("exchange2", 0.01, 1_220, 14, 0, 0.40),
        SpecProfile("deepsjeng", 0.25, 68_100, 12, 0, 0.20),
        SpecProfile("povray", 0.01, 390, 8, 0, 0.40),
        SpecProfile("parest", 0.10, 24_000, 3, 0, 0.40),
        SpecProfile("leela", 0.02, 879, 0, 0, 0.40),
    ]
}


def spec_names() -> List[str]:
    """The 18 workload names in the paper's (hot-rows-descending) order."""
    return list(SPEC_PROFILES.keys())


def spec_profile(name: str) -> SpecProfile:
    """Look up a workload's calibration profile."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC workload '{name}'; known: {', '.join(SPEC_PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
def _solve_cold_region(target_rows: int, accesses: int) -> int:
    """Region size whose Poisson coverage touches ~target_rows rows."""
    if target_rows <= 0 or accesses <= 0:
        return 0
    region = float(target_rows)
    for _ in range(8):
        lam = accesses / region
        coverage = 1.0 - np.exp(-lam)
        if coverage <= 1e-9:
            break
        region = target_rows / coverage
    return max(1, int(round(region)))


def _place_regions(
    rng: np.random.Generator,
    total_lines: int,
    blob_count: int,
    scan_lines: int,
    cold_lines: int,
) -> Tuple[np.ndarray, int, int]:
    """Assign disjoint address ranges: blob bases, scan base, cold base.

    Blobs are scattered over the lower half of the address space on a
    blob-aligned grid; the scan and cold regions occupy the upper half.
    """
    blob_lines = BLOB_ROWS * LINES_PER_ROW
    half = total_lines // 2
    slots = max(1, half // blob_lines)
    if blob_count > slots:
        raise ValueError(
            f"footprint needs {blob_count} hot blobs but only {slots} slots fit"
        )
    chosen = rng.choice(slots, size=blob_count, replace=False) if blob_count else np.empty(
        0, dtype=np.int64
    )
    blob_bases = chosen.astype(np.uint64) * np.uint64(blob_lines)
    scan_base = half
    cold_base = scan_base + scan_lines
    if cold_base + cold_lines > total_lines:
        raise ValueError(
            f"scan+cold footprint ({scan_lines + cold_lines} lines) exceeds the "
            f"upper half of the {total_lines}-line address space"
        )
    return blob_bases, scan_base, cold_base


def _pareto_acts(
    rng: np.random.Generator, rows: int, floor_acts: int, mean_acts: int
) -> np.ndarray:
    """Per-row activation counts: Pareto with the given floor and mean.

    Real per-row activation histograms are heavy-tailed; a Pareto tier
    anchored at the hot threshold reproduces both the row count at the
    threshold and the mid-range population between thresholds that
    intermediate-T_RH mitigation counts depend on.
    """
    if rows == 0:
        return np.empty(0, dtype=np.int64)
    if mean_acts <= floor_acts:
        return np.full(rows, floor_acts, dtype=np.int64)
    alpha = mean_acts / (mean_acts - floor_acts)
    u = rng.random(rows)
    acts = floor_acts * np.power(1.0 - u, -1.0 / alpha)
    # Clip the extreme tail so a single synthetic row cannot dominate a
    # whole window (real rows are bounded by the row-cycle time anyway).
    return np.minimum(acts, 50.0 * mean_acts).astype(np.int64)


def _hot_component(
    rng: np.random.Generator,
    row_bases: np.ndarray,
    acts_per_row: np.ndarray,
    active_lines: int,
    perm: np.ndarray,
) -> np.ndarray:
    """Accesses over a tier's hot rows with exact per-row counts,
    confined per row to a fixed window of ``active_lines`` positions in a
    global permutation (so each hot row shows ~active_lines distinct
    activating lines, per Table 3)."""
    if row_bases.size == 0 or acts_per_row.sum() == 0:
        return np.empty(0, dtype=np.uint64)
    rows = row_bases.size
    salts = rng.integers(0, LINES_PER_ROW, size=rows, dtype=np.int64)
    pick = np.repeat(np.arange(rows, dtype=np.int64), acts_per_row)
    accesses = pick.size
    j = rng.integers(0, active_lines, size=accesses, dtype=np.int64)
    col = perm[(salts[pick] + j) % LINES_PER_ROW].astype(np.uint64)
    return row_bases[pick] + col


def _tier_row_bases(blob_bases: np.ndarray, rows_needed: int) -> np.ndarray:
    """First ``rows_needed`` row base addresses across the given blobs."""
    if rows_needed <= 0:
        return np.empty(0, dtype=np.uint64)
    offsets = np.arange(BLOB_ROWS, dtype=np.uint64) * np.uint64(LINES_PER_ROW)
    all_rows = (blob_bases[:, None] + offsets[None, :]).reshape(-1)
    return all_rows[:rows_needed]


def spec_trace(
    name: str,
    *,
    line_addr_bits: int = 28,
    scale: float = 1.0,
    cores: int = 4,
    seed: int = 2024,
) -> Trace:
    """Generate one 64 ms window of a calibrated SPEC-like workload.

    Args:
        name: SPEC workload name (see :data:`SPEC_PROFILES`).
        line_addr_bits: Width of the target line-address space (28 for
            the 16 GB baseline, 29 for the 32 GB systems of Fig. 15).
        scale: Footprint/duration scaling in (0, 1]; per-row activation
            intensities are preserved so hot-row counts scale linearly.
        cores: Cores running rate copies (4 in the baseline, 8 in
            Fig. 15); scales accesses and footprint together.
        seed: Determinism seed.
    """
    profile = spec_profile(name)
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    factor = scale * (cores / 4.0)
    total_lines = 1 << line_addr_bits
    rng = SplitMix64(derive_key(seed, f"spec/{name}", 64)).numpy_rng()
    perm = rng.permutation(LINES_PER_ROW).astype(np.int64)

    # --- population sizing -------------------------------------------------
    tier512_rows = int(round(profile.hot512_rows * factor))
    tier64_rows = int(round((profile.hot64_rows - profile.hot512_rows) * factor))
    unique_target = max(1, int(round(profile.unique_rows * factor)))

    # Per-row activation counts: heavy-tailed above each threshold, with
    # the 64+ tier clipped below 512 so the ACT-512+ population stays at
    # its calibrated size, and the 512+ tier clipped at 1.6x its mean
    # (beyond that the per-line rate would exceed what any single line
    # of a benign row sustains; the clip level also sets the small
    # population of individually-hot gangs that survives Rubix at GS4,
    # calibrated to Figure 7's residual).
    acts64 = np.minimum(_pareto_acts(rng, tier64_rows, 64, profile.hot64_acts), 500)
    acts512 = np.minimum(
        _pareto_acts(rng, tier512_rows, 512, profile.hot512_acts),
        int(1.6 * profile.hot512_acts),
    )
    acc64 = int(acts64.sum())
    acc512 = int(acts512.sum())
    hot_acc = acc512 + acc64

    accesses = int(profile.mpki / 1000.0 * INSTRUCTIONS_PER_CORE_WINDOW * cores * scale)
    accesses = max(accesses, int(np.ceil(hot_acc / 0.85)), 1000)
    rest = accesses - hot_acc

    u_rem = max(0, unique_target - tier512_rows - tier64_rows)
    scan_rows = int(round(u_rem * profile.seq_fraction))
    cold_rows = u_rem - scan_rows

    # Cold accesses: just enough to touch the cold footprint (a nominal
    # per-row rate far below the hot threshold); the rest streams, which
    # is what sustains the baseline row-buffer hit rate.
    cold_acc = int(min(rest, NOMINAL_COLD_RATE * cold_rows))
    seq_acc = rest - cold_acc
    if scan_rows == 0 and seq_acc > 0:
        # No scan footprint: the remainder lands in the cold region too.
        cold_acc += seq_acc
        seq_acc = 0
    cold_region = _solve_cold_region(cold_rows, cold_acc)
    if cold_region:
        # Never let the cold component mint accidental hot rows: dilute
        # the region if the per-row rate would approach the threshold.
        cold_region = max(cold_region, int(np.ceil(cold_acc / MAX_COLD_RATE)))

    # --- address layout -----------------------------------------------------
    hot_rows_total = tier512_rows + tier64_rows
    blob_count = int(np.ceil(hot_rows_total / BLOB_ROWS)) if hot_rows_total else 0
    scan_lines = scan_rows * LINES_PER_ROW
    cold_lines = cold_region * LINES_PER_ROW
    blob_bases, scan_base, cold_base = _place_regions(
        rng, total_lines, blob_count, scan_lines, cold_lines
    )
    all_hot_rows = _tier_row_bases(blob_bases, hot_rows_total)
    rng.shuffle(all_hot_rows)
    rows512 = all_hot_rows[:tier512_rows]
    rows64 = all_hot_rows[tier512_rows:]

    # --- component streams ---------------------------------------------------
    # Ultra-hot rows engage a denser line set than ordinary hot rows
    # (their activation volume comes from broader structures), but stay
    # inside Table 3's dominant 32-64 distinct-line bucket.
    active512 = max(profile.active_lines, 63)
    hot512_lines = _hot_component(rng, rows512, acts512, active512, perm)
    hot64_lines = _hot_component(rng, rows64, acts64, profile.active_lines, perm)

    block = SCAN_BLOCK
    visits = seq_acc // block if scan_rows else 0
    if scan_rows and visits < scan_rows:
        # Not enough streaming volume for 32-line bursts; shrink bursts
        # so every scan row is still touched.
        block = max(1, seq_acc // scan_rows)
        visits = seq_acc // block if block else 0
    if visits:
        v = np.arange(visits, dtype=np.uint64)
        row = v % np.uint64(scan_rows)
        bursts_per_row = max(1, LINES_PER_ROW // block)
        sweep = ((v // np.uint64(scan_rows)) % np.uint64(bursts_per_row)) * np.uint64(block)
        scan_starts = np.uint64(scan_base) + row * np.uint64(LINES_PER_ROW) + sweep
    else:
        scan_starts = np.empty(0, dtype=np.uint64)

    if cold_acc and cold_region:
        cold_lines_arr = np.uint64(cold_base) + rng.integers(
            0, cold_region * LINES_PER_ROW, size=cold_acc, dtype=np.uint64
        )
    else:
        cold_lines_arr = np.empty(0, dtype=np.uint64)

    lines = _weave(
        rng,
        singles=[hot512_lines, hot64_lines, cold_lines_arr],
        block_starts=scan_starts,
        block_len=block,
    )
    instructions = max(1, int(round(lines.size * 1000.0 / profile.mpki)))
    return Trace(
        name=name,
        lines=lines,
        instructions=instructions,
        window_s=64e-3 * scale,
        scale=scale,
        seed=seed,
    )


def _weave(
    rng: np.random.Generator,
    singles: List[np.ndarray],
    block_starts: np.ndarray,
    block_len: int,
) -> np.ndarray:
    """Interleave single-access streams with burst blocks.

    Singles are already i.i.d., so a uniform shuffle of *block slots*
    (each single is a length-1 block, each scan visit a length-
    ``block_len`` burst that stays contiguous, as a memory controller
    would see it) produces the merged stream.
    """
    single_lines = (
        np.concatenate([s for s in singles if s.size])
        if any(s.size for s in singles)
        else np.empty(0, dtype=np.uint64)
    )
    n_single = single_lines.size
    n_blocks = block_starts.size
    if n_blocks == 0:
        if n_single == 0:
            raise ValueError("empty trace: no accesses generated")
        return single_lines[rng.permutation(n_single)]

    labels = np.zeros(n_single + n_blocks, dtype=np.int8)
    labels[n_single:] = 1
    rng.shuffle(labels)
    lengths = np.where(labels == 1, block_len, 1).astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    out = np.empty(offsets[-1], dtype=np.uint64)

    single_order = rng.permutation(n_single) if n_single else np.empty(0, dtype=np.int64)
    single_slots = offsets[:-1][labels == 0]
    out[single_slots] = single_lines[single_order]

    block_slots = offsets[:-1][labels == 1]
    for j in range(block_len):
        out[block_slots + j] = block_starts + np.uint64(j)
    return out


__all__ = [
    "SpecProfile",
    "SPEC_PROFILES",
    "spec_names",
    "spec_profile",
    "spec_trace",
    "LINES_PER_ROW",
    "BLOB_ROWS",
    "INSTRUCTIONS_PER_CORE_WINDOW",
]
