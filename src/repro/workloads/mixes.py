"""Mixed workloads: 16 four-way combinations of SPEC workloads (§3.2).

Each mix runs four (deterministically drawn) SPEC workloads, one per
core, in disjoint quarters of the address space, with their streams
merged in controller order.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.prng import SplitMix64, derive_key
from repro.workloads.spec import spec_names, spec_trace
from repro.workloads.trace import Trace, interleave

#: Number of mixed workloads the paper evaluates.
MIX_COUNT = 16


def mix_names() -> List[str]:
    """Names mix1..mix16."""
    return [f"mix{i}" for i in range(1, MIX_COUNT + 1)]


def mix_profile(name: str, *, seed: int = 2024) -> List[str]:
    """The four SPEC members of a mix (deterministic in name and seed)."""
    if not name.startswith("mix"):
        raise ValueError(f"mix names look like 'mix3', got '{name}'")
    index = int(name[3:])
    if not 1 <= index <= MIX_COUNT:
        raise ValueError(f"mix index must be in [1, {MIX_COUNT}], got {index}")
    rng = SplitMix64(derive_key(seed, f"mix/{index}", 64))
    pool = spec_names()
    return [pool[rng.next_below(len(pool))] for _ in range(4)]


def mix_trace(
    name: str,
    *,
    line_addr_bits: int = 28,
    scale: float = 1.0,
    seed: int = 2024,
) -> Trace:
    """Generate one window of a four-way mix.

    Each member generates its single-core stream inside a private
    quarter of the address space (modeling OS placement), then the four
    streams merge proportionally.
    """
    members = mix_profile(name, seed=seed)
    quarter_bits = line_addr_bits - 2
    streams = []
    instructions = 0
    for core, member in enumerate(members):
        trace = spec_trace(
            member,
            line_addr_bits=quarter_bits,
            scale=scale,
            cores=1,
            seed=derive_key(seed, f"{name}/core{core}", 64),
        )
        streams.append(trace.lines | (np.uint64(core) << np.uint64(quarter_bits)))
        instructions += trace.instructions
    lines = interleave(streams)
    return Trace(
        name=name,
        lines=lines,
        instructions=instructions,
        window_s=64e-3 * scale,
        scale=scale,
        seed=seed,
    )


__all__ = ["MIX_COUNT", "mix_names", "mix_profile", "mix_trace"]
