"""Declarative attack playbooks: specs that compile to :class:`Trace`.

The litex-rowhammer-tester repos drive real DIMMs from *playbooks* --
payloads generated from row lists, parameter ranges written as
``start:end:step``, one engine behind every pattern.  This module ports
that idiom to simulation: a small declarative spec (a plain dict, fully
TOML/JSON-compatible) compiles deterministically into a
:class:`~repro.workloads.trace.Trace`, and every row/bank/column in the
spec goes through one validated, geometry-checked address path
(:func:`line_of`).  The ad-hoc constructors in
:mod:`repro.workloads.attacks` are thin wrappers over these specs, which
eliminates their historical trace-construction bug class (mis-phased
interleaves, unsigned wraparound, out-of-geometry rows) by construction.

Spec fields::

    {
      "name": "attack-double-sided",   # trace name
      "bank": 0,                       # bank the rows live in
      "rows": [999, 1001],             # ints and/or "start:end:step" ranges
      "pattern": "paired",             # round-robin | paired | frequency-weighted
      "rounds": 2000,                  # pattern repetitions
      "intensities": [4, 4, 1],        # per-row repeats (frequency-weighted)
      "seed": 181,                     # jitter seed (frequency-weighted)
      "near_injections": [             # overlay accesses on pattern slots
        {"row": 999, "every": 800, "phase": 0}
      ],
      "refresh_gap": 0,                # insert a gap_row access every N slots
      "gap_row": 5000,                 # row the refresh gap hits
      "col": 0,
      "address_space": "row",          # row | line (line = raw line addresses)
      "target_mapping": "coffeelake",  # consumed by the workload layer only
    }

Patterns:

* ``round-robin`` -- every row once per round, in order (TRRespass-style
  many-sided hammers).
* ``paired`` -- alias of round-robin restricted to exactly two rows (the
  classic single-/double-sided alternation).
* ``frequency-weighted`` -- each round repeats row *i* ``intensities[i]``
  times in a seeded jittered order (Blacksmith-style non-uniform
  patterns).  Construction is fully vectorized (one
  ``Generator.permuted`` call) and bit-identical to a per-round
  ``Generator.permutation`` loop over the same seed.

``near_injections`` overwrite base-pattern slots ``phase::every`` with
another row's accesses -- the Half-Double "keep the neighbours warm"
overlay.  Phases are validated against the period, so an injection can
never silently land on the wrong side of an interleave (the bug the
legacy ``half_double_attack`` had).  ``refresh_gap`` then inserts one
``gap_row`` access after every ``refresh_gap`` slots, for patterns that
pace themselves against the refresh schedule.

``address_space: "line"`` interprets ``rows`` (and injection rows /
``gap_row``) as raw line addresses and needs no mapping -- the blind
attacker's view.  ``target_mapping`` is *not* used by the compiler; the
workload-name layer (:func:`repro.experiments.common.get_trace`) uses it
to build the mapping a ``playbook:<json>`` workload is constructed
against.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.dram.config import Coordinate
from repro.mapping.base import AddressMapping
from repro.obs.runtime import METRICS
from repro.workloads.trace import Trace

#: Patterns :func:`compile_playbook` accepts.
PATTERNS = ("round-robin", "paired", "frequency-weighted")

#: Workload-name prefix the campaign layer resolves through this module.
PLAYBOOK_WORKLOAD_PREFIX = "playbook:"

_SPEC_KEYS = {
    "name",
    "bank",
    "rows",
    "pattern",
    "rounds",
    "intensities",
    "seed",
    "near_injections",
    "refresh_gap",
    "gap_row",
    "col",
    "address_space",
    "target_mapping",
}
_INJECTION_KEYS = {"row", "every", "phase"}

#: Default jitter seed for frequency-weighted patterns (the historical
#: Blacksmith constructor default, kept for golden stability).
DEFAULT_SEED = 0xB5


# ---------------------------------------------------------------------------
# Range and row-list parsing
# ---------------------------------------------------------------------------
def parse_range(text: str) -> List[int]:
    """Expand a ``start:end:step`` range string (end-exclusive).

    ``step`` defaults to 1; all three parts must be integers and the
    range must be non-empty with a positive step -- a silently empty
    row list is always a spec bug.

    >>> parse_range("1000:1008:2")
    [1000, 1002, 1004, 1006]
    """
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"range '{text}' must look like 'start:end' or 'start:end:step'"
        )
    try:
        numbers = [int(part) for part in parts]
    except ValueError as error:
        raise ValueError(f"range '{text}' has a non-integer part") from error
    start, end = numbers[0], numbers[1]
    step = numbers[2] if len(numbers) == 3 else 1
    if step < 1:
        raise ValueError(f"range '{text}' needs a positive step, got {step}")
    values = list(range(start, end, step))
    if not values:
        raise ValueError(f"range '{text}' is empty")
    return values


def parse_rows(entries: Union[int, str, Sequence]) -> List[int]:
    """Expand a spec ``rows`` value into a flat row list.

    Accepts a single int, a single range string, or a list mixing both.
    """
    if isinstance(entries, (int, np.integer)):
        return [int(entries)]
    if isinstance(entries, str):
        return parse_range(entries)
    if isinstance(entries, (list, tuple)):
        rows: List[int] = []
        for entry in entries:
            if isinstance(entry, bool) or not isinstance(entry, (int, np.integer, str)):
                raise ValueError(
                    f"rows entries must be ints or 'start:end:step' strings, got {entry!r}"
                )
            rows.extend(parse_rows(entry))
        if not rows:
            raise ValueError("rows must not be empty")
        return rows
    raise ValueError(f"rows must be an int, a range string, or a list, got {entries!r}")


# ---------------------------------------------------------------------------
# The single validated address path
# ---------------------------------------------------------------------------
def line_of(mapping: AddressMapping, bank: int, row: int, col: int = 0) -> int:
    """Line address of ``(bank, row, col)``, geometry-checked.

    Every playbook (and every legacy attack wrapper) derives aggressor
    lines through this one path.  Out-of-geometry coordinates -- e.g.
    ``victim_row - 2`` underflowing row 0, or a row beyond the bank --
    raise a clear :class:`ValueError` here instead of flowing into
    ``mapping.inverse`` and producing an address for the wrong row.
    """
    config = mapping.config
    if not 0 <= bank < config.banks:
        raise ValueError(
            f"bank {bank} out of range [0, {config.banks}) for {mapping.name}"
        )
    if not 0 <= row < config.rows_per_bank:
        raise ValueError(
            f"row {row} out of range [0, {config.rows_per_bank}) for {mapping.name}"
            " (attack rows, including victim_row +/- 1/2 neighbours, must stay"
            " inside the bank)"
        )
    if not 0 <= col < config.lines_per_row:
        raise ValueError(
            f"col {col} out of range [0, {config.lines_per_row}) for {mapping.name}"
        )
    return mapping.inverse(Coordinate(channel=0, rank=0, bank=bank, row=row, col=col))


def _line_array(
    rows: Sequence[int],
    mapping: Optional[AddressMapping],
    *,
    bank: int,
    col: int,
    address_space: str,
) -> np.ndarray:
    """Translate spec rows to a uint64 line-address array (validated)."""
    if address_space == "line":
        for line in rows:
            if line < 0:
                raise ValueError(
                    f"line address {line} is negative (blind patterns must not"
                    " wrap below address 0)"
                )
            if mapping is not None and line >= mapping.config.total_lines:
                raise ValueError(
                    f"line address {line:#x} exceeds the"
                    f" {mapping.config.capacity_bytes} byte memory"
                )
        return np.asarray(rows, dtype=np.uint64)
    if mapping is None:
        raise ValueError(
            "address_space 'row' needs a mapping to derive line addresses;"
            " pass one or use address_space 'line'"
        )
    return np.asarray(
        [line_of(mapping, bank, row, col) for row in rows], dtype=np.uint64
    )


# ---------------------------------------------------------------------------
# Spec validation helpers
# ---------------------------------------------------------------------------
def _require_int(spec: dict, key: str, default: int, minimum: int) -> int:
    value = spec.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"spec field '{key}' must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"spec field '{key}' must be >= {minimum}, got {value}")
    return value


def validate_spec(spec: dict) -> dict:
    """Structural validation of a playbook spec; returns the spec.

    Checks everything that does not need a mapping: key names, types,
    pattern/row-count compatibility, injection phases, refresh-gap
    plumbing.  Geometry checks (row/bank/col bounds) happen per-address
    in :func:`line_of` during compilation.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"playbook spec must be a dict, got {type(spec).__name__}")
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise ValueError(
            f"unknown playbook spec key(s): {', '.join(sorted(unknown))};"
            f" allowed: {', '.join(sorted(_SPEC_KEYS))}"
        )
    address_space = spec.get("address_space", "row")
    if address_space not in ("row", "line"):
        raise ValueError(
            f"address_space must be 'row' or 'line', got {address_space!r}"
        )
    pattern = spec.get("pattern", "round-robin")
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; known: {', '.join(PATTERNS)}")
    rows = parse_rows(spec.get("rows", []))
    if pattern == "paired" and len(rows) != 2:
        raise ValueError(f"pattern 'paired' needs exactly 2 rows, got {len(rows)}")
    _require_int(spec, "rounds", 1, 1)
    _require_int(spec, "bank", 0, 0)
    _require_int(spec, "col", 0, 0)
    intensities = spec.get("intensities")
    if intensities is not None:
        if pattern != "frequency-weighted":
            raise ValueError(
                "intensities are only meaningful with pattern 'frequency-weighted'"
            )
        if not isinstance(intensities, (list, tuple)) or len(intensities) != len(rows):
            raise ValueError(
                f"intensities must list one repeat count per row"
                f" ({len(rows)} rows, got {intensities!r})"
            )
        for value in intensities:
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"intensities must be integers >= 1, got {value!r}")
    for injection in spec.get("near_injections", []):
        if not isinstance(injection, dict):
            raise ValueError(f"near_injections entries must be dicts, got {injection!r}")
        unknown = set(injection) - _INJECTION_KEYS
        if unknown:
            raise ValueError(
                f"unknown near_injection key(s): {', '.join(sorted(unknown))};"
                f" allowed: {', '.join(sorted(_INJECTION_KEYS))}"
            )
        if "row" not in injection or "every" not in injection:
            raise ValueError("near_injections entries need a 'row' and an 'every'")
        every = _require_int(injection, "every", 0, 2)
        phase = _require_int(injection, "phase", 0, 0)
        if phase >= every:
            raise ValueError(
                f"near_injection phase {phase} must be < its period {every}"
                " (phases select the pattern slot within one period)"
            )
    refresh_gap = _require_int(spec, "refresh_gap", 0, 0)
    if refresh_gap > 0 and "gap_row" not in spec:
        raise ValueError("refresh_gap > 0 needs a gap_row to access during the gap")
    if "gap_row" in spec and refresh_gap == 0:
        raise ValueError("gap_row is only meaningful with refresh_gap > 0")
    return spec


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
def _base_index(spec: dict, n_rows: int, rounds: int) -> np.ndarray:
    """Per-slot row index for the base pattern (before overlays)."""
    pattern = spec.get("pattern", "round-robin")
    if pattern in ("round-robin", "paired"):
        return np.tile(np.arange(n_rows, dtype=np.int64), rounds)
    # frequency-weighted: repeat row i intensities[i] times per round, in
    # a seeded jittered order.  One batched ``permuted`` call consumes
    # the identical bit stream as `rounds` sequential ``permutation``
    # calls, so this stays bit-identical to the historical loop.
    intensities = spec.get("intensities") or [1] * n_rows
    round_pattern = np.repeat(
        np.arange(n_rows, dtype=np.int64), np.asarray(intensities, dtype=np.int64)
    )
    rng = np.random.default_rng(spec.get("seed", DEFAULT_SEED))
    perm = rng.permuted(
        np.tile(np.arange(round_pattern.size, dtype=np.int64), (rounds, 1)), axis=1
    )
    return round_pattern[perm].reshape(-1)


def _apply_refresh_gap(lines: np.ndarray, gap: int, gap_line: int) -> np.ndarray:
    """Insert one gap_line access after every ``gap`` pattern slots."""
    n = lines.size
    slots = np.arange(n, dtype=np.int64)
    out = np.full(n + n // gap, np.uint64(gap_line), dtype=np.uint64)
    out[slots + slots // gap] = lines
    return out


def compile_playbook(
    spec: dict,
    mapping: Optional[AddressMapping] = None,
    *,
    scale: float = 1.0,
) -> Trace:
    """Compile a playbook spec into a :class:`Trace`.

    Deterministic: the same (spec, mapping, scale) always yields a
    byte-identical line stream.  ``scale`` shrinks ``rounds`` (to at
    least one round) so campaign-style scaled runs work on playbook
    workloads like on any other generator; overlay periods and phases
    are *not* rescaled -- the pattern shape is the experiment.
    """
    validate_spec(spec)
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    address_space = spec.get("address_space", "row")
    bank = int(spec.get("bank", 0))
    col = int(spec.get("col", 0))
    rows = parse_rows(spec.get("rows", []))
    rounds = max(1, int(round(int(spec["rounds"]) * scale)))

    row_lines = _line_array(
        rows, mapping, bank=bank, col=col, address_space=address_space
    )
    index = _base_index(spec, len(rows), rounds)
    lines = row_lines[index]

    for injection in spec.get("near_injections", []):
        (near_line,) = _line_array(
            [int(injection["row"])],
            mapping,
            bank=bank,
            col=col,
            address_space=address_space,
        )
        lines[int(injection.get("phase", 0)) :: int(injection["every"])] = near_line

    refresh_gap = int(spec.get("refresh_gap", 0))
    if refresh_gap > 0:
        (gap_line,) = _line_array(
            [int(spec["gap_row"])],
            mapping,
            bank=bank,
            col=col,
            address_space=address_space,
        )
        lines = _apply_refresh_gap(lines, refresh_gap, int(gap_line))

    if METRICS.enabled:
        METRICS.inc("playbook.compiled", pattern=spec.get("pattern", "round-robin"))
    seed = spec.get("seed")
    return Trace(
        name=str(spec.get("name", "playbook")),
        lines=lines,
        instructions=int(lines.size) * 2,
        scale=scale,
        seed=int(seed) if seed is not None else None,
    )


# ---------------------------------------------------------------------------
# Workload-name embedding (campaign integration)
# ---------------------------------------------------------------------------
def workload_name_for(spec: dict) -> str:
    """Self-contained campaign workload name for a playbook spec.

    The spec is embedded as canonical (sorted-key, compact) JSON, so the
    name survives journals, process-pool workers, and the service wire
    format without any side-channel registry, and two equal specs always
    produce the same name (content-keyed caches dedupe them).
    """
    validate_spec(spec)
    return PLAYBOOK_WORKLOAD_PREFIX + json.dumps(
        spec, sort_keys=True, separators=(",", ":")
    )


def spec_from_workload(name: str) -> dict:
    """Parse a ``playbook:<json>`` workload name back into its spec."""
    if not name.startswith(PLAYBOOK_WORKLOAD_PREFIX):
        raise ValueError(f"not a playbook workload name: {name!r}")
    payload = name[len(PLAYBOOK_WORKLOAD_PREFIX) :]
    try:
        spec = json.loads(payload)
    except json.JSONDecodeError as error:
        raise ValueError(f"playbook workload has malformed JSON: {error}") from error
    return validate_spec(spec)


def is_playbook_workload(name: str) -> bool:
    """True if ``name`` is a ``playbook:``-embedded workload."""
    return isinstance(name, str) and name.startswith(PLAYBOOK_WORKLOAD_PREFIX)


__all__ = [
    "PATTERNS",
    "PLAYBOOK_WORKLOAD_PREFIX",
    "DEFAULT_SEED",
    "parse_range",
    "parse_rows",
    "line_of",
    "validate_spec",
    "compile_playbook",
    "workload_name_for",
    "spec_from_workload",
    "is_playbook_workload",
]
