"""Trace container: a line-address stream plus workload metadata."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class Trace:
    """One refresh window's worth of memory requests.

    Attributes:
        name: Workload name (for reports).
        lines: Line addresses in program order (uint64).
        instructions: Instructions the trace's window represents (per the
            whole multi-core system), used to normalize MPKI and to
            anchor the performance model.
        window_s: Wall-clock duration the trace spans (tREFW by default).
        scale: Down-scaling factor applied during generation (1.0 = the
            paper's full 64 ms window); reported alongside results.
        seed: Generator seed the trace was produced with, when the
            generator had one (None for purely structural traces).
    """

    name: str
    lines: np.ndarray
    instructions: int
    window_s: float = 64e-3
    scale: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.lines = np.ascontiguousarray(self.lines, dtype=np.uint64)
        if self.instructions <= 0:
            raise ValueError(f"instructions must be positive, got {self.instructions}")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Content digest of the line stream (hex).

        Two traces share a fingerprint iff their line arrays are
        byte-identical, so caches keyed on it can never confuse
        same-shaped traces from different generators or seeds.  Computed
        once and memoized; ``lines`` must not be mutated afterwards.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(str(self.lines.size).encode())
            digest.update(self.lines.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __len__(self) -> int:
        return int(self.lines.size)

    @property
    def mpki(self) -> float:
        """Misses (memory accesses) per kilo-instruction of this trace."""
        return 1000.0 * self.lines.size / self.instructions

    def head(self, count: int) -> "Trace":
        """A prefix sub-trace (for quick tests)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        fraction = min(1.0, count / max(1, self.lines.size))
        return Trace(
            name=self.name,
            lines=self.lines[:count].copy(),
            instructions=max(1, int(self.instructions * fraction)),
            window_s=self.window_s * fraction,
            scale=self.scale,
            seed=self.seed,
        )


def interleave(streams: "list[np.ndarray]", seed: Optional[int] = None) -> np.ndarray:
    """Merge per-core streams into one controller-order stream.

    Each stream's internal order is preserved; streams are merged
    proportionally to their lengths (deterministic weighted round-robin),
    modeling cores progressing at similar rates.
    """
    streams = [np.asarray(s, dtype=np.uint64) for s in streams if len(s)]
    if not streams:
        return np.empty(0, dtype=np.uint64)
    if len(streams) == 1:
        return streams[0]
    total = sum(s.size for s in streams)
    out = np.empty(total, dtype=np.uint64)
    # Position each stream's i-th element at fraction (i + phase)/len of
    # the merged stream, then stable-sort by position.
    keys = np.empty(total, dtype=np.float64)
    cursor = 0
    for index, stream in enumerate(streams):
        n = stream.size
        phase = (index + 1) / (len(streams) + 1)
        keys[cursor : cursor + n] = (np.arange(n, dtype=np.float64) + phase) / n
        out[cursor : cursor + n] = stream
        cursor += n
    order = np.argsort(keys, kind="stable")
    return out[order]


__all__ = ["Trace", "interleave"]
