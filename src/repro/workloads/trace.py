"""Trace container: a line-address stream plus workload metadata."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Bytes hashed per :func:`lines_fingerprint` update (16 MiB): large
#: enough to amortize call overhead, small enough that hashing a
#: memory-mapped trace never faults more than a sliver into RAM at once.
FINGERPRINT_CHUNK_BYTES = 1 << 24


def lines_fingerprint(lines: np.ndarray) -> str:
    """Content digest of a line-address array (hex), computed streaming.

    Chunked ``blake2b`` over the same byte stream the historical
    in-memory digest hashed (``str(size)`` then the raw array bytes), so
    the result is bit-for-bit identical whether ``lines`` lives in RAM
    or is an ``np.memmap`` view of a multi-gigabyte trace file -- and in
    the latter case peak residency stays bounded by the chunk size
    instead of materializing ``lines.tobytes()``.
    """
    lines = np.ascontiguousarray(lines, dtype=np.uint64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(lines.size).encode())
    data = lines.view(np.uint8)
    for start in range(0, data.size, FINGERPRINT_CHUNK_BYTES):
        digest.update(data[start : start + FINGERPRINT_CHUNK_BYTES])
    return digest.hexdigest()


@dataclass
class Trace:
    """One refresh window's worth of memory requests.

    Attributes:
        name: Workload name (for reports).
        lines: Line addresses in program order (uint64).
        instructions: Instructions the trace's window represents (per the
            whole multi-core system), used to normalize MPKI and to
            anchor the performance model.
        window_s: Wall-clock duration the trace spans (tREFW by default).
        scale: Down-scaling factor applied during generation (1.0 = the
            paper's full 64 ms window); reported alongside results.
        seed: Generator seed the trace was produced with, when the
            generator had one (None for purely structural traces).
    """

    name: str
    lines: np.ndarray
    instructions: int
    window_s: float = 64e-3
    scale: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.lines = np.ascontiguousarray(self.lines, dtype=np.uint64)
        if self.instructions <= 0:
            raise ValueError(f"instructions must be positive, got {self.instructions}")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Content digest of the line stream (hex).

        Two traces share a fingerprint iff their line arrays are
        byte-identical, so caches keyed on it can never confuse
        same-shaped traces from different generators or seeds.  Computed
        once (streaming, memmap-safe -- see :func:`lines_fingerprint`)
        and memoized; ``lines`` must not be mutated afterwards.  Loaders
        that persisted the digest alongside the data may pre-seed
        ``_fingerprint`` to skip the hashing pass entirely.
        """
        if self._fingerprint is None:
            self._fingerprint = lines_fingerprint(self.lines)
        return self._fingerprint

    def __len__(self) -> int:
        return int(self.lines.size)

    @property
    def mpki(self) -> float:
        """Misses (memory accesses) per kilo-instruction of this trace."""
        return 1000.0 * self.lines.size / self.instructions

    def head(self, count: int) -> "Trace":
        """A prefix sub-trace (for quick tests)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        fraction = min(1.0, count / max(1, self.lines.size))
        return Trace(
            name=self.name,
            lines=self.lines[:count].copy(),
            instructions=max(1, int(self.instructions * fraction)),
            window_s=self.window_s * fraction,
            scale=self.scale,
            seed=self.seed,
        )


def _backing_mmap(array: np.ndarray):
    """The ``mmap`` object behind a (possibly viewed) memmap array."""
    base = array
    while isinstance(base, np.ndarray):
        candidate = getattr(base, "_mmap", None)
        if candidate is not None:
            return candidate
        base = base.base
    return None


def iter_line_chunks(lines: np.ndarray, chunk_lines: int, *, release_pages: bool = True):
    """Yield consecutive ``chunk_lines``-sized slices of a line array.

    For plain in-memory arrays this is ordinary slicing.  For
    memmap-backed arrays (raw ``.rtr`` traces) it additionally advises
    consumed pages out of the process between chunks
    (``madvise(MADV_DONTNEED)``), so a sequential pass over a
    multi-gigabyte trace keeps peak RSS near one chunk instead of
    accumulating every touched page until the pass ends.  Dropped pages
    are file-backed: re-reading them later is transparent (and the
    yielded slice must be consumed before advancing the iterator).
    """
    import mmap as mmap_module

    if chunk_lines < 1:
        raise ValueError(f"chunk_lines must be >= 1, got {chunk_lines}")
    mm = _backing_mmap(lines) if release_pages else None
    advice = getattr(mmap_module, "MADV_DONTNEED", None)
    can_release = mm is not None and advice is not None and hasattr(mm, "madvise")
    for start in range(0, int(lines.size), chunk_lines):
        yield lines[start : start + chunk_lines]
        if can_release:
            try:
                mm.madvise(advice)
            except (ValueError, OSError):  # pragma: no cover - platform quirk
                can_release = False


def interleave(streams: "list[np.ndarray]", seed: Optional[int] = None) -> np.ndarray:
    """Merge per-core streams into one controller-order stream.

    Each stream's internal order is preserved; streams are merged
    proportionally to their lengths (deterministic weighted round-robin),
    modeling cores progressing at similar rates.
    """
    streams = [np.asarray(s, dtype=np.uint64) for s in streams if len(s)]
    if not streams:
        return np.empty(0, dtype=np.uint64)
    if len(streams) == 1:
        return streams[0]
    total = sum(s.size for s in streams)
    out = np.empty(total, dtype=np.uint64)
    # Position each stream's i-th element at fraction (i + phase)/len of
    # the merged stream, then stable-sort by position.
    keys = np.empty(total, dtype=np.float64)
    cursor = 0
    for index, stream in enumerate(streams):
        n = stream.size
        phase = (index + 1) / (len(streams) + 1)
        keys[cursor : cursor + n] = (np.arange(n, dtype=np.float64) + phase) / n
        out[cursor : cursor + n] = stream
        cursor += n
    order = np.argsort(keys, kind="stable")
    return out[order]


__all__ = [
    "Trace",
    "interleave",
    "iter_line_chunks",
    "lines_fingerprint",
    "FINGERPRINT_CHUNK_BYTES",
]
