"""Content-keyed window-statistics cache, optionally disk-persistent.

The simulator's window analysis is the expensive step every experiment
shares.  Historically its cache was keyed on ``(name, scale, size)`` of
the trace -- two traces with identical shape but different contents
(e.g. different generator seeds) silently reused each other's
statistics.  This module replaces that with a *content-keyed* cache:

* the trace contributes a fingerprint (a digest of its line array) plus
  its generator seed where available,
* the mapping contributes its behavioural ``cache_key``, and
* the analyzer contributes its parameters (rows per bank, open-adaptive
  budget, and -- for dynamically-remapped windows -- the chunk size,
  which changes where the remap engine advances).

Entries can optionally persist to a directory of ``.npz`` files shared
across processes: a parallel campaign's workers read each other's
analysis results instead of recomputing them.  Writes are atomic
(temp file + ``os.replace``), so concurrent writers of the same key
race benignly -- both produce identical bytes -- and a reader never
observes a torn file.  Unreadable or truncated entries degrade to a
cache miss, never to a wrong result.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.dram.fast_model import TraceStats
from repro.obs.runtime import METRICS, get_logger

log = get_logger("cache")

#: Environment variable naming a shared persistence directory; when set,
#: process-wide simulators persist their window statistics there (this
#: is how pool workers inherit the cache location).
STATS_CACHE_ENV = "REPRO_STATS_CACHE"

#: On-disk entry format version (bump on layout changes).
_DISK_VERSION = 1


def stats_cache_key(
    *,
    trace_key: Tuple,
    mapping_key: str,
    rows_per_bank: int,
    max_hits: Optional[int],
    chunk_lines: Optional[int] = None,
) -> str:
    """Stable, filename-safe digest identifying one analysis result.

    Args:
        trace_key: The simulator's trace identity tuple (name, scale,
            length, content fingerprint, generator seed).
        mapping_key: The mapping's behavioural :attr:`cache_key`.
        rows_per_bank: Geometry term of the analysis.
        max_hits: Open-adaptive budget (None = pure open page).
        chunk_lines: Chunk size for dynamically-remapped windows; pass
            None for static mappings, where chunking never applies.
    """
    digest = hashlib.blake2b(digest_size=20)
    for part in (*trace_key, mapping_key, rows_per_bank, max_hits, chunk_lines, _DISK_VERSION):
        digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


class StatsCache:
    """Two-level (memory, optional disk) cache of ``(TraceStats, swaps)``.

    Args:
        persist_dir: Directory for the shared disk layer (created on
            first write); None keeps the cache purely in-memory.

    Only detail-free statistics are stored: per-activation detail arrays
    are large, single-use, and never cached by the simulator either.
    """

    def __init__(self, persist_dir: Optional[Union[str, Path]] = None) -> None:
        self._mem: Dict[str, Tuple[TraceStats, int]] = {}
        self.persist_dir: Optional[Path] = Path(persist_dir) if persist_dir else None
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.corrupt = 0  #: Disk entries quarantined as undecodable.

    # ------------------------------------------------------------------
    def persist_to(self, persist_dir: Optional[Union[str, Path]]) -> "StatsCache":
        """Attach (or detach, with None) the disk layer; returns self."""
        self.persist_dir = Path(persist_dir) if persist_dir else None
        return self

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem

    def clear(self, *, memory_only: bool = True) -> None:
        """Drop cached entries (disk entries too unless ``memory_only``)."""
        if self._mem:
            METRICS.inc("cache.evictions", len(self._mem))
        self._mem.clear()
        METRICS.set_gauge("cache.entries", 0)
        if not memory_only and self.persist_dir is not None and self.persist_dir.exists():
            for path in self.persist_dir.glob("*.npz"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[TraceStats, int]]:
        """Look up one entry; None on miss (disk errors degrade to miss)."""
        entry = self._mem.get(key)
        if entry is not None:
            self.hits += 1
            METRICS.inc("cache.requests", result="hit")
            return entry
        if self.persist_dir is not None:
            entry = self._disk_get(key)
            if entry is not None:
                self._mem[key] = entry
                self.disk_hits += 1
                METRICS.inc("cache.requests", result="disk_hit")
                return entry
        self.misses += 1
        METRICS.inc("cache.requests", result="miss")
        return None

    def put(self, key: str, stats: TraceStats, swaps: int) -> None:
        """Store one entry (and persist it when a disk layer is attached)."""
        self._mem[key] = (stats, swaps)
        METRICS.set_gauge("cache.entries", len(self._mem))
        if self.persist_dir is not None and stats.act_rows is None and stats.act_cols is None:
            self._disk_put(key, stats, swaps)

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.persist_dir / f"{key}.npz"

    def _disk_get(self, key: str) -> Optional[Tuple[TraceStats, int]]:
        path = self._entry_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as bundle:
                scalars = bundle["scalars"]
                row_ids = bundle["row_ids"]
                acts = bundle["acts_per_row"]
        except Exception as error:
            # Torn/corrupt entry (e.g. a crashed writer on a filesystem
            # without atomic replace): quarantine it and recompute.  The
            # rename keeps the bad bytes on disk for postmortems while
            # guaranteeing the next writer isn't racing a poisoned path
            # and the next reader doesn't pay the decode failure again.
            self._quarantine(path, error)
            return None
        if scalars.shape != (6,) or int(scalars[5]) != _DISK_VERSION:
            return None
        if METRICS.enabled:
            try:
                METRICS.inc("cache.disk_bytes_read", path.stat().st_size)
            except OSError:
                pass
        stats = TraceStats(
            n_accesses=int(scalars[0]),
            n_activations=int(scalars[1]),
            n_hits=int(scalars[2]),
            row_ids=row_ids.astype(np.int64),
            acts_per_row=acts.astype(np.int64),
            unique_rows_touched=int(scalars[3]),
        )
        return stats, int(scalars[4])

    def _quarantine(self, path: Path, error: BaseException) -> None:
        """Move an undecodable cache entry aside as ``<name>.corrupt``."""
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None  # someone else already moved/removed it
        METRICS.inc("cache.corrupt")
        self.corrupt += 1
        log.warning(
            "cache.corrupt_entry",
            message=f"[quarantined corrupt stats-cache entry {path.name}:"
            f" {type(error).__name__}: {error}]",
            entry=path.name,
            quarantined_as=quarantined.name if quarantined else None,
            error=f"{type(error).__name__}: {error}",
        )

    def _disk_put(self, key: str, stats: TraceStats, swaps: int) -> None:
        try:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(key)
            tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
            scalars = np.array(
                [
                    stats.n_accesses,
                    stats.n_activations,
                    stats.n_hits,
                    stats.unique_rows_touched,
                    swaps,
                    _DISK_VERSION,
                ],
                dtype=np.int64,
            )
            np.savez_compressed(
                tmp, scalars=scalars, row_ids=stats.row_ids, acts_per_row=stats.acts_per_row
            )
            if METRICS.enabled:
                METRICS.inc("cache.disk_bytes_written", tmp.stat().st_size)
            os.replace(tmp, path)
        except OSError:
            # Persistence is an optimization; a full disk or unwritable
            # directory must never fail the simulation itself.
            pass
        finally:
            try:
                if tmp.exists():
                    tmp.unlink()
            except (OSError, UnboundLocalError):
                pass


def default_persist_dir() -> Optional[str]:
    """The environment-configured persistence directory, if any."""
    value = os.environ.get(STATS_CACHE_ENV, "").strip()
    return value or None


__all__ = ["STATS_CACHE_ENV", "StatsCache", "stats_cache_key", "default_persist_dir"]
