"""Parallel campaign execution: process pools + a shared stats cache.

:mod:`repro.parallel.cache` provides the content-keyed window-statistics
cache (imported eagerly -- the simulator depends on it); the process-pool
:class:`ParallelExecutor` lives in :mod:`repro.parallel.executor` and is
imported lazily here, because it depends on the experiments layer which
in turn depends on the simulator.
"""

from repro.parallel.cache import (
    STATS_CACHE_ENV,
    StatsCache,
    default_persist_dir,
    stats_cache_key,
)

_LAZY = ("ParallelExecutor", "CellTask", "CellCompletion")


def __getattr__(name):
    if name in _LAZY:
        from repro.parallel import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "STATS_CACHE_ENV",
    "StatsCache",
    "stats_cache_key",
    "default_persist_dir",
    "ParallelExecutor",
    "CellTask",
    "CellCompletion",
]
