"""Process-pool campaign execution engine.

A campaign grid is thousands of independent ``(trace, mapping, scheme,
t_rh)`` cells; this module fans them out over a ``multiprocessing``
worker pool:

* the parent partitions the grid into :class:`CellTask` descriptors --
  names and numbers only, a few hundred bytes each; no trace or
  simulator ever crosses the process boundary;
* each worker rebuilds the campaign once (from its picklable
  constructor payload), then reuses a per-process simulator, trace
  cache, and :class:`~repro.resilience.executor.ResilientExecutor`
  across every cell it is handed -- so each cell still runs inside the
  same fault boundary as a serial sweep;
* with a ``stats_cache_dir``, workers share one disk-persistent,
  content-keyed window-statistics cache, so two workers given the same
  (trace, mapping) analysis reuse rather than recompute it;
* completions stream back to the parent in *completion order*
  (:meth:`ParallelExecutor.stream`), which journals them immediately --
  a killed run resumes from its checkpoint exactly like a serial one --
  while :meth:`ParallelExecutor.run` reassembles the deterministic
  grid ordering for the returned records.

A worker process dying hard (OOM kill, segfault) surfaces as
:class:`concurrent.futures.process.BrokenProcessPool` in the parent
after the already-completed cells were journaled; ``resume_from=`` the
same journal finishes the grid.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

from repro.obs.metrics import diff_snapshots
from repro.obs.runtime import METRICS, TRACER, apply_config, export_config, heartbeat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.campaign import Campaign, MappingSpec


@dataclass(frozen=True)
class CellTask:
    """One grid cell, in shipping form (picklable, tiny).

    ``trace`` is the submitting side's trace context as a compact
    ``"trace_id:span_id"`` token (:meth:`Tracer.current_context`); a
    worker attaches it before executing, so the cell's spans join the
    submitter's trace no matter which process -- or host -- runs it.
    Empty when telemetry is off or the submitter held no span.
    """

    index: int  #: Position in the campaign's deterministic cell order.
    key: str  #: Canonical journal/retry key.
    workload: str
    spec: "MappingSpec"
    scheme: str
    t_rh: int
    trace: str = ""  #: Distributed trace context token ("" = none).


@dataclass(frozen=True)
class CellCompletion:
    """One finished cell, streamed back in completion order.

    ``duration_s``/``worker_id`` feed the checkpoint journal's timing
    metadata; ``telemetry`` carries the cell's metric *delta* snapshot
    back to the parent (None when telemetry is disabled).  All three
    default to their empty values so existing constructors keep working.
    """

    index: int
    key: str
    record: dict
    duration_s: float = 0.0
    worker_id: str = ""
    telemetry: Optional[dict] = None


# ---------------------------------------------------------------------------
# Worker-side state.  One campaign + simulator + fault boundary per
# process, built once by the pool initializer and reused across cells;
# module-level so both fork and spawn start methods find it.  The
# build/run pair below is shared with the campaign *service*'s workers
# (:mod:`repro.service.worker`): both execution substrates run the
# exact same per-cell code path.
# ---------------------------------------------------------------------------
_WORKER: dict = {}


def build_worker_state(
    payload: dict,
    stats_cache_dir: Optional[str] = None,
    obs_config: Optional[dict] = None,
) -> dict:
    """Build the per-process execution state one campaign payload needs.

    Returns ``{"campaign", "sim", "executor"}`` -- a rebuilt
    :class:`Campaign`, the process-wide simulator for its geometry
    (pointed at the shared stats cache when one is configured), and a
    fresh :class:`ResilientExecutor` fault boundary.  Pool workers call
    this once from their initializer; service workers call it lazily
    per distinct campaign payload.
    """
    from repro.experiments.campaign import Campaign
    from repro.experiments.common import get_simulator
    from repro.resilience.executor import ResilientExecutor

    if obs_config is not None:
        # Forked workers inherit the parent's registry contents; spawn
        # starts clean.  Both ship per-cell *deltas* back, so inherited
        # contents never double-count in the parent's merge.
        apply_config(obs_config)
    campaign = Campaign(**payload)
    sim = get_simulator(campaign.config, backend=campaign.backend)
    if stats_cache_dir:
        sim.stats_cache.persist_to(stats_cache_dir)
    return {
        "campaign": campaign,
        "sim": sim,
        "executor": ResilientExecutor(),
    }


def run_cell_task(state: dict, task: CellTask) -> CellCompletion:
    """Run one cell against prebuilt worker state; returns its completion.

    The single dispatchable-cell code path: local pool workers and
    service workers both funnel through here (and through
    :meth:`Campaign.execute_cell` underneath), which is what keeps
    serial, pool, and service runs record-for-record identical.
    """
    campaign = state["campaign"]
    telemetry = METRICS.enabled
    worker_id = state.get("worker_id") or f"p{os.getpid()}"
    if telemetry:
        heartbeat(worker_id)
    before = METRICS.snapshot() if telemetry else None
    started = time.perf_counter()
    # Adopt the submitter's trace context (a no-op for an empty token):
    # the cell's campaign.cell span and everything under it join the
    # submitting process's trace rather than rooting a local one.
    with TRACER.attach(getattr(task, "trace", "")):
        record = campaign.execute_cell(
            state["sim"],
            state["executor"],
            task.workload,
            task.spec,
            task.scheme,
            task.t_rh,
        )
    duration = time.perf_counter() - started
    delta = diff_snapshots(METRICS.snapshot(), before) if telemetry else None
    return CellCompletion(
        index=task.index,
        key=task.key,
        record=record,
        duration_s=duration,
        worker_id=worker_id,
        telemetry=delta,
    )


def _init_worker(
    payload: dict,
    stats_cache_dir: Optional[str],
    obs_config: Optional[dict] = None,
) -> None:
    _WORKER.update(build_worker_state(payload, stats_cache_dir, obs_config))


def _run_task(task: CellTask) -> CellCompletion:
    return run_cell_task(_WORKER, task)


class ParallelExecutor:
    """Dispatches campaign cells to a process pool.

    Args:
        workers: Pool size (capped at the number of pending cells).
        stats_cache_dir: Directory for the shared disk-persistent
            window-statistics cache (None = per-process memory only).
        mp_context: Multiprocessing start method ('fork', 'spawn',
            'forkserver'); None uses the platform default.
    """

    def __init__(
        self,
        workers: int,
        *,
        stats_cache_dir: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.stats_cache_dir = str(stats_cache_dir) if stats_cache_dir else None
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def tasks(self, campaign: "Campaign", *, skip: Iterable[str] = ()) -> List[CellTask]:
        """The grid as dispatchable tasks, minus already-completed keys."""
        skip = set(skip)
        tasks: List[CellTask] = []
        for index, (workload, spec, scheme, t_rh) in enumerate(campaign.cells()):
            key = campaign.cell_key(workload, spec, scheme, t_rh)
            if key in skip:
                continue
            tasks.append(CellTask(index, key, workload, spec, scheme, t_rh))
        return tasks

    def stream(
        self, campaign: "Campaign", *, skip: Iterable[str] = ()
    ) -> Iterator[CellCompletion]:
        """Yield cell completions as workers finish them (unordered).

        The caller owns ordering and journaling; :meth:`run` wraps this
        with both.  Raises ``BrokenProcessPool`` if a worker dies hard --
        after every completion received so far has been yielded.
        """
        pending = self.tasks(campaign, skip=skip)
        if not pending:
            return
        telemetry = METRICS.enabled
        if telemetry:
            # Stamp each task with the caller's trace context so worker
            # cell spans attach under the span driving this stream.
            trace = TRACER.current_context()
            if trace:
                pending = [replace(task, trace=trace) for task in pending]
        context = (
            multiprocessing.get_context(self.mp_context) if self.mp_context else None
        )
        n_workers = min(self.workers, len(pending))
        if telemetry:
            METRICS.set_gauge("parallel.workers", n_workers)
            METRICS.set_gauge("parallel.queue_depth", len(pending))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                campaign.parallel_payload(),
                self.stats_cache_dir,
                export_config() if telemetry else None,
            ),
        ) as pool:
            futures = [pool.submit(_run_task, task) for task in pending]
            done = 0
            for future in as_completed(futures):
                completion = future.result()
                if telemetry:
                    done += 1
                    if completion.telemetry:
                        METRICS.merge(completion.telemetry)
                    METRICS.inc("parallel.completions")
                    METRICS.observe("parallel.cell_seconds", completion.duration_s)
                    METRICS.set_gauge("parallel.queue_depth", len(pending) - done)
                yield completion

    def run(
        self,
        campaign: "Campaign",
        *,
        journal=None,
        resume_from=None,
    ) -> List[dict]:
        """Execute the grid; returns records in deterministic cell order.

        Journal semantics match :meth:`Campaign.run`: completions are
        checkpointed by the parent as they arrive (in completion order;
        resume keys on cells, not order), and ``resume_from`` replays
        finished cells without re-dispatching them.
        """
        checkpoint, completed = campaign._checkpoint(journal, resume_from)
        cells = list(campaign.cells())
        records: List[Optional[dict]] = [None] * len(cells)
        for index, cell in enumerate(cells):
            key = campaign.cell_key(*cell)
            if key in completed:
                records[index] = completed[key]
        for completion in self.stream(campaign, skip=completed):
            records[completion.index] = completion.record
            campaign.cells_executed += 1
            if checkpoint is not None:
                checkpoint.append(
                    completion.key,
                    completion.record,
                    duration_s=completion.duration_s or None,
                    worker_id=completion.worker_id or None,
                )
        return records


__all__ = [
    "CellTask",
    "CellCompletion",
    "ParallelExecutor",
    "build_worker_state",
    "run_cell_task",
]
