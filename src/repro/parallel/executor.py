"""Process-pool campaign execution engine.

A campaign grid is thousands of independent ``(trace, mapping, scheme,
t_rh)`` cells; this module fans them out over a ``multiprocessing``
worker pool:

* the parent partitions the grid into :class:`CellTask` descriptors --
  names and numbers only, a few hundred bytes each; no trace or
  simulator ever crosses the process boundary;
* each worker rebuilds the campaign once (from its picklable
  constructor payload), then reuses a per-process simulator, trace
  cache, and :class:`~repro.resilience.executor.ResilientExecutor`
  across every cell it is handed -- so each cell still runs inside the
  same fault boundary as a serial sweep;
* with a ``stats_cache_dir``, workers share one disk-persistent,
  content-keyed window-statistics cache, so two workers given the same
  (trace, mapping) analysis reuse rather than recompute it;
* completions stream back to the parent in *completion order*
  (:meth:`ParallelExecutor.stream`), which journals them immediately --
  a killed run resumes from its checkpoint exactly like a serial one --
  while :meth:`ParallelExecutor.run` reassembles the deterministic
  grid ordering for the returned records.

A worker process dying hard (OOM kill, segfault) surfaces as
:class:`concurrent.futures.process.BrokenProcessPool` in the parent
after the already-completed cells were journaled; ``resume_from=`` the
same journal finishes the grid.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.campaign import Campaign, MappingSpec


@dataclass(frozen=True)
class CellTask:
    """One grid cell, in shipping form (picklable, tiny)."""

    index: int  #: Position in the campaign's deterministic cell order.
    key: str  #: Canonical journal/retry key.
    workload: str
    spec: "MappingSpec"
    scheme: str
    t_rh: int


@dataclass(frozen=True)
class CellCompletion:
    """One finished cell, streamed back in completion order."""

    index: int
    key: str
    record: dict


# ---------------------------------------------------------------------------
# Worker-side state.  One campaign + simulator + fault boundary per
# process, built once by the pool initializer and reused across cells;
# module-level so both fork and spawn start methods find it.
# ---------------------------------------------------------------------------
_WORKER: dict = {}


def _init_worker(payload: dict, stats_cache_dir: Optional[str]) -> None:
    from repro.experiments.campaign import Campaign
    from repro.experiments.common import get_simulator
    from repro.resilience.executor import ResilientExecutor

    campaign = Campaign(**payload)
    sim = get_simulator(campaign.config)
    if stats_cache_dir:
        sim.stats_cache.persist_to(stats_cache_dir)
    _WORKER["campaign"] = campaign
    _WORKER["sim"] = sim
    _WORKER["executor"] = ResilientExecutor()


def _run_task(task: CellTask) -> CellCompletion:
    campaign = _WORKER["campaign"]
    record = campaign.execute_cell(
        _WORKER["sim"],
        _WORKER["executor"],
        task.workload,
        task.spec,
        task.scheme,
        task.t_rh,
    )
    return CellCompletion(index=task.index, key=task.key, record=record)


class ParallelExecutor:
    """Dispatches campaign cells to a process pool.

    Args:
        workers: Pool size (capped at the number of pending cells).
        stats_cache_dir: Directory for the shared disk-persistent
            window-statistics cache (None = per-process memory only).
        mp_context: Multiprocessing start method ('fork', 'spawn',
            'forkserver'); None uses the platform default.
    """

    def __init__(
        self,
        workers: int,
        *,
        stats_cache_dir: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.stats_cache_dir = str(stats_cache_dir) if stats_cache_dir else None
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def tasks(self, campaign: "Campaign", *, skip: Iterable[str] = ()) -> List[CellTask]:
        """The grid as dispatchable tasks, minus already-completed keys."""
        skip = set(skip)
        tasks: List[CellTask] = []
        for index, (workload, spec, scheme, t_rh) in enumerate(campaign.cells()):
            key = campaign.cell_key(workload, spec, scheme, t_rh)
            if key in skip:
                continue
            tasks.append(CellTask(index, key, workload, spec, scheme, t_rh))
        return tasks

    def stream(
        self, campaign: "Campaign", *, skip: Iterable[str] = ()
    ) -> Iterator[CellCompletion]:
        """Yield cell completions as workers finish them (unordered).

        The caller owns ordering and journaling; :meth:`run` wraps this
        with both.  Raises ``BrokenProcessPool`` if a worker dies hard --
        after every completion received so far has been yielded.
        """
        pending = self.tasks(campaign, skip=skip)
        if not pending:
            return
        context = (
            multiprocessing.get_context(self.mp_context) if self.mp_context else None
        )
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(campaign.parallel_payload(), self.stats_cache_dir),
        ) as pool:
            futures = [pool.submit(_run_task, task) for task in pending]
            for future in as_completed(futures):
                yield future.result()

    def run(
        self,
        campaign: "Campaign",
        *,
        journal=None,
        resume_from=None,
    ) -> List[dict]:
        """Execute the grid; returns records in deterministic cell order.

        Journal semantics match :meth:`Campaign.run`: completions are
        checkpointed by the parent as they arrive (in completion order;
        resume keys on cells, not order), and ``resume_from`` replays
        finished cells without re-dispatching them.
        """
        checkpoint, completed = campaign._checkpoint(journal, resume_from)
        cells = list(campaign.cells())
        records: List[Optional[dict]] = [None] * len(cells)
        for index, cell in enumerate(cells):
            key = campaign.cell_key(*cell)
            if key in completed:
                records[index] = completed[key]
        for completion in self.stream(campaign, skip=completed):
            records[completion.index] = completion.record
            campaign.cells_executed += 1
            if checkpoint is not None:
                checkpoint.append(completion.key, completion.record)
        return records


__all__ = ["CellTask", "CellCompletion", "ParallelExecutor"]
