"""In-DRAM tracker escape probability (the §7.3 DSAC/PAT discussion).

The paper quotes published escape rates for in-DRAM mitigations (DSAC
13.9%, PAT 6.9% between mitigations) to argue that area-limited in-DRAM
tracking cannot eliminate Rowhammer -- motivating the controller-side
secure mitigations Rubix accelerates.  This experiment measures the
escape probability of that tracker class directly, against the
guaranteed trackers the secure schemes use.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.mitigations.indram import InDRAMSamplingTracker, compare_trackers
from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker

THRESHOLD = 64


@register("indram-escape", "Escape probability of in-DRAM trackers", default_scale=1.0)
def run_indram_escape(scale: float = 1.0, workload_limit: int = None) -> ExperimentResult:
    """Escape rate per tracker under a TRRespass-style 16-sided pattern."""
    trials = max(5, int(30 * scale))
    configs = [
        ("ideal per-row (Blockhammer)", lambda: PerRowTracker(THRESHOLD)),
        (
            "Misra-Gries 64 (AQUA/SRS)",
            lambda: MisraGriesTracker(THRESHOLD, num_counters=64),
        ),
        (
            "in-DRAM 4-entry sampler",
            lambda: InDRAMSamplingTracker(
                THRESHOLD, num_entries=4, sample_probability=0.1
            ),
        ),
        (
            "in-DRAM 16-entry sampler (DSAC-like)",
            lambda: InDRAMSamplingTracker(
                THRESHOLD, num_entries=16, sample_probability=0.3
            ),
        ),
    ]
    reports = compare_trackers(
        THRESHOLD,
        [factory for _, factory in configs],
        [label for label, _ in configs],
        aggressors=16,
        trials=trials,
    )
    rows = [
        [report.tracker, round(100 * report.escape_probability, 1)]
        for report in reports
    ]
    return ExperimentResult(
        experiment_id="indram-escape",
        title="Aggressor escape probability (%) under a 16-sided pattern",
        headers=["tracker", "escape_%"],
        rows=rows,
        notes=[
            "published in-DRAM escape rates: DSAC 13.9%, PAT 6.9% (paper §7.3);"
            " guaranteed controller-side trackers escape 0%",
        ],
    )


__all__ = ["run_indram_escape"]
