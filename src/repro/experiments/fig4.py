"""Figure 4: the illustrative hot-row model (stream / stride-64 / random).

Runs the three kernels against the Figure-4 system (4 GB, one bank,
4 KB rows, sequential mapping) both *measured* (through the fast DRAM
analyzer) and *analytic* (the binomial model of Section 4.1), under the
baseline and an encrypted (Rubix-S GS1) mapping.
"""

from __future__ import annotations

from repro.analysis.binomial import illustrative_model
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.dram.fast_model import analyze_trace
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.mapping.linear import LinearMapping
from repro.utils.units import KB
from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel

#: The Figure-4 system: 4 GB, one bank, 1 M rows of 4 KB.
FIG4_CONFIG = DRAMConfig(channels=1, ranks=1, banks=1, rows_per_bank=1 << 20, row_bytes=4 * KB)

HOT_THRESHOLD = 64


def _hot_rows(config: DRAMConfig, mapping, trace) -> int:
    mapped = mapping.translate_trace(trace.lines)
    # The illustrative model uses a plain open-page row buffer.
    stats = analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=None
    )
    return stats.hot_rows(HOT_THRESHOLD)


@register("fig4", "Illustrative model: hot rows under baseline vs encrypted", default_scale=1.0)
def run_fig4(scale: float = 1.0) -> ExperimentResult:
    """Measured and analytic hot-row counts for the three kernels."""
    config = FIG4_CONFIG
    accesses = int(1_000_000 * scale)
    kernels = {
        "stream": stream_kernel(accesses=accesses),
        "stride-64": stride_kernel(accesses=accesses),
        "random": random_kernel(accesses=accesses),
    }
    baseline = LinearMapping(config)
    encrypted = RubixSMapping(config, gang_size=1, seed=0xF164)

    analytic = illustrative_model(accesses=accesses)
    analytic_base = {"stream": "stream", "stride-64": "stride", "random": "random"}

    rows = []
    for name, trace in kernels.items():
        key = analytic_base[name]
        rows.append(
            [
                name,
                _hot_rows(config, baseline, trace),
                _hot_rows(config, encrypted, trace),
                round(analytic.baseline[key], 1),
                round(analytic.encrypted[key], 2),
            ]
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="Hot rows (ACT-64+), 4 MB footprint on the Figure-4 system",
        headers=["kernel", "baseline", "encrypted", "analytic_baseline", "analytic_encrypted"],
        rows=rows,
        notes=[
            "paper: baseline stream/stride/random = 0 / 1K / 1K; encrypted = 0 / 0 / <1",
        ],
    )


__all__ = ["run_fig4", "FIG4_CONFIG"]
