"""Experiment harness: one runner per table/figure of the paper.

Each experiment module registers a runner with
:mod:`repro.experiments.registry`; ``python -m repro.experiments run
<id>`` (or the ``rubix-experiment`` console script) executes it and
prints the same rows/series the paper reports.  See DESIGN.md for the
experiment index.
"""

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import get_experiment, list_experiments, register

# Importing the experiment modules populates the registry.
from repro.experiments import (  # noqa: E402,F401  (registration side effects)
    ablations,
    actdist,
    discussion,
    fig1,
    fig3,
    fig4,
    fig7,
    fig8,
    fig9,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    indram_escape,
    mixes,
    power,
    rowbuffer,
    table2,
    table3,
    table4,
    table5,
    victim_refresh,
)

__all__ = [
    "ExperimentResult",
    "get_simulator",
    "get_trace",
    "make_mapping",
    "register",
    "get_experiment",
    "list_experiments",
]
