"""Figure 8: per-workload performance of secure mitigations at T_RH=128
with Intel mappings and Rubix-S (best gang size per scheme)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128


@register("fig8", "Per-workload normalized performance with Rubix-S", default_scale=0.4)
def run_fig8(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Normalized IPC per (workload, scheme, mapping) at T_RH=128."""
    sim = get_simulator()
    coffee = make_mapping("coffeelake", sim.config)
    sky = make_mapping("skylake", sim.config)
    rubix = {
        scheme: make_mapping("rubix-s", sim.config, gang_size=BEST_GANG_SIZE_S[scheme])
        for scheme in SCHEMES
    }
    rows = []
    averages = {(s, m): [] for s in SCHEMES for m in ("coffeelake", "skylake", "rubix_s")}
    for workload in spec_workloads(workload_limit):
        trace = get_trace(workload, scale=scale)
        for scheme in SCHEMES:
            cl = sim.run(trace, coffee, scheme=scheme, t_rh=T_RH).normalized_performance
            sk = sim.run(trace, sky, scheme=scheme, t_rh=T_RH).normalized_performance
            rx = sim.run(
                trace, rubix[scheme], scheme=scheme, t_rh=T_RH
            ).normalized_performance
            rows.append([workload, scheme, round(cl, 3), round(sk, 3), round(rx, 3)])
            averages[(scheme, "coffeelake")].append(cl)
            averages[(scheme, "skylake")].append(sk)
            averages[(scheme, "rubix_s")].append(rx)
    for scheme in SCHEMES:
        rows.append(
            [
                "average",
                scheme,
                round(average(averages[(scheme, "coffeelake")]), 3),
                round(average(averages[(scheme, "skylake")]), 3),
                round(average(averages[(scheme, "rubix_s")]), 3),
            ]
        )
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Normalized performance at T_RH={T_RH} (Rubix-S best GS per scheme)",
        headers=["workload", "scheme", "coffeelake", "skylake", "rubix_s"],
        rows=rows,
        notes=[
            "paper average slowdowns: AQUA 15%->1.1%, SRS 60%->3.1%, Blockhammer 600%->2.9%",
            "Rubix-S gang sizes: AQUA/SRS GS4, Blockhammer GS1",
        ],
    )


__all__ = ["run_fig8", "SCHEMES", "T_RH"]
