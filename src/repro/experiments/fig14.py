"""Figure 14: Rubix slowdown at higher Rowhammer thresholds."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_D,
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

THRESHOLDS = [128, 512, 1024]
SCHEMES = ["aqua", "srs", "blockhammer"]


@register("fig14", "Rubix slowdown at higher thresholds", default_scale=0.4)
def run_fig14(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Average slowdown of Rubix-S/D per scheme at T_RH 128/512/1024."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for scheme in SCHEMES:
        for flavor, best in (("rubix-s", BEST_GANG_SIZE_S), ("rubix-d", BEST_GANG_SIZE_D)):
            mapping = make_mapping(flavor, sim.config, gang_size=best[scheme])
            row: list = [scheme, flavor]
            for t_rh in THRESHOLDS:
                slowdowns = []
                for workload in names:
                    trace = get_trace(workload, scale=scale)
                    result = sim.run(trace, mapping, scheme=scheme, t_rh=t_rh)
                    slowdowns.append(result.slowdown_pct)
                row.append(round(average(slowdowns), 2))
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig14",
        title="Slowdown (%) of Rubix with secure mitigations vs T_RH",
        headers=["scheme", "flavor", "t_rh=128_%", "t_rh=512_%", "t_rh=1024_%"],
        rows=rows,
        notes=["paper: less than 2% at T_RH=1K for all schemes (1.1%-1.4%)"],
    )


__all__ = ["run_fig14", "THRESHOLDS"]
