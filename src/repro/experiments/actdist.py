"""Activation-distribution experiment (analysis beyond the paper's bars).

Shows the *whole* per-row activation distribution shift that Figure 7's
hot-row counts summarize: under Rubix the p99.9 row drops from hundreds
of activations to a few tens, and the top-1% share of activations
collapses.
"""

from __future__ import annotations

from repro.analysis.distribution import activation_distribution, compare_distributions
from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import register

#: The distribution view is most instructive on the heavy workloads.
ACTDIST_WORKLOADS = ["blender", "lbm", "gcc", "mcf"]


@register("actdist", "Per-row activation distribution by mapping", default_scale=0.3)
def run_actdist(scale: float = 0.3, workload_limit: int = None) -> ExperimentResult:
    """Percentiles and concentration of per-row activations."""
    sim = get_simulator()
    names = ACTDIST_WORKLOADS[:workload_limit] if workload_limit else ACTDIST_WORKLOADS
    mappings = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "rubix-s-gs4": make_mapping("rubix-s", sim.config, gang_size=4),
        "rubix-s-gs1": make_mapping("rubix-s", sim.config, gang_size=1),
    }
    rows = []
    for workload in names:
        trace = get_trace(workload, scale=scale)
        labels = []
        dists = []
        for label, mapping in mappings.items():
            stats, _ = sim.window_stats(trace, mapping)
            labels.append(f"{workload}/{label}")
            dists.append(activation_distribution(stats))
        rows.extend(compare_distributions(labels, dists))
    return ExperimentResult(
        experiment_id="actdist",
        title="Per-row activation distribution (64 ms window)",
        headers=["config", "rows", "p50", "p99", "p99.9", "max", "top1pct_share"],
        rows=rows,
        notes=[
            "randomization flattens the tail: the p99.9 row and the top-1%"
            " activation share collapse, which is exactly why mitigation"
            " invocations vanish",
        ],
    )


__all__ = ["run_actdist", "ACTDIST_WORKLOADS"]
