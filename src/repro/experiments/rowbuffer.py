"""Section 4.8: row-buffer hit rates of baseline and Rubix mappings."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register


@register("sec48", "Row-buffer hit rate by mapping", default_scale=0.4)
def run_sec48(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Average row-buffer hit rate and relative activation count."""
    sim = get_simulator()
    mappings = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "skylake": make_mapping("skylake", sim.config),
        "rubix-s-gs1": make_mapping("rubix-s", sim.config, gang_size=1),
        "rubix-s-gs2": make_mapping("rubix-s", sim.config, gang_size=2),
        "rubix-s-gs4": make_mapping("rubix-s", sim.config, gang_size=4),
    }
    hit_rates = {name: [] for name in mappings}
    activations = {name: 0 for name in mappings}
    for workload in spec_workloads(workload_limit):
        trace = get_trace(workload, scale=scale)
        for name, mapping in mappings.items():
            stats, _ = sim.window_stats(trace, mapping)
            hit_rates[name].append(stats.hit_rate)
            activations[name] += stats.n_activations
    base_acts = activations["coffeelake"] or 1
    rows = [
        [
            name,
            round(100 * average(hit_rates[name]), 1),
            round(activations[name] / base_acts, 2),
        ]
        for name in mappings
    ]
    return ExperimentResult(
        experiment_id="sec48",
        title="Row-buffer hit rate and activations relative to Coffee Lake",
        headers=["mapping", "hit_rate_%", "rel_activations"],
        rows=rows,
        notes=[
            "paper: Coffee Lake 55%, Skylake 63%; Rubix-S 0% (GS1), 19% (GS2), 31% (GS4);"
            " up to 2.7x activations at GS1",
        ],
    )


__all__ = ["run_sec48"]
