"""Table 4: isolated overhead of the Rubix mappings (no mitigation)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

GANG_SIZES = [4, 2, 1]


@register("table4", "Isolated mapping overhead of Rubix", default_scale=0.4)
def run_table4(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Slowdown of Rubix-S/D without any mitigative action."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for gs in GANG_SIZES:
        row: list = [f"GS{gs}"]
        for kind in ("rubix-s", "rubix-d"):
            mapping = make_mapping(kind, sim.config, gang_size=gs)
            slowdowns = []
            for workload in names:
                trace = get_trace(workload, scale=scale)
                result = sim.run(trace, mapping, scheme="none")
                slowdowns.append(result.slowdown_pct)
            row.append(round(average(slowdowns), 2))
        rows.append(row)
    return ExperimentResult(
        experiment_id="table4",
        title="Isolated slowdown (%) of Rubix mappings, no mitigation",
        headers=["gang_size", "rubix_s_%", "rubix_d_%"],
        rows=rows,
        notes=[
            "paper: GS4 1.0/1.3, GS2 1.6/1.9, GS1 2.6/2.7 (percent, S/D)",
        ],
    )


__all__ = ["run_table4", "GANG_SIZES"]
