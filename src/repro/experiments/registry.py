"""Experiment registry: id -> runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class ExperimentEntry:
    """A registered experiment."""

    experiment_id: str
    title: str
    runner: Callable
    default_scale: float


_REGISTRY: Dict[str, ExperimentEntry] = {}


def register(experiment_id: str, title: str, *, default_scale: float = 0.5):
    """Decorator registering an experiment runner.

    The runner signature is ``runner(scale: float, **kwargs) ->
    ExperimentResult``.
    """

    def decorator(func: Callable) -> Callable:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id '{experiment_id}'")
        _REGISTRY[experiment_id] = ExperimentEntry(
            experiment_id=experiment_id,
            title=title,
            runner=func,
            default_scale=default_scale,
        )
        return func

    return decorator


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment '{experiment_id}'; known: {known}") from None


def list_experiments() -> List[ExperimentEntry]:
    """All registered experiments, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


__all__ = ["ExperimentEntry", "register", "get_experiment", "list_experiments"]
