"""Section 7.3's closing observation: Rubix also helps victim refresh.

Existing deployed mitigations (TRR) are victim-focused and insecure
against Half-Double, but they still pay per-aggressor costs: every
tracked hot row triggers neighbour refreshes.  Because Rubix removes the
hot rows themselves, it slashes the number of victim refreshes too --
"eliminating the root cause of overheads" as the paper puts it.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

T_RH = 128


@register("sec73", "Victim-refresh load with and without Rubix", default_scale=0.4)
def run_sec73(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """TRR mitigation invocations per window, Intel mappings vs Rubix."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    mappings = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "skylake": make_mapping("skylake", sim.config),
        "rubix-s-gs4": make_mapping("rubix-s", sim.config, gang_size=4),
        "rubix-d-gs4": make_mapping("rubix-d", sim.config, gang_size=4),
    }
    rows = []
    totals = {}
    for label, mapping in mappings.items():
        refreshes = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            result = sim.run(trace, mapping, scheme="trr", t_rh=T_RH)
            refreshes += result.mitigations
        totals[label] = refreshes
        rows.append([label, refreshes, refreshes // len(names)])
    base = totals["coffeelake"]
    reduction = base / max(1, totals["rubix-s-gs4"])
    return ExperimentResult(
        experiment_id="sec73",
        title=f"TRR victim-refresh invocations at T_RH={T_RH}",
        headers=["mapping", "total_invocations", "mean_per_workload"],
        rows=rows,
        notes=[
            f"Rubix-S cuts victim-refresh work {reduction:.0f}x -- the paper's"
            " point that randomized mapping helps existing mitigations too"
            " (it does NOT make TRR secure: Half-Double still breaks it)",
        ],
    )


__all__ = ["run_sec73"]
