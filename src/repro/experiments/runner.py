"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig7 [--scale 0.5] [--workloads 6]
    python -m repro.experiments run all [--scale 0.25] [--workers 4]
    python -m repro.experiments report --telemetry runs/today
    python -m repro.experiments trace --telemetry runs/today

``--workers N`` fans the selected experiments out over a process pool;
``--stats-cache DIR`` points every process (and every later run) at one
shared on-disk window-statistics cache so they reuse instead of
recompute each (trace, mapping) analysis.

``--telemetry-dir DIR`` enables the telemetry layer for the run: a
``manifest.json`` with full provenance, metric snapshots (JSONL and
Prometheus text), and per-process span/log event streams land in DIR;
``report --telemetry DIR`` renders them as a human summary afterwards.
``--verbose``/``--quiet`` adjust console logging; ``--log-json PATH``
mirrors every log record (console-visible or not) to a JSONL file.
Default console output is unchanged by any of this.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.registry import get_experiment, list_experiments
from repro.obs import runtime as obs_runtime
from repro.obs.logs import QUIET, VERBOSE
from repro.obs.manifest import RunManifest
from repro.obs.metrics import diff_snapshots
from repro.obs.runtime import METRICS, TRACER, get_logger
from repro.parallel.cache import STATS_CACHE_ENV
from repro.resilience.journal import CheckpointJournal

log = get_logger("runner")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rubix-experiment",
        description="Reproduce the tables and figures of the Rubix paper (ASPLOS 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    inspect_cmd = sub.add_parser(
        "inspect", help="inspect one workload under one mapping"
    )
    inspect_cmd.add_argument("workload", help="workload name (e.g. gcc, mix3, stream-copy)")
    inspect_cmd.add_argument(
        "--mapping",
        default="coffeelake",
        help="mapping short name (coffeelake, skylake, mop, stride, linear,"
        " rubix-s, rubix-d, keyed-xor)",
    )
    inspect_cmd.add_argument("--gang-size", type=int, default=4)
    inspect_cmd.add_argument("--scale", type=float, default=0.2)
    inspect_cmd.add_argument("--t-rh", type=int, default=128)
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor in (0,1]; defaults to the experiment's own",
    )
    run.add_argument(
        "--workloads",
        type=int,
        default=None,
        help="limit the number of workloads (quick runs)",
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="render the first numeric column as ASCII bars",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write results as JSON (one file per experiment, or a"
        " single file for one experiment)",
    )
    run.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint journal: record each completed experiment"
        " so an interrupted 'run all' can be resumed",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed in --journal instead of"
        " starting the journal over",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the selected experiments over a process pool of this"
        " size (1 = in-process, the default)",
    )
    run.add_argument(
        "--stats-cache",
        metavar="DIR",
        default=None,
        help="directory for a persistent window-statistics cache shared"
        " across workers and runs (sets the REPRO_STATS_CACHE"
        " environment variable)",
    )
    verbosity = run.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="also print debug-level status records to the console",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress console status output (warnings/errors still print)",
    )
    run.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="mirror every structured log record to this JSONL file"
        " (independent of console verbosity)",
    )
    run.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="enable telemetry and write run artifacts (manifest.json,"
        " metrics.jsonl, metrics.prom, events-*.jsonl) to DIR; sets the"
        " REPRO_TELEMETRY_DIR environment variable so pool workers"
        " inherit it",
    )
    run.add_argument(
        "--serve-metrics",
        metavar="PORT",
        type=int,
        default=None,
        help="expose live GET /metrics, /healthz and /status on"
        " 127.0.0.1:PORT for the duration of the run (pair with"
        " --telemetry-dir for non-empty metrics)",
    )
    playbook_cmd = sub.add_parser(
        "playbook", help="compile a declarative attack playbook and inspect its trace"
    )
    playbook_cmd.add_argument(
        "spec", help="playbook spec file (JSON, or TOML with a .toml suffix)"
    )
    playbook_cmd.add_argument(
        "--mapping",
        default=None,
        help="override the spec's target_mapping (construction mapping)",
    )
    playbook_cmd.add_argument("--gang-size", type=int, default=4)
    playbook_cmd.add_argument("--scale", type=float, default=1.0)
    playbook_cmd.add_argument(
        "--top", type=int, default=8, help="hottest rows to list (default 8)"
    )
    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="sweep a playbook parameter grid and bisect to the minimal hot pattern",
    )
    fuzz_cmd.add_argument(
        "spec",
        help='sweep file holding {"base": <playbook spec>, "sweep": {axis: range}}'
        " (JSON, or TOML with a .toml suffix)",
    )
    fuzz_cmd.add_argument(
        "--mapping",
        default="coffeelake",
        help="mapping the cells are evaluated under (construction mapping"
        " comes from the base spec's target_mapping)",
    )
    fuzz_cmd.add_argument("--gang-size", type=int, default=4)
    fuzz_cmd.add_argument("--scheme", default="none")
    fuzz_cmd.add_argument("--t-rh", type=int, default=128)
    fuzz_cmd.add_argument(
        "--metric",
        default="hot_rows_64",
        choices=["hot_rows_64", "hot_rows_512"],
        help="record field that measures row pressure",
    )
    fuzz_cmd.add_argument("--min-hot-rows", type=int, default=1)
    fuzz_cmd.add_argument(
        "--max-cells",
        type=int,
        default=0,
        help="seeded subsample cap on evaluated grid cells (0 = no cap)",
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.add_argument("--workers", type=int, default=1)
    fuzz_cmd.add_argument("--stats-cache", metavar="DIR", default=None)
    fuzz_cmd.add_argument(
        "--json", metavar="PATH", default=None, help="write the full result as JSON"
    )
    report = sub.add_parser(
        "report", help="summarize a finished run's telemetry artifacts"
    )
    report.add_argument(
        "--telemetry",
        metavar="DIR",
        required=True,
        help="telemetry directory a previous run wrote (--telemetry-dir)",
    )
    trace_cmd = sub.add_parser(
        "trace",
        help="reassemble distributed trace trees from telemetry events",
    )
    trace_cmd.add_argument(
        "--telemetry",
        metavar="DIR",
        required=True,
        help="telemetry directory holding the run's events-*.jsonl files",
    )
    trace_cmd.add_argument(
        "--trace-id",
        default=None,
        help="render only this trace id (default: every trace, oldest first)",
    )
    submit = sub.add_parser(
        "submit",
        help="validate a campaign spec and queue it for the next 'serve'",
    )
    submit.add_argument("spec", help="campaign spec JSON file (see docs/SERVICE.md)")
    submit.add_argument(
        "--spool",
        metavar="DIR",
        default="runs/service-spool",
        help="spool directory 'serve' drains (default: runs/service-spool)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant campaign service over submitted specs",
    )
    serve.add_argument(
        "specs",
        nargs="*",
        help="campaign spec JSON files to submit directly (besides --spool)",
    )
    serve.add_argument(
        "--spool",
        metavar="DIR",
        default=None,
        help="also drain every spec previously queued with 'submit' here",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker-process pool size"
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=5.0,
        help="heartbeat deadline in seconds before a cell is re-dispatched",
    )
    serve.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="durable commit log; an existing journal resumes without"
        " recomputing committed cells",
    )
    serve.add_argument(
        "--no-resume",
        action="store_true",
        help="start the --journal over instead of resuming it",
    )
    serve.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="write each submission's records to DIR/<tenant>.json",
    )
    serve.add_argument(
        "--stats-cache",
        metavar="DIR",
        default=None,
        help="shared window-statistics cache directory for service workers"
        " (sets REPRO_STATS_CACHE)",
    )
    serve.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="enable telemetry; run artifacts (manifest.json with worker"
        " identities, metrics, events) land in DIR",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="enable the chaos harness with this seed (testing only):"
        " injects seeded worker kills, hangs, and duplicate completions",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="distributed mode: accept TCP socket workers here instead of"
        " spawning a local pool ('repro-run work --connect HOST:PORT');"
        " --workers becomes the degraded-mode local pool size",
    )
    serve.add_argument(
        "--fallback-deadline",
        type=float,
        default=5.0,
        help="with --listen: seconds to wait for workers before degrading"
        " to a local pool so the campaign still completes",
    )
    serve.add_argument(
        "--serve-metrics",
        metavar="PORT",
        type=int,
        default=None,
        help="expose the scheduler's live GET /metrics, /healthz and"
        " /status on 127.0.0.1:PORT while the service runs",
    )
    serve_verbosity = serve.add_mutually_exclusive_group()
    serve_verbosity.add_argument("--verbose", action="store_true")
    serve_verbosity.add_argument("--quiet", action="store_true")
    serve.add_argument("--log-json", metavar="PATH", default=None)
    work = sub.add_parser(
        "work",
        help="run socket worker processes against a 'serve --listen' scheduler",
    )
    work.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="scheduler listen address to dial",
    )
    work.add_argument(
        "--workers", type=int, default=1, help="worker processes to run"
    )
    work.add_argument(
        "--name",
        default=None,
        help="stable worker-name prefix (default: the hostname)",
    )
    work.add_argument(
        "--stats-cache",
        metavar="DIR",
        default=None,
        help="shared window-statistics cache directory (sets"
        " REPRO_STATS_CACHE for the workers)",
    )
    work.add_argument(
        "--max-reconnects",
        type=int,
        default=8,
        help="reconnect attempts (exponential backoff) before giving up",
    )
    work_verbosity = work.add_mutually_exclusive_group()
    work_verbosity.add_argument("--verbose", action="store_true")
    work_verbosity.add_argument("--quiet", action="store_true")
    work.add_argument("--log-json", metavar="PATH", default=None)
    return parser


def run_experiment(
    experiment_id: str, scale: Optional[float] = None, workload_limit: Optional[int] = None
):
    """Run one experiment and return its ExperimentResult.

    ``workload_limit`` is forwarded only to runners that accept it (the
    data-only experiments like fig1a take no workload arguments).
    """
    import inspect

    entry = get_experiment(experiment_id)
    kwargs = {}
    if workload_limit is not None:
        parameters = inspect.signature(entry.runner).parameters
        if "workload_limit" in parameters:
            kwargs["workload_limit"] = workload_limit
    return entry.runner(scale=scale if scale is not None else entry.default_scale, **kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for entry in list_experiments():
            print(f"{entry.experiment_id:10s} {entry.title}")
        return 0

    if args.command == "inspect":
        return _inspect(args)

    if args.command == "playbook":
        return _playbook(args)

    if args.command == "fuzz":
        return _fuzz(args)

    if args.command == "report":
        return _report(args)

    if args.command == "trace":
        return _trace(args)

    if args.command == "submit":
        return _submit(args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "work":
        return _work(args)

    targets = (
        [e.experiment_id for e in list_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    if args.resume and not args.journal:
        log.error("args.invalid", message="--resume requires --journal PATH")
        return 2
    known = {entry.experiment_id for entry in list_experiments()}
    for experiment_id in targets:
        if experiment_id not in known:
            # Validate before journal.reset() below: a typo'd id must not
            # wipe an existing checkpoint journal.
            log.error(
                "args.invalid",
                message=f"unknown experiment '{experiment_id}';"
                f" known: {', '.join(sorted(known))}",
                experiment=experiment_id,
            )
            return 2
    if args.workers < 1:
        log.error("args.invalid", message="--workers must be >= 1")
        return 2
    if args.stats_cache:
        # Environment, not an argument: pool workers (fork or spawn)
        # inherit it, and get_simulator() picks it up lazily.
        os.environ[STATS_CACHE_ENV] = args.stats_cache
    manifest = _configure_telemetry(args, targets)
    endpoint = _maybe_serve_metrics(args)
    journal = CheckpointJournal(args.journal) if args.journal else None
    if journal is not None and not args.resume:
        journal.reset()
    completed = journal.completed_keys() if journal is not None else set()
    for experiment_id in targets:
        if experiment_id in completed:
            log.info(
                "experiment.skipped",
                message=f"[{experiment_id} already completed; skipped (resume)]",
                experiment=experiment_id,
            )
    pending = [eid for eid in targets if eid not in completed]

    failures = []
    try:
        for experiment_id, result, error, elapsed in _run_pending(pending, args):
            ok = _emit_result(
                args, experiment_id, result, error, elapsed, journal,
                multi=len(targets) > 1,
            )
            if not ok:
                failures.append(experiment_id)
    finally:
        if endpoint is not None:
            endpoint.close()
    if manifest is not None:
        written = obs_runtime.write_telemetry(manifest=manifest)
        log.info(
            "telemetry.written",
            message=f"[telemetry written to {obs_runtime.telemetry_dir()}]",
            artifacts=sorted(str(path) for path in written.values()),
        )
    if failures:
        log.error(
            "run.failures",
            message=f"[{len(failures)} experiment(s) failed: {', '.join(failures)}]",
            failed=failures,
        )
        return 1
    return 0


def _configure_telemetry(args, targets: List[str]) -> Optional[RunManifest]:
    """Apply the run's logging/telemetry flags; returns the manifest, if any.

    The telemetry directory travels through ``REPRO_TELEMETRY_DIR`` so
    pool workers -- fork or spawn -- configure themselves at import, the
    same pattern ``REPRO_STATS_CACHE`` uses.
    """
    verbosity = VERBOSE if args.verbose else (QUIET if args.quiet else None)
    if args.telemetry_dir:
        os.environ[obs_runtime.TELEMETRY_DIR_ENV] = args.telemetry_dir
    obs_runtime.configure(
        enabled=obs_runtime.enabled() or bool(args.telemetry_dir),
        telemetry_dir=args.telemetry_dir,
        verbosity=verbosity,
        log_json=args.log_json,
    )
    if not args.telemetry_dir:
        return None
    return RunManifest.create(
        "experiments.run",
        config={
            "experiments": targets,
            "scale": args.scale,
            "workload_limit": args.workloads,
            "workers": args.workers,
            "stats_cache": args.stats_cache,
        },
    )


def _maybe_serve_metrics(args):
    """Start a live /metrics endpoint for this run, when asked to.

    Plain ``run`` mode has no scheduler to publish rich status, so the
    endpoint serves the process's metrics snapshot plus a minimal status
    document; the caller closes it when the run finishes.
    """
    port = getattr(args, "serve_metrics", None)
    if not port:
        return None
    from repro.obs.live import LiveEndpoint

    endpoint = LiveEndpoint(
        f"127.0.0.1:{port}",
        status_provider=lambda: {
            "command": "run",
            "pid": os.getpid(),
            "telemetry_enabled": METRICS.enabled,
        },
    )
    endpoint.start()
    log.info(
        "obs.endpoint_started",
        message=f"[live endpoint serving http://{endpoint.address}/metrics]",
        address=endpoint.address,
    )
    return endpoint


def _trace(args) -> int:
    """Render the distributed trace trees a telemetry dir holds."""
    from repro.obs.assemble import assemble_traces, render_trace

    try:
        trees = assemble_traces(args.telemetry)
    except OSError as error:
        log.error("trace.failed", message=str(error))
        return 2
    if args.trace_id:
        trees = [tree for tree in trees if tree.trace_id == args.trace_id]
        if not trees:
            print(f"no trace {args.trace_id} in {args.telemetry}", file=sys.stderr)
            return 1
    if not trees:
        print(f"no trace-context spans found in {args.telemetry}")
        return 0
    for index, tree in enumerate(trees):
        if index:
            print()
        print(render_trace(tree))
    return 0


def _load_spec(path) -> Tuple[dict, "object"]:
    """Parse + validate one campaign spec file -> (spec dict, Campaign)."""
    import json
    from pathlib import Path

    from repro.experiments.campaign import campaign_from_spec

    spec = json.loads(Path(path).read_text())
    return spec, campaign_from_spec(spec)


def _submit(args) -> int:
    """Queue one validated campaign spec into the serve spool."""
    import hashlib
    import json
    import shutil
    from pathlib import Path

    try:
        spec, campaign = _load_spec(args.spec)
    except (OSError, ValueError, KeyError) as error:
        log.error("submit.invalid", message=f"[bad spec {args.spec}: {error}]")
        return 2
    spool = Path(args.spool)
    spool.mkdir(parents=True, exist_ok=True)
    # Content-addressed name: re-submitting the same spec is idempotent.
    digest = hashlib.blake2b(
        json.dumps(spec, sort_keys=True).encode(), digest_size=8
    ).hexdigest()
    target = spool / f"{digest}.json"
    already = target.exists()
    if not already:
        shutil.copyfile(args.spec, target)
    log.info(
        "submit.queued",
        message=f"[{'already queued' if already else 'queued'} {target.name}:"
        f" {campaign.size()} cells, tenant {spec.get('tenant', 'default')}]",
        path=str(target),
        cells=campaign.size(),
    )
    return 0


def _serve(args) -> int:
    """Drain submitted campaign specs through one CampaignService."""
    import json
    from pathlib import Path

    from repro.errors import ServiceSaturated, ServiceStopped
    from repro.service import ChaosSpec, ServiceConfig, run_service

    spec_paths = [Path(p) for p in args.specs]
    if args.spool:
        spec_paths.extend(sorted(Path(args.spool).glob("*.json")))
    if not spec_paths:
        log.error(
            "serve.no_specs",
            message="[nothing to serve: pass spec files or --spool DIR]",
        )
        return 2
    campaigns, tenants = [], []
    for index, path in enumerate(spec_paths):
        try:
            spec, campaign = _load_spec(path)
        except (OSError, ValueError, KeyError) as error:
            log.error("serve.invalid_spec", message=f"[bad spec {path}: {error}]")
            return 2
        campaigns.append(campaign)
        tenants.append(str(spec.get("tenant", f"tenant{index}")))
    if args.stats_cache:
        os.environ[STATS_CACHE_ENV] = args.stats_cache
    manifest = _configure_serve_telemetry(args, [str(p) for p in spec_paths], tenants)
    chaos = ChaosSpec(
        seed=args.chaos_seed,
        kill_before_frac=0.1,
        kill_after_frac=0.05,
        hang_frac=0.05,
        hang_s=2 * args.lease_timeout,
        duplicate_frac=0.1,
        reorder_every=5,
    ) if args.chaos_seed is not None else None
    config = ServiceConfig(
        workers=args.workers,
        lease_timeout_s=args.lease_timeout,
        stats_cache_dir=args.stats_cache,
        listen=args.listen,
        local_fallback_deadline_s=args.fallback_deadline,
        status_listen=(
            f"127.0.0.1:{args.serve_metrics}" if args.serve_metrics else None
        ),
    )
    started = time.perf_counter()
    try:
        results = run_service(
            campaigns,
            config=config,
            journal=args.journal,
            chaos=chaos,
            manifest=manifest,
            resume=not args.no_resume,
            tenants=tenants,
        )
    except (ServiceSaturated, ServiceStopped) as error:
        log.error("serve.failed", message=f"[service failed: {error}]")
        return 1
    elapsed = time.perf_counter() - started
    failures = 0
    for tenant, records in zip(tenants, results):
        errors = sum(1 for r in records if r.get("status") == "error")
        failures += errors
        log.info(
            "serve.finished",
            message=f"[{tenant}: {len(records)} cells"
            + (f", {errors} errors" if errors else "")
            + "]",
            tenant=tenant,
            cells=len(records),
            errors=errors,
        )
        if args.json:
            out = Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{tenant}.json").write_text(json.dumps(records, indent=2) + "\n")
    log.info(
        "serve.done",
        message=f"[served {len(campaigns)} submission(s) in {elapsed:.1f}s]",
        submissions=len(campaigns),
        elapsed_s=round(elapsed, 3),
    )
    if manifest is not None:
        written = obs_runtime.write_telemetry(manifest=manifest)
        log.info(
            "telemetry.written",
            message=f"[telemetry written to {obs_runtime.telemetry_dir()}]",
            artifacts=sorted(str(path) for path in written.values()),
        )
    return 1 if failures else 0


def _configure_serve_telemetry(
    args, specs: List[str], tenants: List[str]
) -> Optional[RunManifest]:
    """Serve-mode telemetry config; mirrors :func:`_configure_telemetry`."""
    verbosity = VERBOSE if args.verbose else (QUIET if args.quiet else None)
    if args.telemetry_dir:
        os.environ[obs_runtime.TELEMETRY_DIR_ENV] = args.telemetry_dir
    obs_runtime.configure(
        enabled=obs_runtime.enabled() or bool(args.telemetry_dir),
        telemetry_dir=args.telemetry_dir,
        verbosity=verbosity,
        log_json=args.log_json,
    )
    if not args.telemetry_dir:
        return None
    return RunManifest.create(
        "experiments.serve",
        config={
            "specs": specs,
            "tenants": tenants,
            "workers": args.workers,
            "lease_timeout_s": args.lease_timeout,
            "journal": args.journal,
            "chaos_seed": args.chaos_seed,
            "stats_cache": args.stats_cache,
            "listen": args.listen,
        },
    )


def _work(args) -> int:
    """Run socket worker processes against a listening scheduler."""
    import socket as socket_mod

    from repro.service import run_net_worker, spawn_net_workers
    from repro.service.transport import parse_address

    try:
        parse_address(args.connect)
    except ValueError as error:
        log.error("work.invalid_address", message=f"[{error}]")
        return 2
    if args.workers < 1:
        log.error("work.invalid_workers", message="[--workers must be >= 1]")
        return 2
    verbosity = VERBOSE if args.verbose else (QUIET if args.quiet else None)
    obs_runtime.configure(
        enabled=obs_runtime.enabled(),
        verbosity=verbosity,
        log_json=args.log_json,
    )
    if args.stats_cache:
        os.environ[STATS_CACHE_ENV] = args.stats_cache
    prefix = args.name or socket_mod.gethostname().split(".")[0]
    log.info(
        "work.starting",
        message=f"[dialing {args.connect} with {args.workers} worker(s)"
        f" as '{prefix}*']",
        connect=args.connect,
        workers=args.workers,
    )
    if args.workers == 1:
        # Single worker runs in-process: simpler signals, visible logs.
        cells = run_net_worker(
            args.connect,
            name=f"{prefix}0",
            stats_cache_dir=args.stats_cache,
            max_reconnects=args.max_reconnects,
        )
        log.info(
            "work.done",
            message=f"[{prefix}0 exited after {cells} cell(s)]",
            cells=cells,
        )
        return 0
    processes = spawn_net_workers(
        args.connect,
        args.workers,
        name_prefix=prefix,
        stats_cache_dir=args.stats_cache,
        obs_config=obs_runtime.export_config(),
        max_reconnects=args.max_reconnects,
    )
    exit_code = 0
    for process in processes:
        process.join()
        if process.exitcode not in (0, None):
            exit_code = 1
    log.info("work.done", message=f"[{len(processes)} worker(s) exited]")
    return exit_code


def _report(args) -> int:
    """Render a finished run's telemetry artifacts as a human summary."""
    from repro.obs.summary import summarize_dir

    try:
        print(summarize_dir(args.telemetry))
    except (OSError, ValueError) as error:
        log.error("report.failed", message=str(error))
        return 2
    return 0


def _experiment_task(
    task: Tuple[str, Optional[float], Optional[int]], ship_telemetry: bool = False
):
    """Run one experiment; shipping-safe result (used from pool workers).

    Returns ``(id, result, error, elapsed, telemetry)`` where
    ``telemetry`` is this experiment's metric *delta* snapshot when
    ``ship_telemetry`` is set (pool mode: the parent merges it), else
    None (serial mode: the in-process registry already has it).
    Timing is monotonic (``perf_counter``), so a wall-clock adjustment
    mid-run cannot skew the reported elapsed time.
    """
    experiment_id, scale, workload_limit = task
    telemetry = ship_telemetry and METRICS.enabled
    before = METRICS.snapshot() if telemetry else None
    started = time.perf_counter()
    try:
        with TRACER.span("runner.experiment", experiment=experiment_id):
            result = run_experiment(experiment_id, scale, workload_limit)
        METRICS.inc("runner.experiments", status="ok")
        error = None
    except Exception as exc:
        # One broken experiment must not abort the suite: carry the
        # (typed) failure back as text -- exceptions from a worker may
        # not unpickle -- so the parent reports it and keeps sweeping.
        METRICS.inc("runner.experiments", status="error")
        result, error = None, f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - started
    delta = diff_snapshots(METRICS.snapshot(), before) if telemetry else None
    return experiment_id, result, error, elapsed, delta


def _run_pending(pending: List[str], args):
    """Yield (id, result, error, elapsed) in deterministic target order.

    Serial mode yields each experiment as it runs; parallel mode
    dispatches them all to a process pool and yields the deterministic
    prefix as soon as it completes, so output order never depends on
    worker timing.  Pool workers ship their metric deltas back with each
    outcome; merging them here is what makes the final snapshot (and the
    manifest) identical between serial and parallel runs of one suite.
    """
    tasks = [(eid, args.scale, args.workloads) for eid in pending]
    if args.workers == 1 or len(pending) <= 1:
        for task in tasks:
            yield _experiment_task(task)[:4]
        return
    from concurrent.futures import ProcessPoolExecutor, as_completed

    done = {}
    cursor = 0
    with ProcessPoolExecutor(max_workers=min(args.workers, len(pending))) as pool:
        futures = {pool.submit(_experiment_task, task, True): task[0] for task in tasks}
        for future in as_completed(futures):
            outcome = future.result()
            if outcome[4]:
                METRICS.merge(outcome[4])
            done[outcome[0]] = outcome[:4]
            while cursor < len(pending) and pending[cursor] in done:
                yield done.pop(pending[cursor])
                cursor += 1


def _emit_result(args, experiment_id, result, error, elapsed, journal, *, multi) -> bool:
    """Print/journal one experiment outcome; returns False on failure."""
    if error is not None:
        log.error(
            "experiment.failed",
            message=f"[{experiment_id} failed: {error}]",
            experiment=experiment_id,
            error=error,
            elapsed_s=round(elapsed, 3),
        )
        return False
    log.info("experiment.result", message=result.format(), experiment=experiment_id)
    if args.chart:
        from repro.experiments.charts import render_bars

        try:
            log.info("experiment.chart", message=render_bars(result), experiment=experiment_id)
        except ValueError as chart_error:
            log.info(
                "experiment.chart_skipped",
                message=f"[no chart: {chart_error}]",
                experiment=experiment_id,
            )
    if args.json:
        from pathlib import Path

        target = Path(args.json)
        if multi:
            target.mkdir(parents=True, exist_ok=True)
            out = target / f"{experiment_id}.json"
        else:
            out = target
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(result.to_json())
        log.info(
            "experiment.json_written",
            message=f"[json written to {out}]",
            experiment=experiment_id,
            path=str(out),
        )
    if journal is not None:
        journal.append(
            experiment_id,
            {"status": "ok", "title": result.title, "elapsed_s": round(elapsed, 1)},
            duration_s=elapsed,
            worker_id=f"p{os.getpid()}",
        )
    log.info(
        "experiment.finished",
        message=f"[{experiment_id} finished in {elapsed:.1f}s]\n",
        experiment=experiment_id,
        elapsed_s=round(elapsed, 3),
    )
    return True


def _load_playbook_file(path: str) -> dict:
    """Parse a playbook/sweep file: TOML for ``.toml``, JSON otherwise."""
    import json
    from pathlib import Path

    raw = Path(path).read_bytes()
    if path.endswith(".toml"):
        import tomllib

        return tomllib.loads(raw.decode())
    return json.loads(raw)


def _playbook(args) -> int:
    """Compile one playbook spec and print its trace's row profile."""
    import numpy as np

    from repro.experiments.common import _playbook_mapping_kwargs, make_mapping
    from repro.workloads.playbook import compile_playbook

    try:
        spec = _load_playbook_file(args.spec)
        if args.mapping is not None:
            spec["target_mapping"] = {"kind": args.mapping, "gang_size": args.gang_size}
        mapping = None
        if spec.get("address_space", "row") != "line":
            kwargs = _playbook_mapping_kwargs(spec.get("target_mapping"))
            mapping = make_mapping(**kwargs)
        trace = compile_playbook(spec, mapping, scale=args.scale)
    except (OSError, ValueError) as error:
        print(f"bad playbook spec {args.spec}: {error}", file=sys.stderr)
        return 2
    print(
        f"playbook {trace.name}: {len(trace):,} accesses, "
        f"{trace.instructions:,} instructions, scale {trace.scale}"
    )
    if mapping is None:
        values, counts = np.unique(trace.lines, return_counts=True)
        print(f"address space: line ({len(values):,} distinct line addresses)")
        label = "line"
    else:
        mapped = mapping.translate_trace(trace.lines)
        values, counts = np.unique(mapped.global_row, return_counts=True)
        print(
            f"constructed against {mapping.name}: {len(values):,} distinct rows touched"
        )
        label = "row"
    order = np.argsort(counts)[::-1][: args.top]
    for value, count in zip(values[order].tolist(), counts[order].tolist()):
        print(f"  {label} {value:>12}  {count:,} accesses")
    return 0


def _fuzz(args) -> int:
    """Run one sweep + bisection through the campaign engine."""
    from repro.experiments.campaign import MappingSpec
    from repro.workloads.fuzzer import FuzzConfig, fuzz

    try:
        payload = _load_playbook_file(args.spec)
        if not isinstance(payload, dict) or set(payload) != {"base", "sweep"}:
            raise ValueError('sweep files hold exactly {"base": ..., "sweep": ...}')
        config = FuzzConfig(
            mapping=MappingSpec(args.mapping, gang_size=args.gang_size),
            scheme=args.scheme,
            t_rh=args.t_rh,
            metric=args.metric,
            min_hot_rows=args.min_hot_rows,
            max_cells=args.max_cells,
            seed=args.seed,
            workers=args.workers,
            stats_cache_dir=args.stats_cache,
        )
        result = fuzz(payload["base"], payload["sweep"], config=config)
    except (OSError, ValueError) as error:
        print(f"bad sweep {args.spec}: {error}", file=sys.stderr)
        return 2
    hot = result.hot_cells
    print(
        f"fuzz: {len(result.cells)} cells under {config.mapping.label}/"
        f"{config.scheme} (t_rh {config.t_rh}), {len(hot)} hot"
        + (f", {result.skipped_cells} skipped by --max-cells" if result.skipped_cells else "")
    )
    if result.minimal_overrides is None:
        print(f"no cell reached {config.min_hot_rows}+ {config.metric}; nothing to bisect")
    else:
        print(f"seed cell      : {result.seed_overrides}")
        print(f"minimal pattern: {result.minimal_overrides} ({result.probes} probes)")
        print(
            f"minimal record : {config.metric}="
            f"{result.minimal_record.get(config.metric)}"
            f" activations={result.minimal_record.get('activations')}"
        )
    if args.json:
        import json
        from pathlib import Path

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                {
                    "cells": result.cells,
                    "seed_overrides": result.seed_overrides,
                    "minimal_overrides": result.minimal_overrides,
                    "minimal_spec": result.minimal_spec,
                    "minimal_record": result.minimal_record,
                    "probes": result.probes,
                    "skipped_cells": result.skipped_cells,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"json written to {out}")
    return 0


def _inspect(args) -> int:
    """Print a workload's window statistics under one mapping."""
    from repro.analysis.distribution import activation_distribution
    from repro.experiments.common import get_simulator, get_trace, make_mapping

    sim = get_simulator()
    try:
        trace = get_trace(args.workload, scale=args.scale)
        mapping = make_mapping(args.mapping, sim.config, gang_size=args.gang_size)
    except (KeyError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    stats, swaps = sim.window_stats(trace, mapping)
    print(f"workload {args.workload} (scale {args.scale}) under {mapping.name}")
    print(
        f"accesses {stats.n_accesses:,}  MPKI {trace.mpki:.2f}  "
        f"hit rate {stats.hit_rate:.1%}  activations {stats.n_activations:,}"
    )
    print(
        f"unique rows {stats.unique_rows_touched:,}  "
        f"hot rows ACT-64+ {stats.hot_rows(64):,}  ACT-512+ {stats.hot_rows(512):,}"
    )
    if swaps:
        print(f"rubix-d remap swaps this window: {swaps:,}")
    for line in activation_distribution(stats).describe():
        print(line)
    print(f"\nslowdown at T_RH={args.t_rh} vs unprotected Coffee Lake:")
    for scheme in ("aqua", "srs", "blockhammer"):
        result = sim.run(trace, mapping, scheme=scheme, t_rh=args.t_rh)
        print(
            f"  {scheme:<12s} {result.slowdown_pct:7.1f}%  "
            f"({result.mitigations:,} mitigations)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
