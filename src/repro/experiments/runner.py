"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig7 [--scale 0.5] [--workloads 6]
    python -m repro.experiments run all [--scale 0.25] [--workers 4]

``--workers N`` fans the selected experiments out over a process pool;
``--stats-cache DIR`` points every process (and every later run) at one
shared on-disk window-statistics cache so they reuse instead of
recompute each (trace, mapping) analysis.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.registry import get_experiment, list_experiments
from repro.parallel.cache import STATS_CACHE_ENV
from repro.resilience.journal import CheckpointJournal


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rubix-experiment",
        description="Reproduce the tables and figures of the Rubix paper (ASPLOS 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    inspect_cmd = sub.add_parser(
        "inspect", help="inspect one workload under one mapping"
    )
    inspect_cmd.add_argument("workload", help="workload name (e.g. gcc, mix3, stream-copy)")
    inspect_cmd.add_argument(
        "--mapping",
        default="coffeelake",
        help="mapping short name (coffeelake, skylake, mop, stride, linear,"
        " rubix-s, rubix-d, keyed-xor)",
    )
    inspect_cmd.add_argument("--gang-size", type=int, default=4)
    inspect_cmd.add_argument("--scale", type=float, default=0.2)
    inspect_cmd.add_argument("--t-rh", type=int, default=128)
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor in (0,1]; defaults to the experiment's own",
    )
    run.add_argument(
        "--workloads",
        type=int,
        default=None,
        help="limit the number of workloads (quick runs)",
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="render the first numeric column as ASCII bars",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write results as JSON (one file per experiment, or a"
        " single file for one experiment)",
    )
    run.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint journal: record each completed experiment"
        " so an interrupted 'run all' can be resumed",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed in --journal instead of"
        " starting the journal over",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the selected experiments over a process pool of this"
        " size (1 = in-process, the default)",
    )
    run.add_argument(
        "--stats-cache",
        metavar="DIR",
        default=None,
        help="directory for a persistent window-statistics cache shared"
        " across workers and runs (sets the REPRO_STATS_CACHE"
        " environment variable)",
    )
    return parser


def run_experiment(
    experiment_id: str, scale: Optional[float] = None, workload_limit: Optional[int] = None
):
    """Run one experiment and return its ExperimentResult.

    ``workload_limit`` is forwarded only to runners that accept it (the
    data-only experiments like fig1a take no workload arguments).
    """
    import inspect

    entry = get_experiment(experiment_id)
    kwargs = {}
    if workload_limit is not None:
        parameters = inspect.signature(entry.runner).parameters
        if "workload_limit" in parameters:
            kwargs["workload_limit"] = workload_limit
    return entry.runner(scale=scale if scale is not None else entry.default_scale, **kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for entry in list_experiments():
            print(f"{entry.experiment_id:10s} {entry.title}")
        return 0

    if args.command == "inspect":
        return _inspect(args)

    targets = (
        [e.experiment_id for e in list_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    if args.resume and not args.journal:
        print("--resume requires --journal PATH", file=sys.stderr)
        return 2
    known = {entry.experiment_id for entry in list_experiments()}
    for experiment_id in targets:
        if experiment_id not in known:
            # Validate before journal.reset() below: a typo'd id must not
            # wipe an existing checkpoint journal.
            print(
                f"unknown experiment '{experiment_id}';"
                f" known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.stats_cache:
        # Environment, not an argument: pool workers (fork or spawn)
        # inherit it, and get_simulator() picks it up lazily.
        os.environ[STATS_CACHE_ENV] = args.stats_cache
    journal = CheckpointJournal(args.journal) if args.journal else None
    if journal is not None and not args.resume:
        journal.reset()
    completed = journal.completed_keys() if journal is not None else set()
    for experiment_id in targets:
        if experiment_id in completed:
            print(f"[{experiment_id} already completed; skipped (resume)]")
    pending = [eid for eid in targets if eid not in completed]

    failures = []
    for experiment_id, result, error, elapsed in _run_pending(pending, args):
        ok = _emit_result(
            args, experiment_id, result, error, elapsed, journal, multi=len(targets) > 1
        )
        if not ok:
            failures.append(experiment_id)
    if failures:
        print(f"[{len(failures)} experiment(s) failed: {', '.join(failures)}]", file=sys.stderr)
        return 1
    return 0


def _experiment_task(task: Tuple[str, Optional[float], Optional[int]]):
    """Run one experiment; shipping-safe result (used from pool workers)."""
    experiment_id, scale, workload_limit = task
    started = time.time()
    try:
        result = run_experiment(experiment_id, scale, workload_limit)
        return experiment_id, result, None, time.time() - started
    except Exception as error:
        # One broken experiment must not abort the suite: carry the
        # (typed) failure back as text -- exceptions from a worker may
        # not unpickle -- so the parent reports it and keeps sweeping.
        return experiment_id, None, f"{type(error).__name__}: {error}", time.time() - started


def _run_pending(pending: List[str], args):
    """Yield (id, result, error, elapsed) in deterministic target order.

    Serial mode yields each experiment as it runs; parallel mode
    dispatches them all to a process pool and yields the deterministic
    prefix as soon as it completes, so output order never depends on
    worker timing.
    """
    tasks = [(eid, args.scale, args.workloads) for eid in pending]
    if args.workers == 1 or len(pending) <= 1:
        for task in tasks:
            yield _experiment_task(task)
        return
    from concurrent.futures import ProcessPoolExecutor, as_completed

    done = {}
    cursor = 0
    with ProcessPoolExecutor(max_workers=min(args.workers, len(pending))) as pool:
        futures = {pool.submit(_experiment_task, task): task[0] for task in tasks}
        for future in as_completed(futures):
            outcome = future.result()
            done[outcome[0]] = outcome
            while cursor < len(pending) and pending[cursor] in done:
                yield done.pop(pending[cursor])
                cursor += 1


def _emit_result(args, experiment_id, result, error, elapsed, journal, *, multi) -> bool:
    """Print/journal one experiment outcome; returns False on failure."""
    if error is not None:
        print(f"[{experiment_id} failed: {error}]", file=sys.stderr)
        return False
    print(result.format())
    if args.chart:
        from repro.experiments.charts import render_bars

        try:
            print(render_bars(result))
        except ValueError as chart_error:
            print(f"[no chart: {chart_error}]")
    if args.json:
        from pathlib import Path

        target = Path(args.json)
        if multi:
            target.mkdir(parents=True, exist_ok=True)
            out = target / f"{experiment_id}.json"
        else:
            out = target
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(result.to_json())
        print(f"[json written to {out}]")
    if journal is not None:
        journal.append(
            experiment_id,
            {"status": "ok", "title": result.title, "elapsed_s": round(elapsed, 1)},
        )
    print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
    return True


def _inspect(args) -> int:
    """Print a workload's window statistics under one mapping."""
    from repro.analysis.distribution import activation_distribution
    from repro.experiments.common import get_simulator, get_trace, make_mapping

    sim = get_simulator()
    try:
        trace = get_trace(args.workload, scale=args.scale)
        mapping = make_mapping(args.mapping, sim.config, gang_size=args.gang_size)
    except (KeyError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    stats, swaps = sim.window_stats(trace, mapping)
    print(f"workload {args.workload} (scale {args.scale}) under {mapping.name}")
    print(
        f"accesses {stats.n_accesses:,}  MPKI {trace.mpki:.2f}  "
        f"hit rate {stats.hit_rate:.1%}  activations {stats.n_activations:,}"
    )
    print(
        f"unique rows {stats.unique_rows_touched:,}  "
        f"hot rows ACT-64+ {stats.hot_rows(64):,}  ACT-512+ {stats.hot_rows(512):,}"
    )
    if swaps:
        print(f"rubix-d remap swaps this window: {swaps:,}")
    for line in activation_distribution(stats).describe():
        print(line)
    print(f"\nslowdown at T_RH={args.t_rh} vs unprotected Coffee Lake:")
    for scheme in ("aqua", "srs", "blockhammer"):
        result = sim.run(trace, mapping, scheme=scheme, t_rh=args.t_rh)
        print(
            f"  {scheme:<12s} {result.slowdown_pct:7.1f}%  "
            f"({result.mitigations:,} mitigations)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
