"""Figure 3: normalized performance of AQUA/SRS/Blockhammer across
thresholds for the Coffee Lake and Skylake mappings."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

THRESHOLDS = [1024, 512, 256, 128]
SCHEMES = ["aqua", "srs", "blockhammer"]
MAPPINGS = ["coffeelake", "skylake"]


@register("fig3", "Normalized performance vs T_RH (Intel mappings)", default_scale=0.4)
def run_fig3(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Average normalized IPC for each (scheme, mapping, threshold)."""
    sim = get_simulator()
    mappings = {name: make_mapping(name, sim.config) for name in MAPPINGS}
    rows = []
    for scheme in SCHEMES:
        for t_rh in THRESHOLDS:
            row: list = [scheme, t_rh]
            for mapping_name in MAPPINGS:
                perfs = []
                for workload in spec_workloads(workload_limit):
                    trace = get_trace(workload, scale=scale)
                    result = sim.run(
                        trace, mappings[mapping_name], scheme=scheme, t_rh=t_rh
                    )
                    perfs.append(result.normalized_performance)
                row.append(round(average(perfs), 3))
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig3",
        title="Normalized performance of secure mitigations vs T_RH",
        headers=["scheme", "t_rh", "coffeelake", "skylake"],
        rows=rows,
        notes=[
            "paper: at t_rh=128 AQUA ~0.87, SRS ~0.63, Blockhammer ~0.14-0.2",
            f"workload scale factor {scale}",
        ],
    )


__all__ = ["run_fig3", "THRESHOLDS", "SCHEMES"]
