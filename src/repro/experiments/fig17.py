"""Figure 17: MOP mapping vs Rubix (Section 7.1)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_D,
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128
MAPPING_LABELS = ["coffeelake", "skylake", "mop", "rubix_s", "rubix_d"]


@register("fig17", "MOP vs Rubix with secure mitigations", default_scale=0.4)
def run_fig17(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Average normalized performance of the five mappings per scheme."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    fixed = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "skylake": make_mapping("skylake", sim.config),
        "mop": make_mapping("mop", sim.config),
    }
    rows = []
    hot_rows_mop = 0
    hot_rows_cl = 0
    for scheme in SCHEMES:
        per_scheme = dict(fixed)
        per_scheme["rubix_s"] = make_mapping(
            "rubix-s", sim.config, gang_size=BEST_GANG_SIZE_S[scheme]
        )
        per_scheme["rubix_d"] = make_mapping(
            "rubix-d", sim.config, gang_size=BEST_GANG_SIZE_D[scheme]
        )
        row: list = [scheme]
        for label in MAPPING_LABELS:
            perfs = []
            for workload in names:
                trace = get_trace(workload, scale=scale)
                result = sim.run(trace, per_scheme[label], scheme=scheme, t_rh=T_RH)
                perfs.append(result.normalized_performance)
                if scheme == "aqua" and label == "mop":
                    stats, _ = sim.window_stats(trace, per_scheme[label])
                    hot_rows_mop += stats.hot_rows(64)
                if scheme == "aqua" and label == "coffeelake":
                    stats, _ = sim.window_stats(trace, per_scheme[label])
                    hot_rows_cl += stats.hot_rows(64)
            row.append(round(average(perfs), 3))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig17",
        title=f"Normalized performance on MOP vs Rubix at T_RH={T_RH}",
        headers=["scheme"] + MAPPING_LABELS,
        rows=rows,
        notes=[
            f"MOP hot rows {hot_rows_mop} vs Coffee Lake {hot_rows_cl} "
            "(paper: MOP hot rows similar to baseline; MOP still suffers large slowdowns)",
        ],
    )


__all__ = ["run_fig17"]
