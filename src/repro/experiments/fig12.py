"""Figure 12: mean hot rows for baselines and both Rubix flavors
across gang sizes."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

CONFIGS = [
    ("coffeelake", "coffeelake", 4),
    ("skylake", "skylake", 4),
    ("rubix-s-gs1", "rubix-s", 1),
    ("rubix-s-gs2", "rubix-s", 2),
    ("rubix-s-gs4", "rubix-s", 4),
    ("rubix-d-gs1", "rubix-d", 1),
    ("rubix-d-gs2", "rubix-d", 2),
    ("rubix-d-gs4", "rubix-d", 4),
]


@register("fig12", "Mean hot rows: baselines vs Rubix-S vs Rubix-D", default_scale=0.4)
def run_fig12(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Mean ACT-64+ hot rows across the SPEC workloads per mapping."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for label, kind, gs in CONFIGS:
        mapping = make_mapping(kind, sim.config, gang_size=gs)
        total = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            stats, _ = sim.window_stats(trace, mapping)
            total += stats.hot_rows(64)
        rows.append([label, round(total / len(names), 1)])
    return ExperimentResult(
        experiment_id="fig12",
        title="Mean hot rows (ACT-64+) per mapping",
        headers=["mapping", "mean_hot_rows"],
        rows=rows,
        notes=[
            "paper: baselines >7K; Rubix GS1 ~0, GS2 negligible, GS4 a few tens"
            " (at least 100x reduction)",
        ],
    )


__all__ = ["run_fig12", "CONFIGS"]
