"""Figure 13: per-workload performance of secure mitigations at
T_RH=128 with Rubix-D (best gang size per scheme, RR=1%)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_D,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128


@register("fig13", "Per-workload normalized performance with Rubix-D", default_scale=0.4)
def run_fig13(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Normalized IPC per (workload, scheme) for Intel vs Rubix-D."""
    sim = get_simulator()
    coffee = make_mapping("coffeelake", sim.config)
    sky = make_mapping("skylake", sim.config)
    rubix = {
        scheme: make_mapping("rubix-d", sim.config, gang_size=BEST_GANG_SIZE_D[scheme])
        for scheme in SCHEMES
    }
    rows = []
    averages = {(s, m): [] for s in SCHEMES for m in ("coffeelake", "skylake", "rubix_d")}
    for workload in spec_workloads(workload_limit):
        trace = get_trace(workload, scale=scale)
        for scheme in SCHEMES:
            cl = sim.run(trace, coffee, scheme=scheme, t_rh=T_RH).normalized_performance
            sk = sim.run(trace, sky, scheme=scheme, t_rh=T_RH).normalized_performance
            rx = sim.run(
                trace, rubix[scheme], scheme=scheme, t_rh=T_RH
            ).normalized_performance
            rows.append([workload, scheme, round(cl, 3), round(sk, 3), round(rx, 3)])
            averages[(scheme, "coffeelake")].append(cl)
            averages[(scheme, "skylake")].append(sk)
            averages[(scheme, "rubix_d")].append(rx)
    for scheme in SCHEMES:
        rows.append(
            [
                "average",
                scheme,
                round(average(averages[(scheme, "coffeelake")]), 3),
                round(average(averages[(scheme, "skylake")]), 3),
                round(average(averages[(scheme, "rubix_d")]), 3),
            ]
        )
    return ExperimentResult(
        experiment_id="fig13",
        title=f"Normalized performance at T_RH={T_RH} (Rubix-D best GS per scheme)",
        headers=["workload", "scheme", "coffeelake", "skylake", "rubix_d"],
        rows=rows,
        notes=[
            "paper average slowdowns with Rubix-D: AQUA 1.5%, SRS 2.3%, Blockhammer 2.8%",
            "Rubix-D gang sizes: AQUA GS4, SRS GS2, Blockhammer GS1; remap rate 1%",
        ],
    )


__all__ = ["run_fig13", "SCHEMES", "T_RH"]
