"""Section 6 discussion experiments: large-stride mapping (§6.1) and
static keyed-xor randomization (§6.2)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128


@register("sec61", "Large-stride mapping (randomization without a cipher)", default_scale=0.4)
def run_sec61(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Slowdown of the large-stride mapping with secure mitigations."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    stride = make_mapping("stride", sim.config, gang_size=4)
    rows = []
    for scheme in SCHEMES:
        slowdowns = []
        hot = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            result = sim.run(trace, stride, scheme=scheme, t_rh=T_RH)
            slowdowns.append(result.slowdown_pct)
            hot += result.hot_rows_64
        rows.append([scheme, round(average(slowdowns), 2), hot // len(names)])
    return ExperimentResult(
        experiment_id="sec61",
        title=f"Large-stride mapping slowdown at T_RH={T_RH}",
        headers=["scheme", "slowdown_%", "mean_hot_rows"],
        rows=rows,
        notes=[
            "paper: 1.8%-3.8% slowdown, similar to Rubix-S, but not robust to"
            " large-stride access patterns (no cipher)",
        ],
    )


@register("sec62", "Static keyed-xor (Rubix-D without remapping)", default_scale=0.4)
def run_sec62(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Slowdown of Rubix-D hardware with dynamic remapping disabled."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for scheme in SCHEMES:
        mapping = make_mapping(
            "keyed-xor", sim.config, gang_size=BEST_GANG_SIZE_S[scheme]
        )
        slowdowns = []
        for workload in names:
            trace = get_trace(workload, scale=scale)
            result = sim.run(trace, mapping, scheme=scheme, t_rh=T_RH)
            slowdowns.append(result.slowdown_pct)
        rows.append([scheme, round(average(slowdowns), 2)])
    return ExperimentResult(
        experiment_id="sec62",
        title=f"Static keyed-xor slowdown at T_RH={T_RH}",
        headers=["scheme", "slowdown_%"],
        rows=rows,
        notes=["paper: 0.9%-2.6% average slowdown with secure mitigations"],
    )


__all__ = ["run_sec61", "run_sec62"]
