"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's printed artifacts: each isolates one design
decision (vertical vs horizontal remap, cipher vs fixed stride, remap
rate, segmentation, tracker realism, cipher depth) and quantifies what
it buys.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.adversarial import mapping_robustness
from repro.core.rubix_horizontal import HorizontalXorMapping
from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.dram.memory_system import MemorySystem, Request
from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register
from repro.mitigations.blockhammer import Blockhammer


@register("abl-pitfall", "Horizontal vs vertical xor remapping (§5.2)", default_scale=0.3)
def run_abl_pitfall(scale: float = 0.3, workload_limit: int = 6) -> ExperimentResult:
    """The xor-linearity pitfall: one global key leaves hot rows intact."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    mappings = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "horizontal-xor": HorizontalXorMapping(sim.config),
        "rubix-d (vertical)": make_mapping("rubix-d", sim.config, gang_size=4),
    }
    rows = []
    for label, mapping in mappings.items():
        total_hot = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            stats, _ = sim.window_stats(trace, mapping)
            total_hot += stats.hot_rows(64)
        rows.append([label, total_hot // len(names)])
    return ExperimentResult(
        experiment_id="abl-pitfall",
        title="Mean hot rows: global-key xor vs per-v-group keys",
        headers=["mapping", "mean_hot_rows"],
        rows=rows,
        notes=[
            "a single xor key moves rows around but keeps their lines together,"
            " so hot rows match the baseline; vertical per-gang keys break them",
        ],
    )


@register("abl-stride-attack", "Adversarial stride vs large-stride mapping (§6.1)", default_scale=1.0)
def run_abl_stride_attack(scale: float = 1.0, workload_limit: int = None) -> ExperimentResult:
    """Cipher-based randomization is robust where fixed striding is not."""
    sim = get_simulator()
    config = sim.config
    stride_mapping = make_mapping("stride", config, gang_size=4)
    # The large-stride mapping's public gang distance (in lines).
    stride_lines = stride_mapping.gang_stride_bytes // config.line_bytes
    accesses = int(500_000 * scale)
    rows = []
    for mapping in (
        stride_mapping,
        make_mapping("rubix-s", config, gang_size=4),
        make_mapping("rubix-d", config, gang_size=4),
    ):
        report = mapping_robustness(
            config, mapping, adversarial_stride_lines=stride_lines, accesses=accesses
        )
        rows.append(
            [
                report.mapping_name,
                report.benign_hot_rows,
                report.adversarial_hot_rows,
                report.adversarial_max_row_acts,
                round(report.concentration, 1),
                "EXPOSED" if report.exposed else "robust",
            ]
        )
    return ExperimentResult(
        experiment_id="abl-stride-attack",
        title="Row pressure under the worst-case gang-stride pattern",
        headers=[
            "mapping",
            "benign_hot",
            "adversarial_hot",
            "max_row_acts",
            "concentration",
            "verdict",
        ],
        rows=rows,
        notes=[
            "the paper keeps large-stride as discussion-only because patterns"
            " with its exact stride re-create hot rows; the cipher has no"
            " exploitable stride",
        ],
    )


@register("abl-remap-rate", "Rubix-D remapping-rate sweep (§5.4)", default_scale=0.2)
def run_abl_remap_rate(scale: float = 0.2, workload_limit: int = 6) -> ExperimentResult:
    """Remap rate trades attack-window shrinkage against swap overhead."""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for rate in (0.0, 0.005, 0.01, 0.02, 0.05):
        mapping = RubixDMapping(sim.config, gang_size=4, remap_rate=rate)
        slowdowns = []
        swaps = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            result = sim.run(trace, mapping, scheme="aqua", t_rh=128)
            slowdowns.append(result.slowdown_pct)
            swaps += result.remap_swaps
        period = mapping.remap_period_activations
        rows.append(
            [
                f"{100 * rate:.1f}%",
                round(average(slowdowns), 2),
                swaps,
                "inf" if period == float("inf") else f"{period:,.0f}",
            ]
        )
    return ExperimentResult(
        experiment_id="abl-remap-rate",
        title="Rubix-D (GS4) + AQUA vs remapping rate",
        headers=["remap_rate", "slowdown_%", "swaps", "remap_period_acts"],
        rows=rows,
        notes=["paper default 1%: ~1.5% extra activations, 200M-activation period"],
    )


@register("abl-segments", "Segmented Rubix-D (§5.4)", default_scale=1.0)
def run_abl_segments(scale: float = 1.0, workload_limit: int = None) -> ExperimentResult:
    """Segments shorten the remap period at proportional SRAM cost."""
    sim = get_simulator()
    rows = []
    for segments in (1, 4, 8, 32):
        mapping = RubixDMapping(sim.config, gang_size=4, segments=segments)
        rows.append(
            [
                segments,
                f"{mapping.remap_period_activations:,.0f}",
                mapping.storage_bytes,
            ]
        )
    return ExperimentResult(
        experiment_id="abl-segments",
        title="Rubix-D segmentation: remap period vs SRAM",
        headers=["segments", "remap_period_acts", "sram_bytes"],
        rows=rows,
        notes=["paper: N=32 gives a 6.25M-activation period at 16 KB SRAM"],
    )


@register("abl-tracker", "Blockhammer tracker: ideal SRAM vs dual CBF", default_scale=1.0)
def run_abl_tracker(scale: float = 1.0, workload_limit: int = None) -> ExperimentResult:
    """CBF aliasing throttles innocent rows; sizing the filter fixes it.

    Uses the detailed model on a compact benign-plus-aggressor trace so
    the tracker actually runs.
    """
    config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=4096)
    from repro.mapping.intel import CoffeeLakeMapping

    mapping = CoffeeLakeMapping(config)
    rng = np.random.default_rng(7)
    accesses = int(40_000 * scale)
    # 60% of traffic hammers 8 rows (well past the blacklist), the rest
    # sprays across 2000 innocent rows.
    row_stride = 128 * config.banks  # same-bank row distance (Coffee Lake)
    hot_lines = (
        rng.integers(0, 8, accesses) * row_stride + rng.integers(0, 128, accesses)
    ).astype(np.uint64)
    cold_lines = (
        rng.integers(100, 1100, accesses) * row_stride + rng.integers(0, 128, accesses)
    ).astype(np.uint64)
    choose_hot = rng.random(accesses) < 0.6
    lines = np.where(choose_hot, hot_lines, cold_lines)

    rows = []
    for label, kwargs in (
        ("ideal per-row", dict(tracker_kind="ideal")),
        ("dual CBF 1K", dict(tracker_kind="cbf", cbf_counters=1024)),
        ("dual CBF 8K", dict(tracker_kind="cbf", cbf_counters=8192)),
    ):
        mitigation = Blockhammer(config, 128, **kwargs)
        system = MemorySystem(config, mapping, mitigation=mitigation)
        system.run_trace(
            [Request(line_addr=int(line), arrival=i * 60e-9) for i, line in enumerate(lines)]
        )
        storage = mitigation._cbf.storage_bytes if mitigation._cbf else 2 * config.total_rows
        rows.append(
            [
                label,
                mitigation.throttled_activations,
                round(system.stats.mitigation_stall_s * 1e3, 1),
                storage,
            ]
        )
    return ExperimentResult(
        experiment_id="abl-tracker",
        title="Blockhammer throttling under different trackers",
        headers=["tracker", "throttled_acts", "stall_ms", "tracker_bytes"],
        rows=rows,
        notes=[
            "CBF estimates never undercount (security holds) but alias under"
            " pressure: the small filter throttles more than the ideal tracker",
        ],
    )


@register("abl-cipher-rounds", "Rubix-S cipher depth", default_scale=0.2)
def run_abl_cipher_rounds(scale: float = 0.2, workload_limit: int = 4) -> ExperimentResult:
    """How many Feistel rounds does hot-row elimination actually need?"""
    sim = get_simulator()
    names = spec_workloads(workload_limit)
    rows = []
    for rounds in (2, 4, 6, 8):
        mapping = RubixSMapping(sim.config, gang_size=4, rounds=rounds)
        total_hot = 0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            stats, _ = sim.window_stats(trace, mapping, use_cache=False)
            total_hot += stats.hot_rows(64)
        rows.append([rounds, total_hot // len(names)])
    return ExperimentResult(
        experiment_id="abl-cipher-rounds",
        title="Mean hot rows vs Rubix-S Feistel rounds (GS4)",
        headers=["rounds", "mean_hot_rows"],
        rows=rows,
        notes=[
            "even shallow ciphers scatter benign footprints; depth matters for"
            " adversarial inversion resistance, not benign hot-row counts",
        ],
    )


@register("abl-reveng", "DRAMA-style mapping reverse engineering", default_scale=1.0)
def run_abl_reveng(scale: float = 1.0, workload_limit: int = None) -> ExperimentResult:
    """Linear (GF(2)) recovery of the bank function per mapping.

    Deployed xor-hash mappings are fully recoverable from timing probes
    (the first step of every targeted Rowhammer attack); cipher-based
    Rubix leaves the attacker at chance level.
    """
    from repro.analysis.reverse_engineering import (
        linearity_score,
        random_guess_baseline,
        recover_linear_bank_masks,
    )
    from repro.dram.config import DRAMConfig

    config = DRAMConfig(channels=1, ranks=1, banks=16, rows_per_bank=4096)
    samples = max(256, int(2048 * scale))
    mappings = {
        "coffeelake": make_mapping("coffeelake", config),
        "skylake": make_mapping("skylake", config),
        "mop": make_mapping("mop", config),
        "rubix-s-gs4": make_mapping("rubix-s", config, gang_size=4),
        "rubix-d-gs4": make_mapping("rubix-d", config, gang_size=4),
    }
    baseline = random_guess_baseline(config)
    rows = []
    for label, mapping in mappings.items():
        model = recover_linear_bank_masks(mapping, samples=samples)
        score = linearity_score(mapping, model, samples=samples // 2)
        rows.append(
            [
                label,
                round(score, 3),
                "RECOVERED" if score > 0.99 else ("partial" if score > 0.5 else "resists"),
            ]
        )
    return ExperimentResult(
        experiment_id="abl-reveng",
        title="Linear bank-function recovery accuracy (chance = "
        f"{baseline:.3f})",
        headers=["mapping", "prediction_accuracy", "verdict"],
        rows=rows,
        notes=[
            "recovering the bank function is step one of building the"
            " same-bank hammer sets every targeted attack needs (§5.6)",
        ],
    )


__all__ = [
    "run_abl_pitfall",
    "run_abl_stride_attack",
    "run_abl_remap_rate",
    "run_abl_segments",
    "run_abl_tracker",
    "run_abl_cipher_rounds",
    "run_abl_reveng",
]
