"""Figure 16: memory-intensive STREAM workloads (§5.13)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import register
from repro.perf.metrics import geometric_mean
from repro.workloads.stream_suite import STREAM_KERNELS

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128


@register("fig16", "STREAM workloads with Rubix + secure mitigations", default_scale=0.5)
def run_fig16(scale: float = 0.5, workload_limit: int = None) -> ExperimentResult:
    """Rubix-S/D + mitigations, normalized to each unprotected baseline."""
    sim = get_simulator()
    kernels = list(STREAM_KERNELS)[:workload_limit] if workload_limit else list(STREAM_KERNELS)
    baselines = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "skylake": make_mapping("skylake", sim.config),
    }
    rubix = {
        "rubix-s": make_mapping("rubix-s", sim.config, gang_size=4),
        "rubix-d": make_mapping("rubix-d", sim.config, gang_size=4),
    }
    rows = []
    for flavor, mapping in rubix.items():
        for scheme in SCHEMES:
            for base_name, base_mapping in baselines.items():
                perfs = []
                for kernel in kernels:
                    trace = get_trace(f"stream-{kernel}", scale=scale)
                    result = sim.run(
                        trace,
                        mapping,
                        scheme=scheme,
                        t_rh=T_RH,
                        baseline_mapping=base_mapping,
                    )
                    perfs.append(result.normalized_performance)
                rows.append(
                    [flavor, scheme, base_name, round(geometric_mean(perfs), 3)]
                )
    return ExperimentResult(
        experiment_id="fig16",
        title=f"STREAM geomean normalized performance at T_RH={T_RH}",
        headers=["flavor", "scheme", "baseline", "geomean_norm_perf"],
        rows=rows,
        notes=[
            "paper: Rubix incurs 2-5% vs Coffee Lake and 5-8% vs Skylake;"
            " Rubix eliminates all STREAM hot rows",
        ],
    )


__all__ = ["run_fig16"]
