"""Mixed-workload evaluation (the 16 four-way mixes of Section 3.2).

Figures 8 and 13 of the paper include the mixes alongside the SPEC
rate workloads; this experiment reproduces that portion: normalized
performance of each mix under the Intel baseline and Rubix at T_RH=128.
"""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import register
from repro.workloads.mixes import mix_names, mix_profile

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128


@register("fig8mix", "Mixed workloads with Rubix-S (Figures 8/13, mix portion)", default_scale=0.25)
def run_fig8mix(scale: float = 0.25, workload_limit: int = None) -> ExperimentResult:
    """Normalized performance of the 16 mixes, Coffee Lake vs Rubix-S."""
    sim = get_simulator()
    coffee = make_mapping("coffeelake", sim.config)
    rubix = {
        scheme: make_mapping("rubix-s", sim.config, gang_size=BEST_GANG_SIZE_S[scheme])
        for scheme in SCHEMES
    }
    names = mix_names()[:workload_limit] if workload_limit else mix_names()
    rows = []
    averages = {(s, col): [] for s in SCHEMES for col in ("cl", "rx")}
    for name in names:
        trace = get_trace(name, scale=scale)
        members = "+".join(m[:3] for m in mix_profile(name))
        for scheme in SCHEMES:
            cl = sim.run(trace, coffee, scheme=scheme, t_rh=T_RH).normalized_performance
            rx = sim.run(
                trace, rubix[scheme], scheme=scheme, t_rh=T_RH
            ).normalized_performance
            rows.append([name, members, scheme, round(cl, 3), round(rx, 3)])
            averages[(scheme, "cl")].append(cl)
            averages[(scheme, "rx")].append(rx)
    for scheme in SCHEMES:
        rows.append(
            [
                "average",
                "-",
                scheme,
                round(average(averages[(scheme, "cl")]), 3),
                round(average(averages[(scheme, "rx")]), 3),
            ]
        )
    return ExperimentResult(
        experiment_id="fig8mix",
        title=f"Mixed workloads at T_RH={T_RH}: Coffee Lake vs Rubix-S",
        headers=["mix", "members", "scheme", "coffeelake", "rubix_s"],
        rows=rows,
        notes=["mix membership is drawn deterministically from the 18 SPEC workloads"],
    )


__all__ = ["run_fig8mix"]
