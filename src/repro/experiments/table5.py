"""Table 5: comparison of Rowhammer mitigations (security + slowdown)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

T_RH = 128

SECURITY_LABELS = {
    "trr": "Not Secure (Half-Double)",
    "aqua": "Secure - Isolation",
    "srs": "Secure - Randomization",
    "blockhammer": "Secure - Rate Control",
}


@register("table5", "Comparison of Rowhammer mitigations", default_scale=0.4)
def run_table5(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Measured slowdown of each mitigation, baseline vs Rubix mapping."""
    sim = get_simulator()
    coffee = make_mapping("coffeelake", sim.config)
    names = spec_workloads(workload_limit)

    def avg_slowdown(mapping, scheme: str) -> float:
        values = []
        for workload in names:
            trace = get_trace(workload, scale=scale)
            values.append(sim.run(trace, mapping, scheme=scheme, t_rh=T_RH).slowdown_pct)
        return average(values)

    rows = []
    for scheme in ("trr", "aqua", "srs", "blockhammer"):
        rows.append(
            [
                "in-DRAM TRR" if scheme == "trr" else scheme.upper(),
                SECURITY_LABELS[scheme],
                round(avg_slowdown(coffee, scheme), 1),
            ]
        )
    for scheme in ("aqua", "srs", "blockhammer"):
        rubix = make_mapping("rubix-s", sim.config, gang_size=BEST_GANG_SIZE_S[scheme])
        rows.append(
            [
                f"Rubix + {scheme.upper()}",
                "Secure - underlying mitigation",
                round(avg_slowdown(rubix, scheme), 1),
            ]
        )
    return ExperimentResult(
        experiment_id="table5",
        title=f"Mitigation comparison at T_RH={T_RH} (Coffee Lake unless noted)",
        headers=["mitigation", "security", "slowdown_%"],
        rows=rows,
        notes=[
            "paper: TRR <1%, AQUA 15%, SRS 60%, Blockhammer 600%, Rubix+any 1-3%",
        ],
    )


__all__ = ["run_table5"]
