"""Figure 1: (a) threshold trend, (c) slowdown of secure mitigations.

Figure 1(a) is published measurement data (reproduced as a table);
Figure 1(c) averages the slowdown of AQUA, SRS, and Blockhammer over the
SPEC workloads at T_RH in {1K, 512, 256, 128} with the Coffee Lake
baseline mapping.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

#: Published Rowhammer threshold characterization (Figure 1a).
THRESHOLD_TREND = [
    ("DDR3", 2014, 139_000),
    ("DDR4", 2018, 17_500),
    ("LPDDR4", 2020, 4_800),
    ("LPDDR5/DDR5", 2023, 4_000),
]


@register("fig1a", "Rowhammer threshold trend (published data)", default_scale=1.0)
def run_fig1a(scale: float = 1.0) -> ExperimentResult:
    """Reproduce Figure 1(a) as a table (30x reduction over 6 years)."""
    rows = [[gen, year, t_rh] for gen, year, t_rh in THRESHOLD_TREND]
    first, last = THRESHOLD_TREND[0][2], THRESHOLD_TREND[2][2]
    return ExperimentResult(
        experiment_id="fig1a",
        title="Rowhammer threshold trend",
        headers=["generation", "year", "t_rh"],
        rows=rows,
        notes=[f"2014->2020 reduction: {first / last:.0f}x (paper: ~30x in 6 years)"],
    )


@register("fig1c", "Average slowdown of secure mitigations vs T_RH", default_scale=0.4)
def run_fig1c(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Reproduce Figure 1(c): slowdown table at T_RH 1K..128."""
    sim = get_simulator()
    mapping = make_mapping("coffeelake", sim.config)
    thresholds = [1024, 512, 256, 128]
    schemes = ["aqua", "srs", "blockhammer"]
    rows = []
    for t_rh in thresholds:
        row: list = [t_rh]
        for scheme in schemes:
            slowdowns = []
            for name in spec_workloads(workload_limit):
                trace = get_trace(name, scale=scale)
                result = sim.run(trace, mapping, scheme=scheme, t_rh=t_rh)
                slowdowns.append(result.slowdown_pct)
            row.append(round(average(slowdowns), 1))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig1c",
        title="Average slowdown (%) of secure mitigations (Coffee Lake mapping)",
        headers=["t_rh", "aqua_%", "srs_%", "blockhammer_%"],
        rows=rows,
        notes=[
            "paper: t_rh=1K -> <1/3.4/10; 512 -> 2.4/10/37; 256 -> 6.4/25/140; 128 -> 15/60/600",
            f"workload scale factor {scale}",
        ],
    )


__all__ = ["THRESHOLD_TREND", "run_fig1a", "run_fig1c"]
