"""Table 3: how many lines of a hot row contribute activations."""

from __future__ import annotations

from repro.analysis.hotrows import line_contribution_table
from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import register

#: Workloads with 100+ hot rows at full scale (Table 3's population).
TABLE3_WORKLOADS = [
    "blender",
    "lbm",
    "gcc",
    "cactuBSSN",
    "mcf",
    "roms",
    "perlbench",
    "xz",
    "nab",
    "namd",
]


@register("table3", "Activating lines per hot row", default_scale=0.25)
def run_table3(scale: float = 0.25, workload_limit: int = None) -> ExperimentResult:
    """Distribution of distinct activating lines across each hot row."""
    sim = get_simulator()
    mapping = make_mapping("coffeelake", sim.config)
    names = TABLE3_WORKLOADS[:workload_limit] if workload_limit else TABLE3_WORKLOADS
    rows = []
    bucket_sums = None
    avg_sum = 0.0
    counted = 0
    for name in names:
        trace = get_trace(name, scale=scale)
        stats, _ = sim.window_stats(trace, mapping, keep_detail=True, use_cache=False)
        table = line_contribution_table(stats, threshold=64, lines_per_row=sim.config.lines_per_row)
        if table.hot_rows == 0:
            continue
        fractions = table.bucket_fractions
        rows.append(
            [
                name,
                table.hot_rows,
                round(100 * fractions["1-31"], 1),
                round(100 * fractions["32-63"], 1),
                round(100 * fractions["64-128"], 1),
                round(table.average_lines, 1),
            ]
        )
        if bucket_sums is None:
            bucket_sums = {k: 0.0 for k in fractions}
        for k, v in fractions.items():
            bucket_sums[k] += v
        avg_sum += table.average_lines
        counted += 1
    if counted:
        rows.append(
            [
                "average",
                "-",
                round(100 * bucket_sums["1-31"] / counted, 1),
                round(100 * bucket_sums["32-63"] / counted, 1),
                round(100 * bucket_sums["64-128"] / counted, 1),
                round(avg_sum / counted, 1),
            ]
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Number of activating lines in hot rows (Coffee Lake mapping)",
        headers=["workload", "hot_rows", "pct_1-32", "pct_32-64", "pct_64-128", "avg_lines"],
        rows=rows,
        notes=[
            "paper: ~98% of hot rows draw from 32-64 lines; average 56 lines",
        ],
    )


__all__ = ["run_table3", "TABLE3_WORKLOADS"]
