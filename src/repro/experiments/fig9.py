"""Figure 9: Rubix-S gang-size sensitivity (GS1 / GS2 / GS4)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
GANG_SIZES = [1, 2, 4]
T_RH = 128


@register("fig9", "Rubix-S gang-size sensitivity", default_scale=0.4)
def run_fig9(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Average slowdown of each scheme with Rubix-S at GS 1/2/4."""
    sim = get_simulator()
    mappings = {
        gs: make_mapping("rubix-s", sim.config, gang_size=gs) for gs in GANG_SIZES
    }
    rows = []
    for scheme in SCHEMES:
        row: list = [scheme]
        for gs in GANG_SIZES:
            slowdowns = []
            for workload in spec_workloads(workload_limit):
                trace = get_trace(workload, scale=scale)
                result = sim.run(trace, mappings[gs], scheme=scheme, t_rh=T_RH)
                slowdowns.append(result.slowdown_pct)
            row.append(round(average(slowdowns), 2))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9",
        title=f"Slowdown (%) of Rubix-S by gang size at T_RH={T_RH}",
        headers=["scheme", "gs1_%", "gs2_%", "gs4_%"],
        rows=rows,
        notes=[
            "paper: Blockhammer best at GS1, AQUA best at GS4, SRS balanced at GS2",
        ],
    )


__all__ = ["run_fig9", "GANG_SIZES"]
