"""``python -m repro.experiments`` entry point."""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
