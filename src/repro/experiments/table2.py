"""Table 2: workload characteristics (MPKI, unique rows, hot rows)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register
from repro.workloads.spec import spec_profile


@register("table2", "Workload characteristics under the baseline mapping", default_scale=0.4)
def run_table2(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """Measured MPKI, unique rows, ACT-64+ and ACT-512+ per workload.

    Counts scale linearly with the trace scale factor; the table reports
    both the measured value and the paper's target (at full scale).
    """
    sim = get_simulator()
    mapping = make_mapping("coffeelake", sim.config)
    rows = []
    totals = {"mpki": 0.0, "unique": 0, "hot64": 0, "hot512": 0}
    names = spec_workloads(workload_limit)
    for name in names:
        trace = get_trace(name, scale=scale)
        stats, _ = sim.window_stats(trace, mapping)
        profile = spec_profile(name)
        hot64 = stats.hot_rows(64)
        hot512 = stats.hot_rows(512)
        rows.append(
            [
                name,
                round(trace.mpki, 2),
                stats.unique_rows_touched,
                hot64,
                hot512,
                int(profile.hot64_rows * scale),
                int(profile.hot512_rows * scale),
            ]
        )
        totals["mpki"] += trace.mpki
        totals["unique"] += stats.unique_rows_touched
        totals["hot64"] += hot64
        totals["hot512"] += hot512
    count = len(names)
    rows.append(
        [
            "average",
            round(totals["mpki"] / count, 2),
            totals["unique"] // count,
            totals["hot64"] // count,
            totals["hot512"] // count,
            "-",
            "-",
        ]
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Workload characteristics (64 ms window, Coffee Lake mapping)",
        headers=[
            "workload",
            "mpki",
            "unique_rows",
            "act64+",
            "act512+",
            "target_act64+",
            "target_act512+",
        ],
        rows=rows,
        notes=[
            f"paper averages at full scale: 9528 ACT-64+, 206 ACT-512+ (scale here {scale})",
        ],
    )


__all__ = ["run_table2"]
