"""Sweep campaigns: tidy-format runs over configuration grids.

The registered experiments print the paper's exact artifacts; downstream
users usually want something else -- "run these workloads over that grid
of (mapping, scheme, threshold) and give me tidy records I can load
into pandas".  :class:`Campaign` provides that surface on top of the
shared simulator and caches.

Campaigns are *resilient*: every cell runs inside a
:class:`~repro.resilience.executor.ResilientExecutor` fault boundary, so
one malformed configuration or crashing cell yields a tidy error record
instead of aborting the sweep, and an optional JSONL checkpoint journal
makes an interrupted campaign resumable exactly where it stopped
(``Campaign.run(resume_from=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.dram.config import DRAMConfig
from repro.errors import SchemeConfigError
from repro.experiments.common import (
    MAPPING_NAMES,
    get_simulator,
    get_trace,
    make_mapping,
    validate_workload,
)
from repro.mapping.base import AddressMapping
from repro.perf.simulator import SCHEMES, RunResult
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.faults import check_result_invariants
from repro.resilience.journal import CheckpointJournal


@dataclass(frozen=True)
class MappingSpec:
    """One mapping configuration in a sweep grid."""

    kind: str
    gang_size: int = 4
    remap_rate: float = 0.01
    segments: int = 1

    @property
    def label(self) -> str:
        if self.kind in ("rubix-s", "rubix-d", "keyed-xor", "stride"):
            return f"{self.kind}-gs{self.gang_size}"
        return self.kind


@dataclass
class Campaign:
    """A cartesian sweep over workloads x mappings x schemes x thresholds.

    Example::

        campaign = Campaign(
            workloads=["gcc", "mcf"],
            mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", 4)],
            schemes=["aqua", "blockhammer"],
            thresholds=[1024, 128],
            scale=0.1,
        )
        records = campaign.run()
        # -> list of dicts, one per cell, ready for DataFrame(records)

    All grid coordinates are validated in ``__post_init__`` -- unknown
    workload, mapping, or scheme names raise typed configuration errors
    listing the valid options *before* any cell runs.
    """

    workloads: Sequence[str]
    mappings: Sequence[MappingSpec]
    schemes: Sequence[str] = ("none",)
    thresholds: Sequence[int] = (128,)
    scale: float = 0.2
    config: Optional[DRAMConfig] = None
    #: Scale multiplier the graceful-degradation fallback re-runs with
    #: when a cell exceeds its budget (None disables the fallback).
    degrade_scale_factor: Optional[float] = 0.5
    _mapping_cache: Dict[MappingSpec, AddressMapping] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Cells actually simulated by this instance (resume skips count 0).
    cells_executed: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.mappings:
            raise ValueError("campaign needs at least one mapping")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        for workload in self.workloads:
            validate_workload(workload)
        for spec in self.mappings:
            if spec.kind not in MAPPING_NAMES:
                # Same typed error (and option list) make_mapping raises,
                # but before any cell has burned simulation time.
                make_mapping(spec.kind)
        for scheme in self.schemes:
            if scheme not in SCHEMES:
                raise SchemeConfigError(
                    f"unknown scheme '{scheme}'; known: {', '.join(SCHEMES)}",
                    scheme=scheme,
                )

    def size(self) -> int:
        """Number of cells in the grid."""
        return (
            len(self.workloads)
            * len(self.mappings)
            * len(self.schemes)
            * len(self.thresholds)
        )

    def _mapping(self, spec: MappingSpec) -> AddressMapping:
        # Keyed on the full (frozen, hashable) spec: two specs differing
        # in any field get distinct mappings, identical specs share one.
        if spec not in self._mapping_cache:
            sim = get_simulator(self.config)
            self._mapping_cache[spec] = make_mapping(
                spec.kind,
                sim.config,
                gang_size=spec.gang_size,
                remap_rate=spec.remap_rate,
                segments=spec.segments,
            )
        return self._mapping_cache[spec]

    def cells(self) -> Iterable[tuple]:
        """The grid coordinates, in deterministic order."""
        return product(self.workloads, self.mappings, self.schemes, self.thresholds)

    def cell_key(self, workload: str, spec: MappingSpec, scheme: str, t_rh: int) -> str:
        """Canonical journal/retry key for one cell (stable across runs)."""
        return (
            f"{workload}|{spec.kind}|gs{spec.gang_size}|rr{spec.remap_rate}"
            f"|seg{spec.segments}|{scheme}|trh{t_rh}|scale{self.scale}"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        executor: Optional[ResilientExecutor] = None,
        journal: Optional[Union[str, Path, CheckpointJournal]] = None,
        resume_from: Optional[Union[str, Path, CheckpointJournal]] = None,
        simulator=None,
    ) -> List[dict]:
        """Execute the sweep; returns one tidy record per cell.

        Args:
            executor: Fault boundary each cell runs in (a default
                :class:`ResilientExecutor` when omitted).  Failing cells
                yield records with ``status="error"`` plus the typed
                error class -- the sweep always completes.
            journal: Checkpoint journal to write (path or instance).  An
                existing file at the path is restarted from scratch.
            resume_from: Journal of a previous, interrupted run; its
                completed cells are returned as-is without re-running,
                and newly-completed cells are appended to it.  Mutually
                exclusive with ``journal``.
            simulator: Override the shared simulator (used by the
                fault-injection harness).

        Raises:
            ValueError: Both ``journal`` and ``resume_from`` given.
        """
        if journal is not None and resume_from is not None:
            raise ValueError("pass either journal= (fresh) or resume_from=, not both")
        checkpoint, completed = self._checkpoint(journal, resume_from)
        executor = executor or ResilientExecutor()
        sim = simulator or get_simulator(self.config)

        records: List[dict] = []
        for workload, spec, scheme, t_rh in self.cells():
            key = self.cell_key(workload, spec, scheme, t_rh)
            if key in completed:
                records.append(completed[key])
                continue
            outcome = executor.execute(
                key,
                lambda: self._run_cell(sim, workload, spec, scheme, t_rh, self.scale),
                degrade=self._degrade_fn(sim, workload, spec, scheme, t_rh),
                validate=check_result_invariants,
            )
            record = self._record(workload, spec, scheme, t_rh, outcome)
            records.append(record)
            if checkpoint is not None:
                checkpoint.append(key, record)
        return records

    # ------------------------------------------------------------------
    def _checkpoint(self, journal, resume_from):
        """Resolve the journal arguments to (journal, completed-records)."""
        source = resume_from if resume_from is not None else journal
        if source is None:
            return None, {}
        checkpoint = (
            source
            if isinstance(source, CheckpointJournal)
            else CheckpointJournal(source)
        )
        if resume_from is None:
            checkpoint.reset()
        return checkpoint, checkpoint.completed()

    def _run_cell(
        self, sim, workload: str, spec: MappingSpec, scheme: str, t_rh: int, scale: float
    ) -> RunResult:
        trace = get_trace(workload, scale=scale)
        result = sim.run(trace, self._mapping(spec), scheme=scheme, t_rh=t_rh)
        self.cells_executed += 1
        return result

    def _degrade_fn(self, sim, workload: str, spec: MappingSpec, scheme: str, t_rh: int):
        if self.degrade_scale_factor is None:
            return None
        reduced = self.scale * self.degrade_scale_factor
        return lambda: self._run_cell(sim, workload, spec, scheme, t_rh, reduced)

    def _record(
        self,
        workload: str,
        spec: MappingSpec,
        scheme: str,
        t_rh: int,
        outcome: CellOutcome,
    ) -> dict:
        record = {
            "workload": workload,
            "mapping": spec.label,
            "scheme": scheme,
            "t_rh": t_rh,
            "status": outcome.status,
            "attempts": outcome.attempts,
        }
        if outcome.flags:
            record["flags"] = list(outcome.flags)
        if outcome.ok:
            result: RunResult = outcome.value
            # Plain python scalars only: journal records must round-trip
            # through JSON unchanged, so resumed sweeps return records
            # identical to uninterrupted ones.
            record.update(
                {
                    "normalized_performance": float(result.normalized_performance),
                    "slowdown_pct": float(result.slowdown_pct),
                    "hit_rate": float(result.hit_rate),
                    "activations": int(result.activations),
                    "hot_rows_64": int(result.hot_rows_64),
                    "hot_rows_512": int(result.hot_rows_512),
                    "mitigations": int(result.mitigations),
                    "remap_swaps": int(result.remap_swaps),
                    "t_mitigation_s": float(result.t_mitigation_s),
                }
            )
        record.update(outcome.error_fields())
        return record


__all__ = ["MappingSpec", "Campaign"]
