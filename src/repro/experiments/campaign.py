"""Sweep campaigns: tidy-format runs over configuration grids.

The registered experiments print the paper's exact artifacts; downstream
users usually want something else -- "run these workloads over that grid
of (mapping, scheme, threshold) and give me tidy records I can load
into pandas".  :class:`Campaign` provides that surface on top of the
shared simulator and caches.

Campaigns are *resilient*: every cell runs inside a
:class:`~repro.resilience.executor.ResilientExecutor` fault boundary, so
one malformed configuration or crashing cell yields a tidy error record
instead of aborting the sweep, and an optional JSONL checkpoint journal
makes an interrupted campaign resumable exactly where it stopped
(``Campaign.run(resume_from=...)``).

Campaigns are also *parallel*: ``Campaign.run(workers=N)`` dispatches
cells to a process pool (see :mod:`repro.parallel.executor`) whose
workers run the identical per-cell code path -- same fault boundary,
same records -- so serial and parallel sweeps of one grid produce
byte-identical results, and the same journal works for either mode.

Cells are independent by construction: mappings with *mutable* remap
state (Rubix-D with a nonzero remap rate) are built fresh, from their
seed, for every cell, so a cell's result never depends on which cells
ran before it -- the property that makes parallel == serial exact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.dram.config import DRAMConfig
from repro.errors import SchemeConfigError
from repro.experiments.common import (
    MAPPING_NAMES,
    get_simulator,
    get_trace,
    make_mapping,
    validate_workload,
)
from repro.mapping.base import AddressMapping
from repro.obs.runtime import METRICS, TRACER
from repro.perf.backends import validate_backend
from repro.perf.simulator import SCHEMES, RunResult
from repro.resilience.executor import CellOutcome, ResilientExecutor
from repro.resilience.faults import check_result_invariants
from repro.resilience.journal import CheckpointJournal


@dataclass(frozen=True)
class MappingSpec:
    """One mapping configuration in a sweep grid."""

    kind: str
    gang_size: int = 4
    remap_rate: float = 0.01
    segments: int = 1

    @property
    def label(self) -> str:
        if self.kind in ("rubix-s", "rubix-d", "keyed-xor", "stride"):
            return f"{self.kind}-gs{self.gang_size}"
        return self.kind


@dataclass
class Campaign:
    """A cartesian sweep over workloads x mappings x schemes x thresholds.

    Example::

        campaign = Campaign(
            workloads=["gcc", "mcf"],
            mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", 4)],
            schemes=["aqua", "blockhammer"],
            thresholds=[1024, 128],
            scale=0.1,
        )
        records = campaign.run()
        # -> list of dicts, one per cell, ready for DataFrame(records)

    All grid coordinates are validated in ``__post_init__`` -- unknown
    workload, mapping, or scheme names raise typed configuration errors
    listing the valid options *before* any cell runs.
    """

    workloads: Sequence[str]
    mappings: Sequence[MappingSpec]
    schemes: Sequence[str] = ("none",)
    thresholds: Sequence[int] = (128,)
    scale: float = 0.2
    config: Optional[DRAMConfig] = None
    #: Kernel tier the cells run on (see :mod:`repro.perf.backends`);
    #: None resolves ``REPRO_KERNEL_BACKEND`` / the numpy default.  All
    #: tiers are bit-identical, so the backend is deliberately absent
    #: from cell keys and stats-cache keys -- records and journals from
    #: different backends are interchangeable.
    backend: Optional[str] = None
    #: Scale multiplier the graceful-degradation fallback re-runs with
    #: when a cell exceeds its budget (None disables the fallback).
    degrade_scale_factor: Optional[float] = 0.5
    _mapping_cache: Dict[MappingSpec, AddressMapping] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Cells actually simulated by this instance (resume skips count 0).
    cells_executed: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.mappings:
            raise ValueError("campaign needs at least one mapping")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.backend is not None:
            validate_backend(self.backend)
        for workload in self.workloads:
            validate_workload(workload)
        for spec in self.mappings:
            if spec.kind not in MAPPING_NAMES:
                # Same typed error (and option list) make_mapping raises,
                # but before any cell has burned simulation time.
                make_mapping(spec.kind)
        for scheme in self.schemes:
            if scheme not in SCHEMES:
                raise SchemeConfigError(
                    f"unknown scheme '{scheme}'; known: {', '.join(SCHEMES)}",
                    scheme=scheme,
                )

    def size(self) -> int:
        """Number of cells in the grid."""
        return (
            len(self.workloads)
            * len(self.mappings)
            * len(self.schemes)
            * len(self.thresholds)
        )

    def _make_mapping(self, spec: MappingSpec) -> AddressMapping:
        sim = get_simulator(self.config, backend=self.backend)
        return make_mapping(
            spec.kind,
            sim.config,
            gang_size=spec.gang_size,
            remap_rate=spec.remap_rate,
            segments=spec.segments,
        )

    def _mapping(self, spec: MappingSpec) -> AddressMapping:
        # Keyed on the full (frozen, hashable) spec: two specs differing
        # in any field get distinct mappings, identical specs share one.
        if spec not in self._mapping_cache:
            self._mapping_cache[spec] = self._make_mapping(spec)
        return self._mapping_cache[spec]

    def _cell_mapping(self, spec: MappingSpec) -> AddressMapping:
        """The mapping instance one cell runs against.

        Stateless mappings are shared across cells; mappings whose remap
        state *evolves* while simulating (Rubix-D with remap_rate > 0)
        are built fresh from their seed per cell, so every cell is
        order-independent and parallel execution reproduces the serial
        records exactly.
        """
        if spec.kind == "rubix-d" and spec.remap_rate > 0.0:
            return self._make_mapping(spec)
        return self._mapping(spec)

    def cells(self) -> Iterable[tuple]:
        """The grid coordinates, in deterministic order."""
        return product(self.workloads, self.mappings, self.schemes, self.thresholds)

    def cell_key(self, workload: str, spec: MappingSpec, scheme: str, t_rh: int) -> str:
        """Canonical journal/retry key for one cell (stable across runs)."""
        return (
            f"{workload}|{spec.kind}|gs{spec.gang_size}|rr{spec.remap_rate}"
            f"|seg{spec.segments}|{scheme}|trh{t_rh}|scale{self.scale}"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        executor: Optional[ResilientExecutor] = None,
        journal: Optional[Union[str, Path, CheckpointJournal]] = None,
        resume_from: Optional[Union[str, Path, CheckpointJournal]] = None,
        simulator=None,
        workers: int = 1,
        stats_cache_dir: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
    ) -> List[dict]:
        """Execute the sweep; returns one tidy record per cell.

        Args:
            executor: Fault boundary each cell runs in (a default
                :class:`ResilientExecutor` when omitted).  Failing cells
                yield records with ``status="error"`` plus the typed
                error class -- the sweep always completes.
            journal: Checkpoint journal to write (path or instance).  An
                existing file at the path is restarted from scratch.
            resume_from: Journal of a previous, interrupted run; its
                completed cells are returned as-is without re-running,
                and newly-completed cells are appended to it.  Mutually
                exclusive with ``journal``.  Works identically in serial
                and parallel mode (the parent journals completions).
            simulator: Override the shared simulator (used by the
                fault-injection harness).
            workers: Process-pool size; ``workers > 1`` dispatches cells
                to a :class:`~repro.parallel.executor.ParallelExecutor`
                whose workers run the same per-cell fault boundary and
                produce records identical to a serial run.
            stats_cache_dir: Directory for a disk-persistent window-
                statistics cache shared across workers (and across
                runs); None keeps caches in-memory and per-process.
            mp_context: Multiprocessing start method for parallel mode
                ('fork', 'spawn', ...); None uses the platform default.

        Raises:
            ValueError: Both ``journal`` and ``resume_from`` given, a
                non-positive ``workers``, or per-worker overrides
                (``executor=``/``simulator=``) combined with
                ``workers > 1``.
        """
        if journal is not None and resume_from is not None:
            raise ValueError("pass either journal= (fresh) or resume_from=, not both")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1:
            if executor is not None or simulator is not None:
                raise ValueError(
                    "executor=/simulator= overrides are per-process and cannot"
                    " cross the pool boundary; run with workers=1 to use them"
                )
            from repro.parallel.executor import ParallelExecutor

            engine = ParallelExecutor(
                workers, stats_cache_dir=stats_cache_dir, mp_context=mp_context
            )
            return engine.run(self, journal=journal, resume_from=resume_from)

        checkpoint, completed = self._checkpoint(journal, resume_from)
        executor = executor or ResilientExecutor()
        sim = simulator or get_simulator(self.config, backend=self.backend)
        if stats_cache_dir is not None:
            sim.stats_cache.persist_to(stats_cache_dir)

        records: List[dict] = []
        with TRACER.span("campaign.run", cells=self.size(), workers=1):
            for workload, spec, scheme, t_rh in self.cells():
                key = self.cell_key(workload, spec, scheme, t_rh)
                if key in completed:
                    records.append(completed[key])
                    continue
                started = time.perf_counter()
                record = self.execute_cell(sim, executor, workload, spec, scheme, t_rh)
                records.append(record)
                if checkpoint is not None:
                    checkpoint.append(
                        key,
                        record,
                        duration_s=time.perf_counter() - started,
                        worker_id=f"p{os.getpid()}",
                    )
        return records

    def execute_cell(
        self,
        sim,
        executor: ResilientExecutor,
        workload: str,
        spec: MappingSpec,
        scheme: str,
        t_rh: int,
    ) -> dict:
        """Run one grid cell inside the fault boundary; returns its record.

        This is the single per-cell code path: the serial loop above and
        the parallel pool workers both call it, which is what guarantees
        record-for-record identical output between the two modes.
        """
        key = self.cell_key(workload, spec, scheme, t_rh)
        with TRACER.span(
            "campaign.cell",
            workload=workload,
            mapping=spec.label,
            scheme=scheme,
            t_rh=t_rh,
        ):
            outcome = executor.execute(
                key,
                lambda: self._run_cell(sim, workload, spec, scheme, t_rh, self.scale),
                degrade=self._degrade_fn(sim, workload, spec, scheme, t_rh),
                validate=check_result_invariants,
            )
        record = self._record(workload, spec, scheme, t_rh, outcome)
        if METRICS.enabled:
            METRICS.inc("campaign.cells", status=record["status"])
            METRICS.inc("campaign.activations", int(record.get("activations", 0)))
            METRICS.inc("campaign.mitigations", int(record.get("mitigations", 0)), scheme=scheme)
            METRICS.inc("campaign.remap_swaps", int(record.get("remap_swaps", 0)))
        return record

    def parallel_payload(self) -> dict:
        """Constructor kwargs that rebuild this campaign in a worker.

        Everything here is picklable and tiny (names, specs, numbers,
        the DRAM config); workers rebuild traces, mappings, and
        simulators locally via the per-process caches.
        """
        return {
            "workloads": list(self.workloads),
            "mappings": list(self.mappings),
            "schemes": list(self.schemes),
            "thresholds": list(self.thresholds),
            "scale": self.scale,
            "config": self.config,
            "backend": self.backend,
            "degrade_scale_factor": self.degrade_scale_factor,
        }

    # ------------------------------------------------------------------
    def _checkpoint(self, journal, resume_from):
        """Resolve the journal arguments to (journal, completed-records)."""
        source = resume_from if resume_from is not None else journal
        if source is None:
            return None, {}
        checkpoint = (
            source
            if isinstance(source, CheckpointJournal)
            else CheckpointJournal(source)
        )
        if resume_from is None:
            checkpoint.reset()
        return checkpoint, checkpoint.completed()

    def _run_cell(
        self, sim, workload: str, spec: MappingSpec, scheme: str, t_rh: int, scale: float
    ) -> RunResult:
        trace = get_trace(workload, scale=scale)
        result = sim.run(trace, self._cell_mapping(spec), scheme=scheme, t_rh=t_rh)
        self.cells_executed += 1
        return result

    def _degrade_fn(self, sim, workload: str, spec: MappingSpec, scheme: str, t_rh: int):
        if self.degrade_scale_factor is None:
            return None
        reduced = self.scale * self.degrade_scale_factor
        return lambda: self._run_cell(sim, workload, spec, scheme, t_rh, reduced)

    def _record(
        self,
        workload: str,
        spec: MappingSpec,
        scheme: str,
        t_rh: int,
        outcome: CellOutcome,
    ) -> dict:
        record = {
            "workload": workload,
            "mapping": spec.label,
            "scheme": scheme,
            "t_rh": t_rh,
            "status": outcome.status,
            "attempts": outcome.attempts,
        }
        if outcome.flags:
            record["flags"] = list(outcome.flags)
        if outcome.ok:
            result: RunResult = outcome.value
            # Plain python scalars only: journal records must round-trip
            # through JSON unchanged, so resumed sweeps return records
            # identical to uninterrupted ones.
            record.update(
                {
                    "normalized_performance": float(result.normalized_performance),
                    "slowdown_pct": float(result.slowdown_pct),
                    "hit_rate": float(result.hit_rate),
                    "activations": int(result.activations),
                    "hot_rows_64": int(result.hot_rows_64),
                    "hot_rows_512": int(result.hot_rows_512),
                    "mitigations": int(result.mitigations),
                    "remap_swaps": int(result.remap_swaps),
                    "t_mitigation_s": float(result.t_mitigation_s),
                }
            )
        record.update(outcome.error_fields())
        return record


def campaign_from_spec(spec: dict) -> Campaign:
    """Build a :class:`Campaign` from a JSON-friendly spec dict.

    The spec format the CLI's ``serve``/``submit`` subcommands accept::

        {
          "workloads": ["xz", "namd"],
          "mappings": ["coffeelake",
                       {"kind": "rubix-d", "gang_size": 4, "remap_rate": 0.01}],
          "schemes": ["aqua", "blockhammer"],
          "thresholds": [128, 512],
          "scale": 0.05
        }

    Mappings may be bare kind strings (defaults for the other fields) or
    dicts of :class:`MappingSpec` fields.  Unknown top-level or mapping
    keys raise ``ValueError`` up front; grid validation (workload,
    mapping, and scheme names) happens in ``Campaign.__post_init__`` as
    usual.

    Workload entries may also be self-contained ``playbook:<json>``
    attack-playbook names (see :mod:`repro.workloads.playbook` and
    :func:`repro.workloads.playbook.workload_name_for`), so declarative
    attack sweeps ride the same spec format, journals, pool workers,
    and service wire protocol as every other campaign.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"campaign spec must be an object, got {type(spec).__name__}")
    allowed = {
        "workloads",
        "mappings",
        "schemes",
        "thresholds",
        "scale",
        "backend",
        "tenant",
    }
    unknown = set(spec) - allowed
    if unknown:
        raise ValueError(
            f"unknown campaign spec key(s): {', '.join(sorted(unknown))};"
            f" allowed: {', '.join(sorted(allowed))}"
        )
    mappings: List[MappingSpec] = []
    for entry in spec.get("mappings", []):
        if isinstance(entry, str):
            mappings.append(MappingSpec(entry))
        elif isinstance(entry, dict):
            try:
                mappings.append(MappingSpec(**entry))
            except TypeError as error:
                raise ValueError(f"bad mapping spec {entry!r}: {error}") from error
        else:
            raise ValueError(f"mapping entries must be strings or objects, got {entry!r}")
    kwargs = {
        "workloads": list(spec.get("workloads", [])),
        "mappings": mappings,
    }
    if "schemes" in spec:
        kwargs["schemes"] = list(spec["schemes"])
    if "thresholds" in spec:
        kwargs["thresholds"] = [int(t) for t in spec["thresholds"]]
    if "scale" in spec:
        kwargs["scale"] = float(spec["scale"])
    if "backend" in spec:
        kwargs["backend"] = str(spec["backend"])
    return Campaign(**kwargs)


__all__ = ["MappingSpec", "Campaign", "campaign_from_spec"]
