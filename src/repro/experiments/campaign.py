"""Sweep campaigns: tidy-format runs over configuration grids.

The registered experiments print the paper's exact artifacts; downstream
users usually want something else -- "run these workloads over that grid
of (mapping, scheme, threshold) and give me tidy records I can load
into pandas".  :class:`Campaign` provides that surface on top of the
shared simulator and caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence

from repro.dram.config import DRAMConfig
from repro.experiments.common import get_simulator, get_trace, make_mapping
from repro.perf.simulator import RunResult


@dataclass(frozen=True)
class MappingSpec:
    """One mapping configuration in a sweep grid."""

    kind: str
    gang_size: int = 4
    remap_rate: float = 0.01
    segments: int = 1

    @property
    def label(self) -> str:
        if self.kind in ("rubix-s", "rubix-d", "keyed-xor", "stride"):
            return f"{self.kind}-gs{self.gang_size}"
        return self.kind


@dataclass
class Campaign:
    """A cartesian sweep over workloads x mappings x schemes x thresholds.

    Example::

        campaign = Campaign(
            workloads=["gcc", "mcf"],
            mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", 4)],
            schemes=["aqua", "blockhammer"],
            thresholds=[1024, 128],
            scale=0.1,
        )
        records = campaign.run()
        # -> list of dicts, one per cell, ready for DataFrame(records)
    """

    workloads: Sequence[str]
    mappings: Sequence[MappingSpec]
    schemes: Sequence[str] = ("none",)
    thresholds: Sequence[int] = (128,)
    scale: float = 0.2
    config: Optional[DRAMConfig] = None
    _mapping_cache: Dict[str, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.mappings:
            raise ValueError("campaign needs at least one mapping")

    def size(self) -> int:
        """Number of cells in the grid."""
        return (
            len(self.workloads)
            * len(self.mappings)
            * len(self.schemes)
            * len(self.thresholds)
        )

    def _mapping(self, spec: MappingSpec):
        key = spec.label + f"/{spec.remap_rate}/{spec.segments}"
        if key not in self._mapping_cache:
            sim = get_simulator(self.config)
            self._mapping_cache[key] = make_mapping(
                spec.kind,
                sim.config,
                gang_size=spec.gang_size,
                remap_rate=spec.remap_rate,
                segments=spec.segments,
            )
        return self._mapping_cache[key]

    def cells(self) -> Iterable[tuple]:
        """The grid coordinates, in deterministic order."""
        return product(self.workloads, self.mappings, self.schemes, self.thresholds)

    def run(self) -> List[dict]:
        """Execute the sweep; returns one tidy record per cell."""
        sim = get_simulator(self.config)
        records = []
        for workload, spec, scheme, t_rh in self.cells():
            trace = get_trace(workload, scale=self.scale)
            result = sim.run(trace, self._mapping(spec), scheme=scheme, t_rh=t_rh)
            records.append(self._record(workload, spec, scheme, t_rh, result))
        return records

    @staticmethod
    def _record(workload: str, spec: MappingSpec, scheme: str, t_rh: int, result: RunResult) -> dict:
        return {
            "workload": workload,
            "mapping": spec.label,
            "scheme": scheme,
            "t_rh": t_rh,
            "normalized_performance": result.normalized_performance,
            "slowdown_pct": result.slowdown_pct,
            "hit_rate": result.hit_rate,
            "activations": result.activations,
            "hot_rows_64": result.hot_rows_64,
            "hot_rows_512": result.hot_rows_512,
            "mitigations": result.mitigations,
            "remap_swaps": result.remap_swaps,
            "t_mitigation_s": result.t_mitigation_s,
        }


__all__ = ["MappingSpec", "Campaign"]
