"""Sections 4.9 and 5.7: DRAM power overheads of Rubix-S and Rubix-D."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

GANG_SIZES = [1, 2, 4]


def _power_table(experiment_id: str, mapping_kind: str, scale: float, workload_limit):
    sim = get_simulator()
    baseline = make_mapping("coffeelake", sim.config)
    names = spec_workloads(workload_limit)

    def total_power(mapping) -> float:
        total = 0.0
        for workload in names:
            trace = get_trace(workload, scale=scale)
            total += sim.power(trace, mapping).total_w
        return total / len(names)

    base_power = total_power(baseline)
    rows = []
    for gs in GANG_SIZES:
        mapping = make_mapping(mapping_kind, sim.config, gang_size=gs)
        power = total_power(mapping)
        rows.append(
            [
                f"GS{gs}",
                round(base_power, 3),
                round(power, 3),
                round((power - base_power) * 1000, 0),
                round(100 * (power - base_power) / base_power, 1),
            ]
        )
    title = "Rubix-S" if mapping_kind == "rubix-s" else "Rubix-D"
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{title} DRAM power vs unprotected Coffee Lake",
        headers=["gang_size", "baseline_w", "rubix_w", "delta_mw", "delta_%"],
        rows=rows,
        notes=[
            "paper Rubix-S: +120 mW (4.3%) at GS4, +300 mW (10.6%) at GS1",
            "paper Rubix-D: +130 mW (4.2%) GS4, +180 mW (5.8%) GS2, +320 mW (10.9%) GS1",
        ],
    )


@register("sec49", "Rubix-S power overhead", default_scale=0.4)
def run_sec49(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """DRAM power increase of Rubix-S due to extra activations."""
    return _power_table("sec49", "rubix-s", scale, workload_limit)


@register("sec57", "Rubix-D power overhead", default_scale=0.4)
def run_sec57(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """DRAM power increase of Rubix-D (activations + swap traffic)."""
    return _power_table("sec57", "rubix-d", scale, workload_limit)


__all__ = ["run_sec49", "run_sec57"]
