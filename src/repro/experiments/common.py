"""Shared plumbing for the experiment runners.

Process-level caches keep the expensive artifacts -- generated traces
and per-(trace, mapping) window statistics -- shared across experiments,
so running the whole suite costs one analysis pass per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_keyed_xor import KeyedXorMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig, baseline_config, multichannel_config
from repro.errors import MappingConfigError, WorkloadConfigError
from repro.mapping.base import AddressMapping
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping
from repro.mapping.stride import LargeStrideMapping
from repro.obs.runtime import METRICS, TRACER
from repro.parallel.cache import StatsCache, default_persist_dir
from repro.perf.backends import resolve_backend
from repro.perf.simulator import Simulator
from repro.workloads.mixes import mix_names, mix_trace
from repro.workloads.playbook import (
    compile_playbook,
    is_playbook_workload,
    spec_from_workload,
)
from repro.workloads.spec import spec_names, spec_trace
from repro.workloads.stream_suite import stream_suite_names, stream_suite_trace
from repro.workloads.trace import Trace


@dataclass
class ExperimentResult:
    """Formatted output of one experiment (one table or figure)."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        """Render as an aligned text table."""
        cells = [self.headers] + [[_fmt(v) for v in row] for row in self.rows]
        widths = [max(len(str(r[i])) for r in cells) for i in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (for --json exports and tooling)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to JSON text."""
        import json

        return json.dumps(self.to_dict(), indent=indent, default=str)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name (used by tests)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_map(self, key_header: str = None) -> Dict[object, List[object]]:
        """Index rows by their first (or named) column."""
        index = 0 if key_header is None else self.headers.index(key_header)
        return {row[index]: row for row in self.rows}


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


# ---------------------------------------------------------------------------
# Shared caches
# ---------------------------------------------------------------------------
_SIMULATORS: Dict[Tuple, Simulator] = {}
_TRACES: Dict[Tuple, Trace] = {}


def get_simulator(
    config: Optional[DRAMConfig] = None, *, backend: Optional[str] = None
) -> Simulator:
    """Process-wide simulator for a (geometry, kernel backend) pair.

    When the ``REPRO_STATS_CACHE`` environment variable names a
    directory, the simulator's window-statistics cache persists there --
    pool workers and sequential suite runs then share one content-keyed
    cache on disk.  ``backend`` selects the kernel tier (see
    :mod:`repro.perf.backends`); all tiers are bit-identical, so cached
    statistics are shared across backends even though simulators differ.
    """
    config = config or baseline_config()
    resolved = resolve_backend(backend)
    key = (config.channels, config.ranks, config.banks, config.rows_per_bank, resolved)
    if key not in _SIMULATORS:
        _SIMULATORS[key] = Simulator(
            config,
            stats_cache=StatsCache(persist_dir=default_persist_dir()),
            backend=resolved,
        )
    return _SIMULATORS[key]


def workload_names() -> List[str]:
    """Every workload name :func:`get_trace` accepts, in one namespace."""
    return (
        list(spec_names())
        + mix_names()
        + [f"stream-{kernel}" for kernel in stream_suite_names()]
    )


def validate_workload(name: str) -> str:
    """Fail fast on unknown workload names, listing the valid options.

    ``playbook:<json>`` names carry their whole spec inline (see
    :mod:`repro.workloads.playbook`); they are validated structurally
    here -- malformed JSON or bad spec fields fail before any cell runs.
    ``file:<path>`` names point at persisted trace files (npz bundles or
    zero-copy raw ``.rtr`` traces, see :mod:`repro.workloads.trace_io`);
    the path must exist up front so a sweep never dies mid-grid on a
    typo'd trace path.
    """
    if name.startswith("file:"):
        from pathlib import Path

        if not Path(name[5:]).is_file():
            raise WorkloadConfigError(
                f"trace file workload points at no file: {name[5:]!r}", workload=name
            )
        return name
    if is_playbook_workload(name):
        try:
            spec_from_workload(name)
            _playbook_mapping_kwargs(spec_from_workload(name).get("target_mapping"))
        except ValueError as error:
            raise WorkloadConfigError(
                f"bad playbook workload: {error}", workload=name
            ) from error
        return name
    known = workload_names()
    if name not in known:
        raise WorkloadConfigError(
            f"unknown workload '{name}'; known: {', '.join(known)}",
            workload=name,
        )
    return name


def _playbook_mapping_kwargs(target) -> Optional[dict]:
    """Normalize a spec's ``target_mapping`` into make_mapping kwargs.

    Accepts a mapping short name or a dict of
    ``{kind, gang_size, seed, remap_rate, segments}``; None defaults to
    the Coffee Lake baseline (the mapping a no-knowledge-of-Rubix
    attacker would target).  Returns None for line-space specs that need
    no mapping at all.
    """
    if target is None:
        return {"name": "coffeelake"}
    if isinstance(target, str):
        if target not in MAPPING_NAMES:
            raise ValueError(
                f"unknown target_mapping '{target}'; known: {', '.join(MAPPING_NAMES)}"
            )
        return {"name": target}
    if isinstance(target, dict):
        allowed = {"kind", "gang_size", "seed", "remap_rate", "segments"}
        unknown = set(target) - allowed
        if unknown:
            raise ValueError(
                f"unknown target_mapping key(s): {', '.join(sorted(unknown))};"
                f" allowed: {', '.join(sorted(allowed))}"
            )
        if "kind" not in target:
            raise ValueError("target_mapping dicts need a 'kind'")
        kwargs = {"name": str(target["kind"])}
        if kwargs["name"] not in MAPPING_NAMES:
            raise ValueError(
                f"unknown target_mapping '{kwargs['name']}';"
                f" known: {', '.join(MAPPING_NAMES)}"
            )
        for key in ("gang_size", "seed", "segments"):
            if key in target:
                kwargs[key] = int(target[key])
        if "remap_rate" in target:
            kwargs["remap_rate"] = float(target["remap_rate"])
        return kwargs
    raise ValueError(
        f"target_mapping must be a mapping name or an object, got {target!r}"
    )


def _playbook_trace(name: str, *, scale: float) -> Trace:
    """Compile a ``playbook:<json>`` workload into its trace.

    The spec's ``target_mapping`` names the mapping the *attacker*
    constructs the pattern against (default Coffee Lake, on the baseline
    geometry); the campaign then evaluates the resulting fixed trace
    under each grid mapping -- exactly the threat-model split the Rubix
    analysis needs (construct vs evaluate mappings may differ).
    """
    spec = spec_from_workload(name)
    mapping = None
    if spec.get("address_space", "row") != "line":
        kwargs = _playbook_mapping_kwargs(spec.get("target_mapping"))
        mapping = make_mapping(**kwargs)
    return compile_playbook(spec, mapping, scale=scale)


def get_trace(
    name: str,
    *,
    scale: float = 0.5,
    cores: int = 4,
    line_addr_bits: int = 28,
) -> Trace:
    """Cached workload trace by name.

    Accepts SPEC names ('blender'), mixes ('mix3'), STREAM kernels
    ('stream-copy'), and persisted trace files ('file:/path/to.rtr'),
    in one namespace.  Unknown names raise
    :class:`~repro.errors.WorkloadConfigError` listing the options.

    ``file:`` workloads load as written -- ``scale``/``cores`` describe
    generation and do not re-scale a persisted trace; raw ``.rtr``
    files open as zero-copy memmaps, so even multi-hundred-million-line
    inputs cost O(1) memory here.
    """
    validate_workload(name)
    key = (name, round(scale, 6), cores, line_addr_bits)
    if key in _TRACES:
        return _TRACES[key]
    with TRACER.span("trace.gen", workload=name, scale=scale):
        if name.startswith("file:"):
            from repro.workloads.trace_io import load_trace

            trace = load_trace(name[5:])
        elif is_playbook_workload(name):
            trace = _playbook_trace(name, scale=scale)
        elif name.startswith("mix"):
            trace = mix_trace(name, line_addr_bits=line_addr_bits, scale=scale)
        elif name.startswith("stream-"):
            trace = stream_suite_trace(
                name.split("-", 1)[1], line_addr_bits=line_addr_bits, scale=scale
            )
        else:
            trace = spec_trace(
                name, line_addr_bits=line_addr_bits, scale=scale, cores=cores
            )
    # Playbook names embed whole JSON specs (and file names embed
    # paths); fold each family into one label value so a sweep cannot
    # blow the metric-cardinality cap.
    if is_playbook_workload(name):
        label = "playbook"
    elif name.startswith("file:"):
        label = "file"
    else:
        label = name
    METRICS.inc("trace.generated", workload=label)
    _TRACES[key] = trace
    return trace


def clear_caches() -> None:
    """Drop all cached traces and simulators (tests use this)."""
    _SIMULATORS.clear()
    _TRACES.clear()


# ---------------------------------------------------------------------------
# Mapping factory
# ---------------------------------------------------------------------------
#: Mapping names accepted by :func:`make_mapping`.
MAPPING_NAMES = (
    "coffeelake",
    "skylake",
    "mop",
    "stride",
    "linear",
    "rubix-s",
    "rubix-d",
    "keyed-xor",
)


def make_mapping(
    name: str,
    config: Optional[DRAMConfig] = None,
    *,
    gang_size: int = 4,
    seed: int = 2024,
    remap_rate: float = 0.01,
    segments: int = 1,
) -> AddressMapping:
    """Construct a mapping by short name."""
    config = config or baseline_config()
    if name == "coffeelake":
        return CoffeeLakeMapping(config)
    if name == "skylake":
        return SkylakeMapping(config)
    if name == "mop":
        return MOPMapping(config)
    if name == "stride":
        return LargeStrideMapping(config, gang_size=gang_size)
    if name == "linear":
        return LinearMapping(config)
    if name == "rubix-s":
        return RubixSMapping(config, gang_size=gang_size, seed=seed)
    if name == "rubix-d":
        return RubixDMapping(
            config, gang_size=gang_size, seed=seed, remap_rate=remap_rate, segments=segments
        )
    if name == "keyed-xor":
        return KeyedXorMapping(config, gang_size=gang_size, seed=seed)
    raise MappingConfigError(
        f"unknown mapping '{name}'; known: {', '.join(MAPPING_NAMES)}",
        mapping=name,
    )


#: The gang size each scheme performs best with (Sections 4.6 / 5.9).
BEST_GANG_SIZE_S = {"aqua": 4, "srs": 4, "blockhammer": 1}
BEST_GANG_SIZE_D = {"aqua": 4, "srs": 2, "blockhammer": 1}


def spec_workloads(limit: Optional[int] = None) -> Sequence[str]:
    """The 18 SPEC workload names (optionally truncated for quick runs)."""
    names = spec_names()
    return names[:limit] if limit else names


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (paper's 'Mean' bars)."""
    if not values:
        raise ValueError("average of empty sequence")
    return sum(values) / len(values)


__all__ = [
    "ExperimentResult",
    "get_simulator",
    "get_trace",
    "workload_names",
    "validate_workload",
    "clear_caches",
    "make_mapping",
    "MAPPING_NAMES",
    "BEST_GANG_SIZE_S",
    "BEST_GANG_SIZE_D",
    "spec_workloads",
    "average",
    "multichannel_config",
]
