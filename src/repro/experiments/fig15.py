"""Figure 15: scaled-up 8-core systems with 2 and 4 channels (32 GB)."""

from __future__ import annotations

from repro.experiments.common import (
    BEST_GANG_SIZE_D,
    BEST_GANG_SIZE_S,
    ExperimentResult,
    average,
    get_simulator,
    get_trace,
    make_mapping,
    multichannel_config,
)
from repro.experiments.registry import register

SCHEMES = ["aqua", "srs", "blockhammer"]
T_RH = 128

#: The multi-channel evaluation uses a subset of workloads (§5.12).
FIG15_WORKLOADS = [
    "blender",
    "lbm",
    "gcc",
    "cactuBSSN",
    "mcf",
    "roms",
    "perlbench",
    "xz",
    "deepsjeng",
    "bwaves",
]


@register("fig15", "Multi-channel 8-core systems", default_scale=0.25)
def run_fig15(scale: float = 0.25, workload_limit: int = None) -> ExperimentResult:
    """Average normalized performance for 2- and 4-channel systems."""
    names = FIG15_WORKLOADS[:workload_limit] if workload_limit else FIG15_WORKLOADS
    rows = []
    for channels in (2, 4):
        config = multichannel_config(channels)
        sim = get_simulator(config)
        bits = config.line_addr_bits
        coffee = make_mapping("coffeelake", config)
        for scheme in SCHEMES:
            mappings = {
                "coffeelake": coffee,
                "rubix_s": make_mapping(
                    "rubix-s", config, gang_size=BEST_GANG_SIZE_S[scheme]
                ),
                "rubix_d": make_mapping(
                    "rubix-d", config, gang_size=BEST_GANG_SIZE_D[scheme]
                ),
            }
            row: list = [f"{channels}ch", scheme]
            for label in ("coffeelake", "rubix_s", "rubix_d"):
                perfs = []
                for workload in names:
                    trace = get_trace(
                        workload, scale=scale, cores=8, line_addr_bits=bits
                    )
                    result = sim.run(
                        trace,
                        mappings[label],
                        scheme=scheme,
                        t_rh=T_RH,
                        baseline_mapping=coffee,
                    )
                    perfs.append(result.normalized_performance)
                row.append(round(average(perfs), 3))
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig15",
        title=f"8-core multi-channel normalized performance at T_RH={T_RH}",
        headers=["channels", "scheme", "coffeelake", "rubix_s", "rubix_d"],
        rows=rows,
        notes=[
            "paper: Intel mappings 15%/45%/380% slowdown (AQUA/SRS/BH at 4ch); Rubix 1-4%",
        ],
    )


__all__ = ["run_fig15", "FIG15_WORKLOADS"]
