"""Markdown report generation from experiment results.

``rubix-experiment run all --json results/`` leaves one JSON file per
experiment; :func:`build_report` turns that directory (or a list of
in-memory results) into a single Markdown report with tables -- the
mechanism behind regenerating an EXPERIMENTS.md-style document from a
fresh campaign.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.experiments.common import ExperimentResult


def result_from_dict(data: dict) -> ExperimentResult:
    """Inverse of :meth:`ExperimentResult.to_dict`."""
    for key in ("experiment_id", "title", "headers", "rows"):
        if key not in data:
            raise ValueError(f"not an experiment result: missing '{key}'")
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        headers=list(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        notes=list(data.get("notes", [])),
    )


def load_results(directory: Union[str, Path]) -> List[ExperimentResult]:
    """Load every ``*.json`` experiment result in a directory, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    results = []
    for path in sorted(directory.glob("*.json")):
        results.append(result_from_dict(json.loads(path.read_text())))
    if not results:
        raise ValueError(f"no experiment JSON files in {directory}")
    return results


def _markdown_table(result: ExperimentResult) -> str:
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value).replace("|", "\\|")

    lines = ["| " + " | ".join(result.headers) + " |"]
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def build_report(
    results: Iterable[ExperimentResult],
    *,
    title: str = "Rubix reproduction report",
) -> str:
    """Render results into one Markdown document."""
    results = list(results)
    if not results:
        raise ValueError("no results to report")
    parts = [f"# {title}", ""]
    parts.append("## Contents")
    for result in results:
        parts.append(f"- [{result.experiment_id}](#{result.experiment_id}): {result.title}")
    parts.append("")
    for result in results:
        parts.append(f"## {result.experiment_id}")
        parts.append("")
        parts.append(f"**{result.title}**")
        parts.append("")
        parts.append(_markdown_table(result))
        for note in result.notes:
            parts.append("")
            parts.append(f"> {note}")
        parts.append("")
    return "\n".join(parts)


def write_report(
    directory: Union[str, Path],
    output: Union[str, Path],
    *,
    title: str = "Rubix reproduction report",
) -> Path:
    """Load a results directory and write the Markdown report."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(build_report(load_results(directory), title=title))
    return output


__all__ = ["result_from_dict", "load_results", "build_report", "write_report"]
