"""Figure 7: hot rows per workload for Intel mappings vs Rubix-S (GS4)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    get_simulator,
    get_trace,
    make_mapping,
    spec_workloads,
)
from repro.experiments.registry import register

MAPPINGS = ["coffeelake", "skylake", "rubix-s"]


@register("fig7", "Hot rows: Intel mappings vs Rubix-S (GS4)", default_scale=0.4)
def run_fig7(scale: float = 0.4, workload_limit: int = None) -> ExperimentResult:
    """ACT-64+ hot rows per workload under each mapping."""
    sim = get_simulator()
    mappings = {
        "coffeelake": make_mapping("coffeelake", sim.config),
        "skylake": make_mapping("skylake", sim.config),
        "rubix-s": make_mapping("rubix-s", sim.config, gang_size=4),
    }
    rows = []
    sums = {name: 0 for name in MAPPINGS}
    names = spec_workloads(workload_limit)
    for workload in names:
        trace = get_trace(workload, scale=scale)
        row: list = [workload]
        for mapping_name in MAPPINGS:
            stats, _ = sim.window_stats(trace, mappings[mapping_name])
            hot = stats.hot_rows(64)
            row.append(hot)
            sums[mapping_name] += hot
        rows.append(row)
    mean_row = ["mean"] + [round(sums[m] / len(names), 1) for m in MAPPINGS]
    rows.append(mean_row)
    reduction = (
        sums["coffeelake"] / sums["rubix-s"] if sums["rubix-s"] else float("inf")
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Hot rows (ACT-64+) per workload",
        headers=["workload", "coffeelake", "skylake", "rubix_s_gs4"],
        rows=rows,
        notes=[
            f"Coffee Lake / Rubix-S hot-row reduction: {reduction:.0f}x (paper: ~220x)",
            "paper means: Coffee Lake 7.6K, Skylake 7.2K, Rubix-S(GS4) 33",
        ],
    )


__all__ = ["run_fig7"]
