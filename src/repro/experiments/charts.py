"""ASCII bar charts for experiment results.

The paper's figures are bar charts; ``rubix-experiment run <id> --chart``
renders a numeric column of the regenerated table as horizontal bars so
the shape (who wins, by what factor) is visible in a terminal without
any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import ExperimentResult

#: Width of the bar area in characters.
BAR_WIDTH = 48


def _numeric_columns(result: ExperimentResult) -> List[int]:
    """Indices of columns whose values are all numeric."""
    numeric = []
    for index in range(len(result.headers)):
        values = [row[index] for row in result.rows]
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            numeric.append(index)
    return numeric


def render_bars(
    result: ExperimentResult,
    column: Optional[str] = None,
    *,
    width: int = BAR_WIDTH,
    log_scale: bool = False,
) -> str:
    """Render one numeric column of a result as labelled ASCII bars.

    Args:
        result: The experiment result to chart.
        column: Header of the column to chart; defaults to the first
            all-numeric column.
        width: Maximum bar length in characters.
        log_scale: Use log10 bars (hot-row charts span 5 decades).
    """
    numeric = _numeric_columns(result)
    if not numeric:
        raise ValueError(f"{result.experiment_id} has no numeric column to chart")
    index = result.headers.index(column) if column else numeric[0]
    if index not in numeric:
        raise ValueError(f"column '{result.headers[index]}' is not numeric")

    import math

    labels = [str(row[0]) for row in result.rows]
    values = [float(row[index]) for row in result.rows]

    def magnitude(value: float) -> float:
        if log_scale:
            return math.log10(value + 1.0)
        return value

    peak = max((magnitude(v) for v in values), default=0.0)
    label_width = max(len(label) for label in labels)
    lines = [f"-- {result.headers[index]} ({'log' if log_scale else 'linear'} scale) --"]
    for label, value in zip(labels, values):
        bar = "#" * (round(width * magnitude(value) / peak) if peak > 0 else 0)
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)} {value:g}")
    return "\n".join(lines)


__all__ = ["render_bars", "BAR_WIDTH"]
