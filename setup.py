"""Setuptools shim.

The canonical build configuration lives in pyproject.toml; this file
exists so environments without the ``wheel`` package (offline machines)
can still do ``pip install -e .`` / ``python setup.py develop``.
"""

from setuptools import setup

setup()
