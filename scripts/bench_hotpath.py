#!/usr/bin/env python
"""Benchmark the fast-tier hot-path kernels and write BENCH_hotpath.json.

Times each vectorized kernel against its in-tree pre-optimization
reference on a synthetic mixed window (10M lines by default):

* Rubix-D chunk translation (gather vs per-engine masked loop),
* trace analysis (counting kernels vs argsort/np.unique),
* remap sweep advancement (closed form vs per-episode walk),
* the end-to-end dynamic window combining all three.

Every pair is asserted bit-identical before its timing is reported, so
this doubles as an equivalence regression check -- ``--quick`` runs a
small window for exactly that purpose in CI (no timing gate).

Usage:
    PYTHONPATH=src python scripts/bench_hotpath.py            # full 10M run
    PYTHONPATH=src python scripts/bench_hotpath.py --quick    # CI equivalence
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.perf.hotpath_bench import (  # noqa: E402
    DEFAULT_LINES,
    DEFAULT_SEED,
    format_report,
    run_benchmarks,
)

#: --quick window length: big enough that every kernel takes a vector
#: path (multiple chunks, an epoch-crossing remap call), small enough
#: for a few seconds of CI time.
QUICK_LINES = 400_000


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--lines",
        type=int,
        default=DEFAULT_LINES,
        help=f"window length in line addresses (default {DEFAULT_LINES:,})",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per kernel; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--seed",
        type=lambda s: int(s, 0),
        default=DEFAULT_SEED,
        help="trace/mapping seed (default %(default)#x)",
    )
    parser.add_argument(
        "--gang-size", type=int, default=4, help="Rubix-D gang size (default 4)"
    )
    parser.add_argument(
        "--segments", type=int, default=1, help="v-segments per v-group (default 1)"
    )
    parser.add_argument(
        "--chunk-lines",
        type=int,
        default=1 << 20,
        help="dynamic-window chunk size (default 2^20)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"equivalence-check mode: {QUICK_LINES:,} lines, 1 rep (for CI)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="report path (default BENCH_hotpath.json); '-' skips writing",
    )
    args = parser.parse_args(argv)

    lines = QUICK_LINES if args.quick else args.lines
    reps = 1 if args.quick else args.reps
    report = run_benchmarks(
        lines=lines,
        reps=reps,
        seed=args.seed,
        chunk_lines=args.chunk_lines,
        gang_size=args.gang_size,
        segments=args.segments,
    )
    report["config"]["quick"] = bool(args.quick)
    print(format_report(report))
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
